"""E7 — distributed search across the service's servers.

Claim (§6.2.2): a query is forwarded from the contacted server to all
other servers; "only the lessons which contain the item of interest
and the server location are transmitted and presented to the user".
"""

from repro.analysis import render_table
from repro.core.experiments import run_search_experiment


def test_e7_distributed_search(report, once):
    headers, rows = once(run_search_experiment)
    report("e7_search",
           render_table("E7 — distributed search over two Hermes servers",
                        headers, rows))
    by_query = {r[0]: r for r in rows}
    # Local-topic query hits only the local server.
    assert by_query["routing"][3] == "hermes-nets(3)"
    # Remote-topic query is answered via forwarding.
    assert by_query["fresco"][3] == "hermes-arts(2)"
    # A common term returns hits from every server, with locations.
    assert by_query["lesson"][1] == 2
    assert by_query["lesson"][2] == 5
    # No false positives: a miss returns nothing at all.
    assert by_query["quantum"][1] == 0 and by_query["quantum"][2] == 0
