"""Fixture: iterates unordered sets feeding scheduling decisions."""


def schedule(streams) -> list:
    order = []
    for sid in {s.stream_id for s in streams}:
        order.append(sid)
    return order + list({"a", "b", "c"})
