"""The formal grammar (paper Figure 1) as a production table.

The Figure 1 benchmark regenerates the BNF from this table; tests
cross-check that every nonterminal referenced is defined and that the
parser implements each production (structural consistency between
the documented grammar and the code).
"""

from __future__ import annotations

__all__ = ["GRAMMAR_PRODUCTIONS", "grammar_text", "nonterminals", "terminals"]

#: (lhs, (alternatives...)) in the order of the paper's Figure 1.
#: Nonterminals are written <LikeThis>; terminals are bare keywords.
GRAMMAR_PRODUCTIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("<Hdocument>", ("TITLE STRING END_TITLE <HSentence>",)),
    ("<HSentence>", ("/* empty */", "<Headings> <Main> <Separator> <HSentence>")),
    # <Next> appears in Figure 1 but is referenced by no other
    # production (a dangling rule in the paper); kept for fidelity.
    ("<Next>", ("/* empty */", "<HyperLink>")),
    ("<Headings>", ("/* empty */", "<Heading1>", "<Heading2>", "<Heading3>")),
    ("<Heading1>", ("H1 STRING END_H1",)),
    ("<Heading2>", ("H2 STRING END_H2",)),
    ("<Heading3>", ("H3 STRING END_H3",)),
    ("<Main>", ("<Par> <Body>",)),
    ("<Separator>", ("/* empty */", "SEPARATOR")),
    ("<Par>", ("/* empty */", "PARAGRAPH")),
    (
        "<Body>",
        (
            "/* empty */",
            "<Document> <Body>",
            "<Image> <Body>",
            "<Audio> <Body>",
            "<Video> <Body>",
            "<Audio_Video> <Body>",
            "<HyperLink> <Body>",
        ),
    ),
    ("<Document>", ("TEXT <Text> END_TEXT",)),
    ("<Text>", ("/* empty */", "STRING <Text>")),
    ("<Image>", ("IMG <ImgOptions> <Source> <Id> <Note> END_IMG",)),
    ("<Audio>", ("AU <AuOptions> <Source> <Id> <Note> END_AU",)),
    ("<Video>", ("VI <ViOptions> <Source> <Id> <Note> END_VI",)),
    (
        "<Audio_Video>",
        ("AU_VI <Au_ViOptions> <Au_ViSource> <Au_Vi_Id> <Note> END_AU_VI",),
    ),
    (
        "<HyperLink>",
        (
            "HLINK <to_HyperText> <Note> END_HLINK",
            "HLINK <to_OtherHost> <Note> END_HLINK",
        ),
    ),
    ("<ImgOptions>", ("<TimeOption>", "<TimeOption> <OtherImgOptions>")),
    ("<AuOptions>", ("<TimeOption>", "<TimeOption> <OtherAuOptions>")),
    ("<ViOptions>", ("<TimeOption>", "<TimeOption> <OtherViOptions>")),
    ("<Au_ViOptions>", ("<SyncOption>", "<SyncOption> <OtherAu_ViOptions>")),
    ("<TimeOption>", ("STARTIME STRING",)),
    ("<SyncOption>", ("STARTIME STRING STARTIME STRING",)),
    ("<OtherImgOptions>", ("HEIGHT STRING WIDTH STRING",)),
    ("<OtherAuOptions>", ("/* empty for the time being ... */",)),
    ("<OtherViOptions>", ("/* empty for the time being ... */",)),
    ("<OtherAu_ViOptions>", ("/* empty for the time being ... */",)),
    ("<Source>", ("SOURCE <Filename>",)),
    ("<Au_ViSource>", ("SOURCE <Filename> SOURCE <Filename>",)),
    ("<Id>", ("ID STRING",)),
    ("<Au_Vi_Id>", ("ID STRING ID STRING",)),
    ("<to_HyperText>", ("<Filename>",)),
    ("<to_OtherHost>", ("STRING <HyperLink>",)),
    ("<Note>", ("NOTE STRING",)),
    ("<Filename>", ("STRING",)),
)


def nonterminals() -> set[str]:
    return {lhs for lhs, _ in GRAMMAR_PRODUCTIONS}


def terminals() -> set[str]:
    """All terminal keywords appearing on right-hand sides."""
    out: set[str] = set()
    for _, alts in GRAMMAR_PRODUCTIONS:
        for alt in alts:
            if alt.startswith("/*"):
                continue
            for sym in alt.split():
                if not sym.startswith("<"):
                    out.add(sym)
    return out


def grammar_text() -> str:
    """Render the production table as the BNF of Figure 1."""
    lines: list[str] = []
    width = max(len(lhs) for lhs, _ in GRAMMAR_PRODUCTIONS)
    for lhs, alts in GRAMMAR_PRODUCTIONS:
        first, *rest = alts
        lines.append(f"{lhs:<{width}} ::= {first}")
        for alt in rest:
            lines.append(f"{'':<{width}}   | {alt}")
    return "\n".join(lines)
