"""E4 — connection admission control with pricing weight.

Claim (§4): admission weighs network load against the user's pricing
contract — "a user who pays more should be serviced, even though it
affects the other users".
"""

from repro.analysis import render_table
from repro.core.experiments import run_admission_sweep


def test_e4_admission_by_contract(report, once):
    headers, rows = once(run_admission_sweep)
    report("e4_admission",
           render_table("E4 — admit rate by pricing class vs offered load "
                        "(20 Mb/s capacity, 2 Mb/s per session)",
                        headers, rows))
    for row in rows:
        offered, basic, premium, gold, util = row
        # Paying more never hurts: admit rates are ordered by contract.
        assert gold >= premium >= basic
        assert util <= 100.0
    # At low load everyone gets in; under overload gold still leads.
    assert rows[0][1] == rows[0][2] == rows[0][3] == 100.0
    overload = rows[-1]
    assert overload[3] > overload[1], \
        "gold must beat basic under overload"
    # Overload protection: utilisation saturates instead of exceeding 100%.
    assert overload[4] == 100.0
