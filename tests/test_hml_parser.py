"""Unit tests for the HML parser."""

import pytest

from repro.hml import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlSyntaxError,
    HyperLink,
    ImageElement,
    LinkKind,
    Paragraph,
    Separator,
    TextBlock,
    VideoElement,
    parse,
)

DOC = """
<TITLE> Lesson one </TITLE>
<H1> Introduction </H1>
<TEXT> Welcome to the lesson. <B> Important! </B> <I> Really. </I> </TEXT>
<PAR>
<IMG> STARTIME=0 DURATION=5 HEIGHT=200 WIDTH=300 WHERE=(10,20)
      SOURCE=imgsrv:/i1.gif ID=I1 NOTE="first image" </IMG>
<AU> STARTIME=2 DURATION=8 SOURCE=audsrv:/a1.au ID=A1 </AU>
<VI> STARTIME=2 DURATION=8 SOURCE=vidsrv:/v1.mpg ID=V1 </VI>
<AU_VI> STARTIME=10 STARTIME=10 DURATION=6
        SOURCE=audsrv:/a2.au SOURCE=vidsrv:/v2.mpg ID=A2 ID=V2 </AU_VI>
<SEP>
<HLINK> AT 30 lesson-two NOTE="continue" </HLINK>
<HLINK> related-topic KIND=explorational </HLINK>
"""


def test_full_document_structure():
    doc = parse(DOC)
    assert doc.title == "Lesson one"
    types = [type(e) for e in doc.elements]
    assert types == [
        Heading, TextBlock, Paragraph, ImageElement, AudioElement,
        VideoElement, AudioVideoElement, Separator, HyperLink, HyperLink,
    ]


def test_heading_levels():
    doc = parse("<TITLE> t </TITLE><H1> one </H1><H2> two </H2><H3> three </H3>")
    levels = [e.level for e in doc.elements]
    assert levels == [1, 2, 3]


def test_text_formatting_spans():
    doc = parse(DOC)
    block = doc.text_blocks()[0]
    assert block.spans[0].text == "Welcome to the lesson."
    assert not block.spans[0].bold
    assert block.spans[1].text == "Important!"
    assert block.spans[1].bold and not block.spans[1].italic
    assert block.spans[2].italic and not block.spans[2].bold


def test_image_attributes():
    doc = parse(DOC)
    img = next(e for e in doc.elements if isinstance(e, ImageElement))
    assert img.source == "imgsrv:/i1.gif"
    assert img.element_id == "I1"
    assert img.startime == 0.0
    assert img.duration == 5.0
    assert img.width == 300 and img.height == 200
    assert img.where == (10, 20)
    assert img.note == "first image"


def test_audio_video_pair():
    doc = parse(DOC)
    av = next(e for e in doc.elements if isinstance(e, AudioVideoElement))
    assert av.audio_source == "audsrv:/a2.au"
    assert av.video_source == "vidsrv:/v2.mpg"
    assert av.audio_id == "A2" and av.video_id == "V2"
    assert av.audio_startime == av.video_startime == 10.0
    assert av.duration == 6.0


def test_hyperlinks():
    doc = parse(DOC)
    links = doc.hyperlinks()
    assert links[0].target == "lesson-two"
    assert links[0].at_time == 30.0
    assert links[0].kind is LinkKind.SEQUENTIAL  # inferred from AT
    assert links[0].note == "continue"
    assert links[1].target == "related-topic"
    assert links[1].kind is LinkKind.EXPLORATIONAL
    assert links[1].at_time is None


def test_cross_host_link_target():
    doc = parse("<TITLE> t </TITLE><HLINK> otherhost:doc2 </HLINK>")
    link = doc.hyperlinks()[0]
    assert link.target_host == "otherhost"
    assert link.target_document == "doc2"


def test_startime_defaults_to_zero():
    doc = parse("<TITLE> t </TITLE><AU> SOURCE=s ID=A </AU>")
    au = doc.elements[0]
    assert au.startime == 0.0
    assert au.duration is None


def test_au_vi_single_startime_shared():
    doc = parse(
        "<TITLE> t </TITLE>"
        "<AU_VI> STARTIME=4 SOURCE=a SOURCE=v ID=A ID=V </AU_VI>"
    )
    av = doc.elements[0]
    assert av.audio_startime == av.video_startime == 4.0


def test_element_ids_collects_av_pair():
    doc = parse(DOC)
    assert doc.element_ids() == ["I1", "A1", "V1", "A2", "V2"]


# -------------------------------------------------------------- errors
@pytest.mark.parametrize(
    "markup,match",
    [
        ("<H1> no title first </H1>", "expected tag-open TITLE"),
        ("<TITLE> t </TITLE><IMG> ID=I </IMG>", "requires SOURCE"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s </IMG>", "requires ID"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s ID=I STARTIME=abc </IMG>",
         "expects a number"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s ID=I WHERE=nope </IMG>",
         "expects"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s SOURCE=t ID=I </IMG>", "duplicate"),
        ("<TITLE> t </TITLE><AU_VI> SOURCE=a ID=A ID=V </AU_VI>",
         "two SOURCE"),
        ("<TITLE> t </TITLE><HLINK> NOTE=x </HLINK>", "requires a target"),
        ("<TITLE> t </TITLE><HLINK> a b </HLINK>", "multiple link targets"),
        ("<TITLE> t </TITLE><HLINK> AT </HLINK>", "AT requires"),
        ("<TITLE> t </TITLE><HLINK> doc KIND=upward </HLINK>", "KIND must be"),
        ("<TITLE> t </TITLE><TEXT> unterminated", "unterminated"),
        ("<TITLE> t </TITLE><TEXT> <B> x ", "unterminated"),
        ("<TITLE> t </TITLE><TEXT> </B> </TEXT>", "without opening"),
        ("<TITLE> t </TITLE><TEXT> <B> <B> x </B> </B> </TEXT>",
         "already open"),
        ("<TITLE> t </TITLE><TEXT> <IMG> </IMG> </TEXT>", "not allowed inside"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s ID=I bare </IMG>", "bare token"),
        ("<TITLE> t </TITLE><IMG> SOURCE=s ID=I COLOR=red </IMG>",
         "unknown attribute"),
        ("<TITLE> t </TITLE></H1>", "expected an element tag"),
    ],
)
def test_parse_errors(markup, match):
    with pytest.raises(HmlSyntaxError, match=match):
        parse(markup)


def test_nested_bold_italic():
    doc = parse("<TITLE> t </TITLE><TEXT> <B> <I> both </I> </B> </TEXT>")
    span = doc.text_blocks()[0].spans[0]
    assert span.bold and span.italic


def test_quoted_note_with_spaces_and_equals():
    doc = parse(
        '<TITLE> t </TITLE><AU> SOURCE=s ID=A NOTE="x = y, z" </AU>'
    )
    assert doc.elements[0].note == "x = y, z"
