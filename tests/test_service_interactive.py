"""Tests for the §5/§6.2.3 interactive features: navigation history,
annotations, media disabling, and timed-link autoplay."""

import pytest

from repro.core import ServiceEngine
from repro.hml import DocumentBuilder, serialize
from repro.service import AnnotationStore, NavigationHistory


# ------------------------------------------------------------- history
def test_history_back_forward():
    h = NavigationHistory()
    assert h.current is None
    h.visit("a")
    h.visit("b")
    h.visit("c")
    assert h.current == "c"
    assert h.back() == "b"
    assert h.back() == "a"
    assert not h.can_back
    assert h.forward() == "b"
    assert h.entries() == ["a", "b", "c"]


def test_history_visit_truncates_forward_branch():
    h = NavigationHistory()
    for d in ("a", "b", "c"):
        h.visit(d)
    h.back()
    h.back()
    h.visit("x")  # from 'a', new branch
    assert h.entries() == ["a", "x"]
    assert not h.can_forward


def test_history_revisit_current_is_noop_and_validation():
    h = NavigationHistory()
    h.visit("a")
    h.visit("a")
    assert h.entries() == ["a"]
    with pytest.raises(ValueError):
        h.visit("")
    with pytest.raises(IndexError):
        h.back()
    with pytest.raises(IndexError):
        h.forward()


# ------------------------------------------------------------- annotations
def test_annotation_store():
    store = AnnotationStore(author="alice")
    a1 = store.annotate("doc1", "interesting claim", now=10.0,
                        element_id="V", presentation_time_s=4.2)
    a2 = store.annotate("doc1", "check later", now=11.0)
    store.annotate("doc2", "other doc", now=12.0)
    assert len(store) == 3
    assert store.documents() == ["doc1", "doc2"]
    assert [a.text for a in store.for_document("doc1")] == \
        ["interesting claim", "check later"]
    assert store.for_element("doc1", "V") == [a1]
    assert store.remove(a2.annotation_id)
    assert not store.remove(a2.annotation_id)
    assert len(store) == 2
    with pytest.raises(ValueError):
        store.annotate("doc1", "   ", now=1.0)


# ------------------------------------------------------------- disable
def doc_with_two_streams(duration=6.0):
    return serialize(
        DocumentBuilder("Two streams")
        .audio("audsrv:/a.au", "A", startime=0.0, duration=duration)
        .video("vidsrv:/v.mpg", "V", startime=0.0, duration=duration)
        .image("imgsrv:/i.gif", "I", startime=0.0, duration=duration)
        .build()
    )


def test_disable_stream_end_to_end():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"doc": (doc_with_two_streams(), "x")})
    server = eng.servers["srv1"]
    client, handler = eng.open_session("srv1", "u", "pw")
    box = {}

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            yield from client.subscribe(SubscriptionForm(
                real_name="U", address="x", email="u@e.org"))
        resp = yield from client.request_document("doc")
        comp = eng.build_client_composition(resp.body["markup"], server)
        ready = yield from client.send_ready(comp.rtp_ports,
                                             comp.discrete_ports)
        comp.attach_feedback(ready.body["rtcp_port"], server.node_id)
        done = comp.start()
        yield eng.sim.timeout(2.0)
        # User turns the video off mid-presentation.
        comp.scheduler.disable_stream("V")
        resp = yield from client.disable_stream("V")
        assert resp.msg_type == "stream-disabled"
        assert resp.body["was_active"]
        yield done  # presentation still completes
        comp.qos.stop()
        box["comp"] = comp
        yield from client.disconnect()

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    eng.sim.run(until=eng.sim.now + 1.0)
    comp = box["comp"]
    log = comp.log
    # Audio played fully; video stopped around the disable instant.
    a_frames = log.summary("A")["frames"]
    v_frames = log.summary("V")["frames"]
    assert a_frames > 250  # ~6 s at 50 fps
    assert 0 < v_frames < 60  # ~<2.2 s at 25 fps
    assert "V" in comp.scheduler.disabled_streams
    # Server stopped transmitting the stream.
    vid_ms = server.media_servers["vidsrv"]
    assert "V" not in vid_ms.streams


def test_disable_before_start_skips_stream():
    from repro.client.presentation import PresentationScheduler, StreamBinding
    from repro.des import Simulator
    from repro.model import PresentationScenario

    sim = Simulator()
    scenario = PresentationScenario.from_markup(doc_with_two_streams(2.0))
    sched = PresentationScheduler(
        sim, scenario,
        {"A": StreamBinding("A", 8000, 0.02),
         "V": StreamBinding("V", 90_000, 0.04)},
        time_window_s=0.2,
    )
    sched.disable_stream("V")
    sched.disable_stream("I")
    # Feed only audio.
    from repro.media.types import Frame, FrameKind

    for i in range(101):
        sched.deliver_frame("A", Frame("A", seq=i, media_time=i * 160,
                                       duration=160, size_bytes=160,
                                       kind=FrameKind.SAMPLE))
    done = sched.start(initial_delay_s=0.0)
    sim.run(until=done)
    assert sched.log.summary("V")["frames"] == 0
    assert sched.renderer.interval_of("I") is None  # never shown
    with pytest.raises(KeyError):
        sched.disable_stream("ZZ")


# ------------------------------------------------------------- autoplay
def chained_documents(n=3, duration=3.0):
    docs = {}
    for k in range(1, n + 1):
        b = (
            DocumentBuilder(f"Part {k}")
            .audio("audsrv:/a.au", f"A{k}", startime=0.0, duration=duration)
        )
        if k < n:
            b.hyperlink(f"part-{k + 1}", at_time=duration)
        docs[f"part-{k}"] = (serialize(b.build()), "course")
    return docs


def test_autoplay_follows_timed_links():
    eng = ServiceEngine()
    eng.add_server("srv1", documents=chained_documents(3))
    visits = eng.orchestrator.run_autoplay_sequence("srv1", "part-1")
    assert [v["document"] for v in visits] == ["part-1", "part-2", "part-3"]
    assert visits[-1]["history"] == ["part-1", "part-2", "part-3"]
    # Every part actually played audio frames.
    assert all(v["frames"] > 100 for v in visits)


def test_autoplay_interrupts_when_link_fires_early():
    eng = ServiceEngine()
    docs = {
        "long": (serialize(
            DocumentBuilder("Long")
            .audio("audsrv:/a.au", "A", startime=0.0, duration=30.0)
            .hyperlink("short", at_time=3.0)  # fires long before the end
            .build()), "x"),
        "short": (serialize(
            DocumentBuilder("Short")
            .audio("audsrv:/a.au", "B", startime=0.0, duration=2.0)
            .build()), "x"),
    }
    eng.add_server("srv1", documents=docs)
    visits = eng.orchestrator.run_autoplay_sequence("srv1", "long", horizon_s=100.0)
    assert [v["document"] for v in visits] == ["long", "short"]
    assert visits[0]["interrupted"] is True
    assert visits[1]["interrupted"] is False
    assert eng.sim.now < 30.0  # did not sit through the long document


def test_autoplay_respects_max_documents():
    eng = ServiceEngine()
    # a 2-cycle of timed links
    docs = {
        "a": (serialize(DocumentBuilder("A")
                        .audio("audsrv:/x.au", "A", duration=1.0)
                        .hyperlink("b", at_time=1.0).build()), "x"),
        "b": (serialize(DocumentBuilder("B")
                        .audio("audsrv:/y.au", "B", duration=1.0)
                        .hyperlink("a", at_time=1.0).build()), "x"),
    }
    eng.add_server("srv1", documents=docs)
    visits = eng.orchestrator.run_autoplay_sequence("srv1", "a", max_documents=5)
    assert len(visits) == 5
    assert [v["document"] for v in visits] == ["a", "b", "a", "b", "a"]
