"""Media object and frame types.

Two families of media, following the paper's taxonomy:

* *discrete* (non time-sensitive) — text, images, graphics; delivered
  whole over the reliable channel;
* *continuous* (time-sensitive) — audio, video; delivered as timed
  frames over RTP/UDP and subject to buffering, skew control and
  quality grading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "MediaType",
    "FrameKind",
    "Frame",
    "MediaObject",
    "DiscreteMediaObject",
    "ContinuousMediaObject",
]


class MediaType(enum.Enum):
    """The five media types the markup language distinguishes."""

    TEXT = "text"
    IMAGE = "image"
    GRAPHICS = "graphics"
    AUDIO = "audio"
    VIDEO = "video"

    @property
    def is_continuous(self) -> bool:
        return self in (MediaType.AUDIO, MediaType.VIDEO)

    @property
    def is_discrete(self) -> bool:
        return not self.is_continuous


class FrameKind(enum.Enum):
    """Frame classification within a continuous stream."""

    I = "I"  # intra-coded video frame (noqa: E741 - domain name)
    P = "P"  # predicted video frame
    B = "B"  # bidirectional video frame
    SAMPLE = "sample"  # audio frame (block of samples)
    BLOCK = "block"  # generic data block (discrete media chunk)


@dataclass(frozen=True, slots=True)
class Frame:
    """One playable unit of a continuous stream.

    ``media_time`` is in integer ticks of the codec clock (RTP-style,
    e.g. 90 000 Hz for video, the sampling rate for audio), avoiding
    float drift in sync computations. ``duration`` is also in ticks.
    """

    stream_id: str
    seq: int
    media_time: int
    duration: int
    size_bytes: int
    kind: FrameKind
    grade: int = 0  # index into the codec's quality ladder at encode time
    duplicated: bool = False  # produced by the skew controller, not the source

    @property
    def end_time(self) -> int:
        return self.media_time + self.duration


@dataclass(slots=True)
class MediaObject:
    """Base descriptor for a stored media object."""

    object_id: str
    media_type: MediaType
    encoding: str

    def __post_init__(self) -> None:
        if not self.object_id:
            raise ValueError("object_id must be non-empty")


@dataclass(slots=True)
class DiscreteMediaObject(MediaObject):
    """Text/image/graphics object: a single sized blob."""

    size_bytes: int = 0

    def __post_init__(self) -> None:
        MediaObject.__post_init__(self)
        if self.media_type.is_continuous:
            raise ValueError(
                f"{self.media_type} is continuous; use ContinuousMediaObject"
            )
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")


@dataclass(slots=True)
class ContinuousMediaObject(MediaObject):
    """Audio/video object: a timed sequence of frames.

    ``duration_s`` is the nominal playout duration; the actual frame
    trace is synthesized on demand (see :mod:`repro.media.traces`)
    with a per-object deterministic RNG stream.
    """

    duration_s: float = 0.0
    trace_seed_name: str = field(default="")

    def __post_init__(self) -> None:
        MediaObject.__post_init__(self)
        if not self.media_type.is_continuous:
            raise ValueError(
                f"{self.media_type} is discrete; use DiscreteMediaObject"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if not self.trace_seed_name:
            self.trace_seed_name = f"trace:{self.object_id}"
