"""Intermedia skew control — the short-term recovery mechanism.

"If intermedia skew is introduced among synchronized streams ... the
scheduler may drop frames from the stream that leads in time or
duplicate frames of the lagging stream in order to maintain a better
synchronization. In this way, a *short term* synchronization
incoherence recovery method is provided" (§4).

Implementation: each sync group has a *master* (the audio stream —
users tolerate degraded video better than degraded audio) and
*slaves*. At each slave playout tick the controller compares
presented media positions:

* slave **ahead** of master beyond the threshold → the slave
  *duplicates* (replays) its current frame, holding its position
  until the master catches up;
* slave **behind** beyond the threshold → the slave *drops* (skips)
  buffered frames to jump forward.

Both primitives are exactly the paper's {drop, duplicate} toolset and
keep |skew| bounded near the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.metrics import DEFAULT_SYNC_THRESHOLD_S, SkewSeries

__all__ = ["SkewController", "SkewDecision"]


@dataclass(frozen=True, slots=True)
class SkewDecision:
    """What a slave stream should do at this playout tick."""

    action: str  # "play" | "duplicate" | "drop"
    drop_count: int = 0  # frames to skip when action == "drop"


@dataclass(slots=True)
class SkewControllerStats:
    duplicates: int = 0
    drops: int = 0
    decisions: int = 0


class SkewController:
    """Skew measurement and drop/duplicate decisions for one group."""

    def __init__(
        self,
        group: str,
        master_id: str,
        threshold_s: float = DEFAULT_SYNC_THRESHOLD_S,
        max_drops_per_tick: int = 3,
        enabled: bool = True,
    ) -> None:
        if threshold_s <= 0:
            raise ValueError("threshold_s must be positive")
        if max_drops_per_tick < 1:
            raise ValueError("max_drops_per_tick must be >= 1")
        self.group = group
        self.master_id = master_id
        self.threshold_s = threshold_s
        self.max_drops_per_tick = max_drops_per_tick
        self.enabled = enabled
        self.series = SkewSeries(group, threshold_s=threshold_s)
        self.stats = SkewControllerStats()
        self._positions: dict[str, float] = {}
        self._active: dict[str, bool] = {}
        self._tracer = None
        self._session = ""
        self._tracing = False

    def set_tracer(self, tracer, session: str = "") -> None:
        """Emit ``skew.correct`` events on drop/duplicate decisions."""
        self._tracer = tracer
        self._session = session
        self._tracing = tracer is not None and bool(
            getattr(tracer, "enabled", False)
        )

    # -- position reporting ----------------------------------------------
    def report_position(self, stream_id: str, media_time_s: float,
                        active: bool = True) -> None:
        """Streams report their presented media position each tick."""
        self._positions[stream_id] = media_time_s
        self._active[stream_id] = active

    def master_position(self) -> float | None:
        if not self._active.get(self.master_id, False):
            return None
        return self._positions.get(self.master_id)

    def skew_of(self, stream_id: str) -> float | None:
        """Current skew (slave − master) in seconds, if both known."""
        master = self.master_position()
        slave = self._positions.get(stream_id)
        if master is None or slave is None:
            return None
        return slave - master

    # -- decisions -----------------------------------------------------------
    def decide(self, stream_id: str, now: float,
               frame_interval_s: float) -> SkewDecision:
        """Decision for a slave's next playout tick.

        Must be called by slaves only (the master never adjusts — it
        is the timing reference).
        """
        if stream_id == self.master_id:
            raise ValueError("the sync master does not take skew decisions")
        skew = self.skew_of(stream_id)
        if skew is None:
            return SkewDecision("play")
        self.series.sample(now, skew)
        self.stats.decisions += 1
        if not self.enabled:
            return SkewDecision("play")
        if skew > self.threshold_s:
            self.stats.duplicates += 1
            if self._tracing:
                self._tracer.emit(now, "skew.correct", stream_id,
                                  session=self._session, action="duplicate",
                                  skew_s=round(skew, 6), group=self.group)
            return SkewDecision("duplicate")
        if skew < -self.threshold_s and frame_interval_s > 0:
            behind_frames = int(-skew / frame_interval_s)
            n = max(1, min(self.max_drops_per_tick, behind_frames))
            self.stats.drops += n
            if self._tracing:
                self._tracer.emit(now, "skew.correct", stream_id,
                                  session=self._session, action="drop",
                                  skew_s=round(skew, 6), group=self.group,
                                  drop_count=n)
            return SkewDecision("drop", drop_count=n)
        return SkewDecision("play")
