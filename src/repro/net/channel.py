"""Endpoint transports over the simulated network.

* :class:`DatagramSocket` — UDP-like: unordered, unreliable, no
  flow control. RTP rides on this (paper Figure 5).
* :class:`ReliableSender` / :class:`ReliableReceiver` — TCP-like:
  a go-back-N ARQ giving loss-free in-order *message* delivery; the
  presentation scenario, text and images use this path. Full TCP
  congestion control is out of scope (the paper treats TCP as a given
  black box); go-back-N reproduces the properties the service layer
  observes: reliability, ordering, and loss-induced extra latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.des import Event, Simulator
from repro.net.packet import Packet
from repro.net.topology import Network

__all__ = ["DatagramSocket", "ReliableSender", "ReliableReceiver"]

ACK_SIZE_BYTES = 40
DEFAULT_MSS = 1460


class DatagramSocket:
    """Unreliable datagram endpoint bound to (node, port)."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        on_packet: Callable[[Packet], None] | None = None,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.port = port
        self.on_packet = on_packet
        network.node(node_id).bind(port, self._receive)
        self.tx_packets = 0
        self.rx_packets = 0

    def _receive(self, pkt: Packet) -> None:
        self.rx_packets += 1
        if self.on_packet is not None:
            self.on_packet(pkt)

    def sendto(
        self,
        dst: str,
        dst_port: int,
        size_bytes: int,
        payload: Any = None,
        protocol: str = "UDP",
        flow_id: str = "",
        seq: int = 0,
    ) -> bool:
        pkt = Packet(
            src=self.node_id,
            dst=dst,
            size_bytes=size_bytes,
            protocol=protocol,
            flow_id=flow_id or f"udp:{self.node_id}:{self.port}",
            dst_port=dst_port,
            payload=payload,
            seq=seq,
        )
        self.tx_packets += 1
        return self.network.send(pkt)

    def close(self) -> None:
        self.network.node(self.node_id).unbind(self.port)


@dataclass(slots=True)
class _Segment:
    seq: int
    size_bytes: int
    msg_id: int
    last_of_msg: bool
    payload: Any


@dataclass(slots=True)
class _PendingMessage:
    msg_id: int
    last_seq: int
    done: Event
    meta: Any = None


class ReliableSender:
    """Go-back-N sender; one instance per (connection, direction)."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        dst: str,
        dst_port: int,
        flow_id: str,
        protocol: str = "TCP",
        mss: int = DEFAULT_MSS,
        window: int = 32,
        rto_s: float = 0.2,
        max_rto_s: float = 5.0,
    ) -> None:
        self.sim: Simulator = network.sim
        self.network = network
        self.node_id = node_id
        self.port = port
        self.dst = dst
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.protocol = protocol
        self.mss = mss
        self.window = window
        self.base_rto_s = rto_s
        self.rto_s = rto_s
        self.max_rto_s = max_rto_s

        self._segments: list[_Segment] = []
        self._base = 0  # oldest unacked seq
        self._next = 0  # next never-sent seq
        self._msgs: list[_PendingMessage] = []
        self._msg_counter = 0
        self._timer_token = 0
        self.retransmissions = 0
        self._closed = False
        network.node(node_id).bind(port, self._on_ack)

    # -- public API -----------------------------------------------------
    def send_message(self, size_bytes: int, payload: Any = None) -> Event:
        """Queue a message; the returned event triggers when fully acked."""
        if self._closed:
            raise RuntimeError("sender is closed")
        if size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {size_bytes}")
        n_segs = (size_bytes + self.mss - 1) // self.mss
        self._msg_counter += 1
        msg_id = self._msg_counter
        first_seq = len(self._segments)
        remaining = size_bytes
        for i in range(n_segs):
            seg_size = min(self.mss, remaining)
            remaining -= seg_size
            self._segments.append(
                _Segment(
                    seq=first_seq + i,
                    size_bytes=seg_size,
                    msg_id=msg_id,
                    last_of_msg=(i == n_segs - 1),
                    payload=payload if i == n_segs - 1 else None,
                )
            )
        done = self.sim.event()
        self._msgs.append(
            _PendingMessage(msg_id=msg_id, last_seq=first_seq + n_segs - 1, done=done)
        )
        self._pump()
        return done

    @property
    def in_flight(self) -> int:
        return self._next - self._base

    @property
    def backlog_segments(self) -> int:
        return len(self._segments) - self._base

    def close(self) -> None:
        self._closed = True
        self._timer_token += 1
        self.network.node(self.node_id).unbind(self.port)

    # -- internals --------------------------------------------------------
    def _transmit(self, seg: _Segment) -> None:
        pkt = Packet(
            src=self.node_id,
            dst=self.dst,
            size_bytes=seg.size_bytes + 40,  # TCP/IP header overhead
            protocol=self.protocol,
            flow_id=self.flow_id,
            dst_port=self.dst_port,
            payload={
                "msg_id": seg.msg_id,
                "last_of_msg": seg.last_of_msg,
                "reply_to": (self.node_id, self.port),
                "data": seg.payload,
            },
            seq=seg.seq,
        )
        self.network.send(pkt)

    def _pump(self) -> None:
        while (
            self._next < len(self._segments)
            and self._next < self._base + self.window
        ):
            self._transmit(self._segments[self._next])
            self._next += 1
        if self._base < self._next:
            self._arm_timer()

    def _arm_timer(self) -> None:
        self._timer_token += 1
        token = self._timer_token
        self.sim.call_later(self.rto_s, lambda: self._on_timer(token))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token or self._closed:
            return
        if self._base >= self._next:
            return
        # Go-back-N: resend the whole outstanding window with backoff.
        self.rto_s = min(self.rto_s * 2.0, self.max_rto_s)
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "channel.retransmit",
                                  self.flow_id, node=self.node_id,
                                  window=self._next - self._base,
                                  rto_s=self.rto_s)
        for seq in range(self._base, self._next):
            self.retransmissions += 1
            self._transmit(self._segments[seq])
        self._arm_timer()

    def _on_ack(self, pkt: Packet) -> None:
        if self._closed:
            return
        ack = pkt.payload.get("ack", -1) if isinstance(pkt.payload, dict) else -1
        if ack < self._base:
            return
        self._base = ack + 1
        self.rto_s = self.base_rto_s
        # Complete any messages whose last segment is now acked.
        while self._msgs and self._msgs[0].last_seq < self._base:
            self._msgs.pop(0).done.succeed(self.sim.now)
        if self._base < self._next:
            self._arm_timer()
        else:
            self._timer_token += 1  # cancel timer
        self._pump()


class ReliableReceiver:
    """Go-back-N receiver with message reassembly.

    ``on_message(payload, size_bytes, flow_id)`` fires once per
    complete message, in order. Handles any number of concurrent
    sender flows by keying state on ``flow_id``.
    """

    def __init__(
        self,
        network: Network,
        node_id: str,
        port: int,
        on_message: Callable[[Any, int, str], None] | None = None,
    ) -> None:
        self.sim = network.sim
        self.network = network
        self.node_id = node_id
        self.port = port
        self.on_message = on_message
        self._rcv_next: dict[str, int] = {}
        self._msg_bytes: dict[str, int] = {}
        self.messages_received = 0
        network.node(node_id).bind(port, self._on_data)

    def close(self) -> None:
        self.network.node(self.node_id).unbind(self.port)

    def _on_data(self, pkt: Packet) -> None:
        flow = pkt.flow_id
        expected = self._rcv_next.get(flow, 0)
        payload = pkt.payload if isinstance(pkt.payload, dict) else {}
        reply_node, reply_port = payload.get("reply_to", (None, None))
        if pkt.seq == expected:
            self._rcv_next[flow] = expected + 1
            self._msg_bytes[flow] = self._msg_bytes.get(flow, 0) + (pkt.size_bytes - 40)
            if payload.get("last_of_msg"):
                size = self._msg_bytes.pop(flow, 0)
                self.messages_received += 1
                if self.sim._tracing:
                    self.sim._tracer.emit(self.sim.now, "channel.message",
                                          flow, node=self.node_id,
                                          size_bytes=size)
                if self.on_message is not None:
                    self.on_message(payload.get("data"), size, flow)
            ack = expected
        else:
            ack = self._rcv_next.get(flow, 0) - 1
        if reply_node is None or ack < 0:
            return
        self.network.send(
            Packet(
                src=self.node_id,
                dst=reply_node,
                size_bytes=ACK_SIZE_BYTES,
                protocol="TCP",
                flow_id=flow,
                dst_port=reply_port,
                payload={"ack": ack},
                seq=ack,
            )
        )
