"""Unit tests for the HML tokenizer and keyword registry."""

import pytest

from repro.hml import HmlSyntaxError, KEYWORDS, TokenKind, tokenize
from repro.hml.tokens import (
    ATTRIBUTE_KEYWORDS,
    ELEMENT_KEYWORDS,
    keyword_table_rows,
)


def kinds(tokens):
    return [t.kind for t in tokens]


def test_simple_title_tokens():
    toks = tokenize("<TITLE> Hello </TITLE>")
    assert kinds(toks) == [
        TokenKind.TAG_OPEN, TokenKind.TEXT, TokenKind.TAG_CLOSE, TokenKind.EOF,
    ]
    assert toks[0].value == "TITLE"
    assert toks[1].value.strip() == "Hello"
    assert toks[2].value == "TITLE"


def test_tag_names_case_insensitive():
    toks = tokenize("<title> x </title>")
    assert toks[0].value == "TITLE"


def test_whitespace_only_text_skipped():
    toks = tokenize("<PAR>\n   \n<SEP>")
    assert kinds(toks) == [TokenKind.TAG_OPEN, TokenKind.TAG_OPEN, TokenKind.EOF]


def test_unterminated_tag_raises():
    with pytest.raises(HmlSyntaxError, match="unterminated"):
        tokenize("<TITLE")


def test_empty_tag_raises():
    with pytest.raises(HmlSyntaxError, match="empty tag"):
        tokenize("<>")
    with pytest.raises(HmlSyntaxError, match="empty tag"):
        tokenize("</ >")


def test_unknown_keyword_raises():
    with pytest.raises(HmlSyntaxError, match="unknown element keyword"):
        tokenize("<BLINK> x </BLINK>")


def test_attribute_keywords_are_not_tags():
    # SOURCE is an attribute keyword, not an element keyword.
    with pytest.raises(HmlSyntaxError):
        tokenize("<SOURCE>")


def test_line_numbers_tracked():
    toks = tokenize("<TITLE> a </TITLE>\n\n<H1> b </H1>")
    h1 = [t for t in toks if t.kind is TokenKind.TAG_OPEN and t.value == "H1"]
    assert h1[0].line == 3


def test_text_between_tags_preserved_verbatim():
    toks = tokenize("<TEXT> keep  internal   spacing </TEXT>")
    assert "keep  internal   spacing" in toks[1].value


# ------------------------------------------------------------ registry
def test_keyword_registry_covers_paper_table1():
    # Every keyword family named in paper Table 1 is registered.
    for name in ("TITLE", "H1", "H2", "H3", "PAR", "SEP", "TEXT", "IMG",
                 "AU", "VI", "SOURCE", "ID", "STARTIME", "DURATION",
                 "I", "B", "U", "NOTE"):
        assert name in KEYWORDS, name


def test_element_and_attribute_sets_disjoint():
    assert not (ELEMENT_KEYWORDS & ATTRIBUTE_KEYWORDS)
    assert ELEMENT_KEYWORDS | ATTRIBUTE_KEYWORDS == set(KEYWORDS)


def test_table1_rows_generate():
    rows = keyword_table_rows()
    assert ("TITLE", "Document title indicator") in rows
    assert any("STARTIME" in names for names, _ in rows)
    assert len(rows) >= 8
