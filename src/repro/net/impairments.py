"""Stochastic impairment models.

:class:`GilbertElliottLoss` is the classic two-state Markov loss
process (good/bad states with state-dependent loss probabilities),
used to model bursty random loss beyond what drop-tail queues
produce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.des import Simulator

__all__ = ["GilbertElliottLoss"]


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) packet loss model.

    Parameters
    ----------
    p_gb, p_bg:
        Per-packet transition probabilities good→bad and bad→good.
    loss_good, loss_bad:
        Loss probability while in each state.

    With defaults the stationary loss rate is
    ``pi_b * loss_bad + pi_g * loss_good`` where
    ``pi_b = p_gb / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_gb: float = 0.01,
        p_bg: float = 0.3,
        loss_good: float = 0.0,
        loss_bad: float = 0.3,
        sim: "Simulator | None" = None,
        name: str = "",
    ) -> None:
        for name, v in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be a probability, got {v}")
        self.rng = rng
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.in_bad = False
        self.decisions = 0
        self.losses = 0
        #: optional tracing context: when attached to a simulator with a
        #: live tracer, state transitions and loss decisions are emitted
        self.sim = sim
        self.name = name

    @property
    def stationary_loss_rate(self) -> float:
        denom = self.p_gb + self.p_bg
        if denom == 0:
            pi_b = 1.0 if self.in_bad else 0.0
        else:
            pi_b = self.p_gb / denom
        return pi_b * self.loss_bad + (1.0 - pi_b) * self.loss_good

    def is_lost(self, flow: str = "", seq: int = -1,
                session: str = "", frame: int = -1) -> bool:
        """Advance the chain one packet and decide its fate.

        The keyword arguments are pure tracing context — callers on the
        hot path omit them when tracing is off so the untraced cost
        stays a plain ``is_lost()`` call.
        """
        was_bad = self.in_bad
        if self.in_bad:
            if self.rng.random() < self.p_bg:
                self.in_bad = False
        else:
            if self.rng.random() < self.p_gb:
                self.in_bad = True
        p = self.loss_bad if self.in_bad else self.loss_good
        self.decisions += 1
        lost = bool(self.rng.random() < p)
        if lost:
            self.losses += 1
        sim = self.sim
        if sim is not None and sim._tracing:
            if self.in_bad != was_bad:
                sim._tracer.emit(sim.now, "impair.state", self.name,
                                 state="bad" if self.in_bad else "good")
            if lost and sim._tracing_detail:
                sim._tracer.emit(sim.now, "impair.loss", self.name,
                                 state="bad" if self.in_bad else "good",
                                 flow=flow, seq=seq, session=session,
                                 frame=frame)
        return lost

    @property
    def observed_loss_rate(self) -> float:
        return 0.0 if self.decisions == 0 else self.losses / self.decisions
