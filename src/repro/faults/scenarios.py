"""Canned chaos scenarios behind ``python -m repro chaos`` and CI.

Each scenario builds a fresh engine with one multimedia server whose
continuous media all live on a single media server (``media:``), so a
scheduled crash interrupts every active stream at once. A standby
replica is provisioned where the scenario expects failover. The same
harness backs the CLI, the CI smoke job and the end-to-end tests, so
all three exercise the identical code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.faults.control import RetryPolicy
from repro.faults.digest import population_digest
from repro.faults.plan import (
    ControlImpairFault,
    ControlPartitionFault,
    FaultPlan,
    LinkFlapFault,
    ServerCrashFault,
)

__all__ = [
    "ChaosScenario",
    "CHAOS_SCENARIOS",
    "ChaosRun",
    "chaos_markup",
    "build_plan",
    "run_chaos",
    "check_determinism",
]

CHAOS_SCHEMA = "repro.chaos"
CHAOS_SCHEMA_VERSION = 1

#: retry policy used whenever a scenario enables control-path retry
DEFAULT_RETRY = RetryPolicy(timeout_s=1.0, max_attempts=5, backoff=2.0,
                            max_timeout_s=8.0, jitter_frac=0.1)


def chaos_markup(duration_s: float = 6.0) -> str:
    """A synchronized A/V pair with *both* streams on one media server."""
    from repro.hml import DocumentBuilder, serialize

    return serialize(
        DocumentBuilder("Chaos document")
        .text("chaos workload")
        .audio_video("media:/a.au", "media:/v.mpg", "A", "V",
                     startime=0.0, duration=duration_s)
        .build()
    )


@dataclass(slots=True)
class ChaosScenario:
    """One canned fault experiment over a viewer population."""

    name: str
    description: str
    n_clients: int = 8
    duration_s: float = 6.0
    stagger_s: float = 0.4
    seed: int = 23
    horizon_s: float = 60.0
    detect_delay_s: float = 0.5
    #: provision a standby media server for failover
    replica: bool = True
    #: hand every session the DEFAULT_RETRY policy
    retry: bool = True
    #: HeartbeatMonitor kwargs per session (None = no heartbeats)
    heartbeat: dict[str, Any] | None = None
    #: smoke mode scales the scenario down for CI gate runs
    smoke_clients: int = 4
    smoke_duration_s: float = 4.0
    #: "star" = classic single-router shape; "cdn" = two regions with
    #: POPs and per-region media replicas from the placement layer
    topology: str = "star"


CHAOS_SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            name="none",
            description="empty plan — the inertness baseline",
            replica=False, retry=False,
        ),
        ChaosScenario(
            name="crash",
            description="media server crashes mid-stream; replica failover",
        ),
        ChaosScenario(
            name="flap",
            description="server access link flaps under active streams",
            replica=False,
        ),
        ChaosScenario(
            name="partition",
            description="control path partitions; RPC retry rides it out",
            replica=False,
            heartbeat={"interval_s": 0.5, "timeout_s": 0.4, "miss_limit": 2},
        ),
        ChaosScenario(
            name="combo",
            description="impaired control, link flaps and a crash at once",
            heartbeat={"interval_s": 0.5, "timeout_s": 0.4, "miss_limit": 2},
        ),
        ChaosScenario(
            name="replica-crash",
            description="a regional edge replica crashes; its viewers "
                        "fail over to the origin",
            topology="cdn",
            replica=False,  # replicas come from the placement layer
        ),
    )
}


def _crash_at(n_clients: int, stagger_s: float, duration_s: float) -> float:
    """A crash instant inside every viewer's active playout window."""
    return (n_clients - 1) * stagger_s + 0.3 * duration_s


def build_plan(name: str, *, n_clients: int, stagger_s: float,
               duration_s: float) -> FaultPlan:
    """The fault schedule for one scenario at one population shape."""
    crash_at = _crash_at(n_clients, stagger_s, duration_s)
    server_link = ("router", "host:srv1")
    if name == "none":
        return FaultPlan()
    if name == "crash":
        return FaultPlan((
            ServerCrashFault(server="srv1", media_server="media",
                             at=crash_at),
        ))
    if name == "flap":
        return FaultPlan((
            LinkFlapFault(src=server_link[0], dst=server_link[1],
                          at=1.5, period_s=1.2, down_s=0.3, count=3),
        ))
    if name == "partition":
        return FaultPlan((
            ControlPartitionFault(at=0.5 * (n_clients - 1) * stagger_s,
                                  duration_s=1.2),
        ))
    if name == "combo":
        return FaultPlan((
            ControlImpairFault(at=0.5, duration_s=1.5, drop_prob=0.2),
            LinkFlapFault(src=server_link[0], dst=server_link[1],
                          at=1.0, period_s=1.5, down_s=0.25, count=2),
            ServerCrashFault(server="srv1", media_server="media",
                             at=crash_at),
        ))
    if name == "replica-crash":
        return FaultPlan((
            ServerCrashFault(server="srv1", media_server="media@east",
                             at=crash_at),
        ))
    raise KeyError(
        f"unknown chaos scenario {name!r}; available: "
        f"{sorted(CHAOS_SCENARIOS)}"
    )


@dataclass(slots=True)
class ChaosRun:
    """Everything one chaos run produced."""

    scenario: str
    population: Any
    digest: str
    artifact: dict[str, Any] = field(default_factory=dict)
    #: the FlightRecorder when ``flight_dump`` was requested — lets
    #: callers trigger a post-run dump (e.g. on an SLO violation)
    flight_recorder: Any = None


def run_chaos(
    name: str = "crash",
    *,
    smoke: bool = False,
    seed: int | None = None,
    n_clients: int | None = None,
    duration_s: float | None = None,
    recovery: bool = True,
    retry: bool | None = None,
    trace: bool = True,
    flight_dump: str | None = None,
    flight_window_s: float = 30.0,
) -> ChaosRun:
    """Run one chaos scenario end to end and return its results.

    ``recovery=False`` and ``retry=False`` disable the corresponding
    defence while keeping the identical fault schedule — the control
    arm of the experiment.

    ``flight_dump`` wraps the run's tracer in a
    :class:`~repro.obs.flightrec.FlightRecorder` that auto-dumps the
    trailing ``flight_window_s`` sim-seconds of events to that path
    on the first injected fault; the dump metadata lands in the
    artifact under ``flight_dump``.
    """
    from repro.core.config import EngineConfig
    from repro.core.engine import ServiceEngine
    from repro.obs.tracer import RecordingTracer

    scenario = CHAOS_SCENARIOS.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown chaos scenario {name!r}; available: "
            f"{sorted(CHAOS_SCENARIOS)}"
        )
    n = n_clients if n_clients is not None else (
        scenario.smoke_clients if smoke else scenario.n_clients)
    duration = duration_s if duration_s is not None else (
        scenario.smoke_duration_s if smoke else scenario.duration_s)
    seed = seed if seed is not None else scenario.seed
    use_retry = scenario.retry if retry is None else retry

    tracer = RecordingTracer() if trace else None
    recorder = None
    if flight_dump is not None:
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder(inner=tracer, dump_path=flight_dump,
                                  window_s=flight_window_s)
        tracer = recorder
    layers = None
    if scenario.topology == "cdn":
        from repro.net import cdn_stack

        layers = cdn_stack(clients_per_region=max(1, n // 2))
    eng = ServiceEngine(EngineConfig(seed=seed), tracer=tracer,
                        layers=layers)
    eng.add_server(
        "srv1",
        documents={"doc": (chaos_markup(duration), "chaos")},
    )
    eng.attach_service_monitor()
    eng.attach_timeseries()
    if scenario.replica:
        eng.add_media_replica("srv1", "media")
    plan = build_plan(name, n_clients=n, stagger_s=scenario.stagger_s,
                      duration_s=duration)
    eng.install_faults(
        plan,
        retry=DEFAULT_RETRY if use_retry else None,
        recovery=recovery,
        heartbeat=scenario.heartbeat,
        detect_delay_s=scenario.detect_delay_s,
    )
    pop = eng.orchestrator.run_population(
        n, "srv1", "doc", stagger_s=scenario.stagger_s,
        horizon_s=scenario.horizon_s,
    )
    eng.faults.stop()
    digest = population_digest(pop)
    watchdog = eng.watchdogs.get("srv1")
    artifact = {
        "schema": CHAOS_SCHEMA,
        "version": CHAOS_SCHEMA_VERSION,
        "scenario": name,
        "smoke": smoke,
        "seed": seed,
        "clients": n,
        "duration_s": duration,
        "recovery": recovery,
        "retry": use_retry,
        "faults": plan.to_dict(),
        "sessions": len(pop),
        "completed": len(pop.completed()),
        "delivered": len(pop.delivered()),
        "retries": sum(o.result.retries for o in pop),
        "recoveries": sum(o.result.recoveries for o in pop),
        "digest": digest,
    }
    if watchdog is not None:
        artifact["watchdog"] = {
            "detections": watchdog.detections,
            "streams_failed_over": watchdog.streams_failed_over,
            "streams_lost": watchdog.streams_lost,
            "sessions_saved": len(watchdog.sessions_saved),
        }
    if pop.service:
        artifact["service"] = pop.service
    if pop.timeseries:
        artifact["timeseries"] = pop.timeseries
    if trace:
        artifact["qoe"] = pop.qoe_summary()
    if recorder is not None:
        artifact["flight_dump"] = dict(recorder.last_dump)
    return ChaosRun(scenario=name, population=pop, digest=digest,
                    artifact=artifact, flight_recorder=recorder)


def check_determinism(name: str = "crash", *, smoke: bool = True,
                      seed: int | None = None) -> tuple[bool, str, str]:
    """Run a scenario twice; (identical?, digest_a, digest_b)."""
    a = run_chaos(name, smoke=smoke, seed=seed)
    b = run_chaos(name, smoke=smoke, seed=seed)
    return a.digest == b.digest, a.digest, b.digest
