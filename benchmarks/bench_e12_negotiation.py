"""E12 — QoS negotiation at connection establishment (§4).

Claim: admission weighs "the lower thresholds in QoS and Quality of
Presentation the user is willing to accept" — i.e. a connection that
does not fit at full quality can still be admitted at a reduced one.
"""

from repro.analysis import render_table
from repro.core.experiments import run_negotiation_experiment


def test_e12_negotiation(report, once):
    headers, rows = once(run_negotiation_experiment)
    report("e12_negotiation",
           render_table("E12 — admission with/without a negotiation floor "
                        "(20 Mb/s capacity, 2 Mb/s requests, 0.5 Mb/s floor)",
                        headers, rows))
    table = {(r[0], r[1]): r for r in rows}
    for offered in (12, 16, 24):
        on = table[(offered, "on")]
        off = table[(offered, "off")]
        # Negotiation serves strictly more users under overload...
        assert on[2] > off[2]
        # ...at a (deeper) initial grade for the negotiated ones.
        assert on[4] >= off[4]
        assert on[3] > 0
    # No overload, no difference.
    assert table[(8, "on")][2] == table[(8, "off")][2]
    # Negotiation never oversubscribes the capacity.
    assert all(r[5] <= 100.0 for r in rows)
