"""repro — reproduction of "On-Demand Hypermedia/Multimedia Service
over Broadband Networks" (HPDC-5, 1996).

Public API entry points:

* :class:`repro.core.ServiceEngine` — compose and run the full
  service (servers + network + client);
* :class:`repro.hml.DocumentBuilder` / :func:`repro.hml.parse` /
  :func:`repro.hml.serialize` — author and exchange presentation
  scenarios;
* :class:`repro.hermes.HermesService` — the distance-education
  application;
* :mod:`repro.core.experiments` — the canned experiment runners
  behind the benchmark harness.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.core import EngineConfig, ServiceEngine, SessionResult, TrafficConfig
from repro.hml import DocumentBuilder, HmlDocument, parse, serialize

__version__ = "1.0.0"

__all__ = [
    "DocumentBuilder",
    "EngineConfig",
    "HmlDocument",
    "ServiceEngine",
    "SessionResult",
    "TrafficConfig",
    "__version__",
    "parse",
    "serialize",
]
