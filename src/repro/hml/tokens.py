"""Token types and the keyword registry (paper Table 1).

The registry is the single source of truth for the language's
keywords; the Table 1 benchmark regenerates the paper's table from it
rather than from a hard-coded copy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "KeywordInfo", "KEYWORDS", "keyword_table_rows"]


class TokenKind(enum.Enum):
    TAG_OPEN = "tag-open"  # <KEYWORD
    TAG_CLOSE = "tag-close"  # </KEYWORD
    TEXT = "text"  # raw text run between tags
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str  # keyword name for tags, raw text for TEXT
    line: int
    column: int


@dataclass(frozen=True, slots=True)
class KeywordInfo:
    """One keyword with its Table 1 description and grammar role."""

    name: str
    description: str
    category: str
    is_element: bool  # appears as a <TAG>
    is_attribute: bool  # appears as KEY=value inside an element body


#: The language keywords, following paper Table 1 (which lists
#: TITLE / H1 H2 H3 / PAR SEP / TEXT IMG AU VI / SOURCE ID /
#: STARTIME DURATION / I B U / NOTE) plus the keywords the grammar in
#: Figure 1 introduces (AU_VI, HLINK, AT, HEIGHT, WIDTH, WHERE).
KEYWORDS: dict[str, KeywordInfo] = {
    k.name: k
    for k in [
        KeywordInfo("TITLE", "Document title indicator", "structure", True, False),
        KeywordInfo("H1", "Heading indicator (level 1)", "structure", True, False),
        KeywordInfo("H2", "Heading indicator (level 2)", "structure", True, False),
        KeywordInfo("H3", "Heading indicator (level 3)", "structure", True, False),
        KeywordInfo("PAR", "Paragraph indicator", "structure", True, False),
        KeywordInfo("SEP", "Separator indicator", "structure", True, False),
        KeywordInfo("TEXT", "Media type indicator: text", "media", True, False),
        KeywordInfo("IMG", "Media type indicator: image", "media", True, False),
        KeywordInfo("AU", "Media type indicator: audio", "media", True, False),
        KeywordInfo("VI", "Media type indicator: video", "media", True, False),
        KeywordInfo(
            "AU_VI", "Media type indicator: synchronized audio+video",
            "media", True, False,
        ),
        KeywordInfo("SOURCE", "Media source indicator", "attribute", False, True),
        KeywordInfo("ID", "Media id indicator", "attribute", False, True),
        KeywordInfo(
            "STARTIME", "Media time characteristics indicator: relative start time",
            "time", False, True,
        ),
        KeywordInfo(
            "DURATION", "Media time characteristics indicator: playout duration",
            "time", False, True,
        ),
        KeywordInfo("B", "Boldface characters", "format", True, False),
        KeywordInfo("I", "Italics characters", "format", True, False),
        KeywordInfo("U", "Underline characters", "format", True, False),
        KeywordInfo("NOTE", "Annotation indicator", "attribute", False, True),
        KeywordInfo("HLINK", "Hyperlink indicator", "link", True, False),
        KeywordInfo(
            "AT", "Timed-activation indicator for hyperlinks", "link", False, True,
        ),
        KeywordInfo("HEIGHT", "Image height placement attribute", "layout",
                    False, True),
        KeywordInfo("WIDTH", "Image width placement attribute", "layout", False, True),
        KeywordInfo(
            "WHERE", "Media placement (display coordinates) attribute",
            "layout", False, True,
        ),
        KeywordInfo(
            "KIND", "Hyperlink kind: sequential or explorational",
            "link", False, True,
        ),
        KeywordInfo(
            "REPEAT", "Media repetition (loop) indicator — §7 extension",
            "time", False, True,
        ),
    ]
}

#: Element keywords (usable as tags).
ELEMENT_KEYWORDS = frozenset(k for k, v in KEYWORDS.items() if v.is_element)
#: Attribute keywords (usable as KEY=value in element bodies).
ATTRIBUTE_KEYWORDS = frozenset(k for k, v in KEYWORDS.items() if v.is_attribute)


def keyword_table_rows() -> list[tuple[str, str]]:
    """Rows of the paper's Table 1 regenerated from the registry.

    Groups keywords the way the paper does (one row per related
    keyword family).
    """
    rows: list[tuple[str, str]] = [
        ("TITLE", KEYWORDS["TITLE"].description),
        ("H1, H2, H3", "Heading indicators"),
        ("PAR, SEP", "Paragraph and separator indicators"),
        ("TEXT, IMG, AU, VI, AU_VI", "Media type indicators"),
        ("SOURCE, ID", "Media source and id indicators"),
        ("STARTIME, DURATION, REPEAT", "Media time characteristics "
                                       "indicators (REPEAT: §7 extension)"),
        ("I, B, U", "Italics, boldface, underline characters"),
        ("NOTE", KEYWORDS["NOTE"].description),
        ("HLINK, AT, KIND", "Hyperlink, timed-activation and link-kind "
                            "indicators"),
        ("HEIGHT, WIDTH, WHERE", "Media placement attributes"),
    ]
    # Sanity: every keyword named in a row exists in the registry.
    for names, _ in rows:
        for name in names.replace(",", " ").split():
            assert name in KEYWORDS, f"Table 1 row references unknown keyword {name}"
    return rows
