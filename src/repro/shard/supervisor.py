# lint: allow-file(det-wall-clock)
"""Shard supervision: spawn, probe, retry, tear down, merge.

The supervisor owns K worker processes and treats them as crashable:

* **liveness** — workers heartbeat over their private pipes; a shard
  whose heartbeats go stale (or whose optional wall-clock deadline
  passes) is killed and handled like a crash. Slow is not dead: with
  no deadline set, a shard may take as long as it keeps heartbeating;
* **retry** — a crashed/hung/timed-out shard is relaunched up to
  ``max_retries`` times with exponential backoff plus deterministic
  jitter (drawn from the shard's own seed stream, so two operators
  replaying the same failure schedule get the same pacing). A retry
  re-runs the shard's cells from their seed streams, making it
  byte-identical to the lost attempt;
* **teardown** — SIGINT/SIGTERM flip an interrupt flag; the run loop
  exits and a ``finally`` block terminates every live worker (no
  orphans), restores the previous signal handlers, and — under
  ``tolerate_failures`` — merges whatever cells arrived into a
  partial result stamped ``completeness < 1.0``;
* **degradation** — with retries exhausted, ``tolerate_failures``
  merges the surviving shards instead of aborting; without it the
  run raises :class:`~repro.shard.result.ShardFailure` carrying the
  per-shard failure report.

Transport: one simplex pipe per shard attempt, with the worker as its
sole writer. The parent closes its copy of the write end the moment
the worker has forked, so worker death — clean exit, crash, SIGKILL
mid-message — always surfaces as end-of-file on the read end, never
as a read blocked on a truncated frame. (A shared queue fails exactly
there: a killed writer can wedge every other participant.) A retried
shard gets a fresh pipe, so a lost attempt's stragglers cannot leak
into the new attempt's stream.

Everything here is wall-clock territory (real processes, real
deadlines); determinism lives inside the cells and the merge.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import time
from multiprocessing import connection as mp_connection
from typing import Any, Callable

import numpy as np

from repro.shard.merge import merge_cell_docs, merged_digest
from repro.shard.plan import ShardPlan, ShardWorkload
from repro.shard.result import ShardedRunResult, ShardFailure, ShardStatus
from repro.shard.worker import worker_main

__all__ = ["ShardSupervisor"]


class _Shard:
    """Supervisor-side state of one shard."""

    __slots__ = ("status", "cells", "proc", "conn", "attempt", "last_hb",
                 "deadline", "respawn_at", "rng")

    def __init__(self, status: ShardStatus,
                 cells: list[tuple[int, int, int, int]],
                 rng: np.random.Generator) -> None:
        self.status = status
        self.cells = cells  # (cell, lo, hi, seed) tuples
        self.proc: mp.process.BaseProcess | None = None
        #: read end of the current attempt's pipe
        self.conn: mp_connection.Connection | None = None
        self.attempt = 0
        self.last_hb = 0.0
        self.deadline = float("inf")
        self.respawn_at = 0.0
        self.rng = rng


class ShardSupervisor:
    """Runs a :class:`ShardPlan` under supervision; returns the merge."""

    def __init__(
        self,
        plan: ShardPlan,
        workload: ShardWorkload,
        *,
        max_retries: int = 2,
        heartbeat_interval_s: float = 0.5,
        heartbeat_timeout_s: float = 15.0,
        shard_timeout_s: float | None = None,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 5.0,
        jitter_frac: float = 0.25,
        tolerate_failures: bool = False,
        poll_interval_s: float = 0.05,
        tracer: Any | None = None,
        on_spawn: Callable[[int, int, Any], None] | None = None,
    ) -> None:
        self.plan = plan
        self.workload = workload
        self.max_retries = max_retries
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        #: optional per-attempt wall deadline; None = heartbeats alone
        #: decide liveness (a slow shard that still beats is healthy)
        self.shard_timeout_s = shard_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter_frac = jitter_frac
        self.tolerate_failures = tolerate_failures
        self.poll_interval_s = poll_interval_s
        self.tracer = tracer
        #: test/ops hook called as (shard, attempt, process) after spawn
        self.on_spawn = on_spawn
        self._interrupted = False
        self._t0 = 0.0
        self._shards: list[_Shard] = []

    # -- lifecycle helpers ---------------------------------------------------
    def _now(self) -> float:
        return time.monotonic() - self._t0

    def _emit(self, kind: str, name: str = "", **args: Any) -> None:
        if self.tracer is not None and getattr(self.tracer, "enabled",
                                               True):
            self.tracer.emit(self._now(), kind, name, **args)

    def request_interrupt(self) -> None:
        """Ask the run loop to stop (signal-handler safe)."""
        self._interrupted = True

    def _backoff_s(self, shard: _Shard) -> float:
        base = min(self.backoff_max_s,
                   self.backoff_base_s * (2 ** (shard.status.retries - 1)))
        # Deterministic jitter: the shard's seed stream, not wall
        # entropy, so a replayed failure schedule paces identically.
        return base * (1.0 + self.jitter_frac * float(shard.rng.random()))

    def _spawn(self, shard: _Shard) -> None:
        shard.attempt += 1
        shard.status.attempts = shard.attempt
        shard.status.status = "running"
        now = time.monotonic()
        shard.last_hb = now
        shard.deadline = (now + self.shard_timeout_s
                          if self.shard_timeout_s is not None
                          else float("inf"))
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(send_conn, self.workload, shard.status.shard,
                  shard.attempt, shard.cells, self.heartbeat_interval_s),
            name=f"shard-{shard.status.shard}",
            daemon=True,  # orphan backstop: dies with the supervisor
        )
        proc.start()
        # Close our copy of the write end IMMEDIATELY: the worker must
        # be the pipe's only writer, and no later-forked sibling may
        # inherit this fd — that is what guarantees EOF on its death.
        send_conn.close()
        shard.proc = proc
        shard.conn = recv_conn
        self._emit("shard.spawn", f"shard-{shard.status.shard}",
                   shard=shard.status.shard, attempt=shard.attempt,
                   cells=len(shard.cells), pid=proc.pid)
        if self.on_spawn is not None:
            self.on_spawn(shard.status.shard, shard.attempt, proc)

    def _close_conn(self, shard: _Shard) -> None:
        if shard.conn is not None:
            try:
                shard.conn.close()
            except OSError:
                pass
            shard.conn = None

    def _fail_attempt(self, shard: _Shard, reason: str) -> None:
        """One attempt died; kill remains, schedule retry or give up."""
        s = shard.status
        s.failures.append(reason)
        if shard.proc is not None and shard.proc.is_alive():
            shard.proc.terminate()
            shard.proc.join(timeout=2.0)
            if shard.proc.is_alive():
                shard.proc.kill()
                shard.proc.join(timeout=2.0)
        shard.proc = None
        self._close_conn(shard)
        self._emit("fault.shard", f"shard-{s.shard}", shard=s.shard,
                   attempt=shard.attempt, reason=reason)
        if s.retries >= self.max_retries:
            s.status = "failed"
            return
        s.retries += 1
        s.status = "retry-wait"
        delay = self._backoff_s(shard)
        shard.respawn_at = time.monotonic() + delay
        self._emit("shard.retry", f"shard-{s.shard}", shard=s.shard,
                   attempt=shard.attempt, backoff_s=round(delay, 3))

    # -- the run loop --------------------------------------------------------
    def run(self) -> ShardedRunResult:
        """Supervise the plan to completion; return the merged result.

        Raises :class:`ShardFailure` when shards fail permanently (or
        the run is interrupted) and ``tolerate_failures`` is off.
        """
        plan = self.plan
        self._t0 = time.monotonic()
        self._ctx = mp.get_context()
        self._shards = []
        for s in range(plan.n_shards):
            cells = plan.worker_cells(s)
            status = ShardStatus(shard=s, cells=[c[0] for c in cells])
            rng = np.random.default_rng(plan.shard_seed(s))
            self._shards.append(_Shard(status, cells, rng))

        cell_docs: dict[int, dict] = {}
        attempt_wall: dict[int, float] = {}
        old_int = signal.getsignal(signal.SIGINT)
        old_term = signal.getsignal(signal.SIGTERM)

        def _on_signal(signum: int, frame: Any) -> None:
            self.request_interrupt()

        try:
            signal.signal(signal.SIGINT, _on_signal)
            signal.signal(signal.SIGTERM, _on_signal)
        except ValueError:
            old_int = old_term = None  # not the main thread (tests)

        try:
            for shard in self._shards:
                if shard.cells:
                    self._spawn(shard)
                else:
                    shard.status.status = "done"
            while not self._interrupted:
                self._drain(cell_docs, attempt_wall)
                now = time.monotonic()
                for shard in self._shards:
                    s = shard.status
                    if s.status == "running":
                        if shard.proc is not None \
                                and not shard.proc.is_alive():
                            # Consume everything the dead worker left
                            # in its pipe (racing final messages, then
                            # EOF) before declaring the exit a crash.
                            while shard.conn is not None:
                                self._drain_conn(shard, cell_docs,
                                                 attempt_wall)
                            if s.status != "done":
                                code = shard.proc.exitcode
                                self._fail_attempt(shard,
                                                   f"exited({code})")
                            continue
                        if now - shard.last_hb > self.heartbeat_timeout_s:
                            self._fail_attempt(shard, "heartbeat-lost")
                        elif now > shard.deadline:
                            self._fail_attempt(shard, "timeout")
                    elif s.status == "retry-wait" \
                            and now >= shard.respawn_at:
                        # Discard the lost attempt's cells: the retry
                        # re-runs them byte-identically.
                        for cell, _lo, _hi, _seed in shard.cells:
                            cell_docs.pop(cell, None)
                        self._spawn(shard)
                if all(sh.status.status in ("done", "failed")
                       for sh in self._shards):
                    break
        finally:
            if old_int is not None:
                signal.signal(signal.SIGINT, old_int)
                signal.signal(signal.SIGTERM, old_term)
            self._teardown()

        return self._finish(cell_docs, attempt_wall)

    def _drain(self, cell_docs: dict[int, dict],
               attempt_wall: dict[int, float]) -> None:
        """Service every readable shard pipe (or sleep one poll tick)."""
        by_conn = {shard.conn: shard for shard in self._shards
                   if shard.conn is not None}
        if not by_conn:
            time.sleep(self.poll_interval_s)
            return
        ready = mp_connection.wait(list(by_conn),
                                   timeout=self.poll_interval_s)
        for conn in ready:
            self._drain_conn(by_conn[conn], cell_docs, attempt_wall)

    def _drain_conn(self, shard: _Shard, cell_docs: dict[int, dict],
                    attempt_wall: dict[int, float]) -> None:
        """Dispatch all complete frames currently in one shard's pipe.

        End-of-file — including mid-frame, the SIGKILL-during-send
        case — closes the pipe; the run loop's liveness checks decide
        what the death means. A frame whose first bytes have arrived
        blocks only until its live writer finishes the send.
        """
        while shard.conn is not None:
            try:
                if not shard.conn.poll(0):
                    return
                msg = shard.conn.recv()
            except (EOFError, OSError):
                self._close_conn(shard)
                return
            tag, _shard_idx, attempt = msg[0], msg[1], msg[2]
            if attempt != shard.attempt:
                continue  # straggler from a superseded attempt
            if tag == "hb":
                shard.last_hb = time.monotonic()
            elif tag == "cell":
                shard.last_hb = time.monotonic()
                cell_docs[msg[3]["cell"]] = msg[3]
            elif tag == "done":
                s = shard.status
                s.status = "done"
                s.wall_s = msg[3]
                attempt_wall[s.shard] = msg[3]
                self._emit("shard.exit", f"shard-{s.shard}",
                           shard=s.shard, attempt=attempt,
                           wall_s=round(msg[3], 3))
                if shard.proc is not None:
                    shard.proc.join(timeout=5.0)
                self._close_conn(shard)
            elif tag == "fatal":
                self._fail_attempt(shard, f"exception: {msg[3]}")

    def _teardown(self) -> None:
        """Kill every live worker and close every pipe — no orphans."""
        for shard in self._shards:
            proc = shard.proc
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
            shard.proc = None
            self._close_conn(shard)

    def _finish(self, cell_docs: dict[int, dict],
                attempt_wall: dict[int, float]) -> ShardedRunResult:
        plan = self.plan
        wall_s = time.monotonic() - self._t0
        docs = [cell_docs[c] for c in sorted(cell_docs)]
        missing = [c for c in range(plan.n_cells) if c not in cell_docs]
        merged_clients = sum(d["hi"] - d["lo"] for d in docs)
        completeness = merged_clients / plan.n_clients
        merged = merge_cell_docs(docs) if docs else {"outcomes": [],
                                                     "metrics": {}}
        digest = merged_digest(merged)
        self._emit("shard.merge", "merge", cells=len(docs),
                   missing=len(missing),
                   completeness=round(completeness, 4))
        result = ShardedRunResult(
            clients=plan.n_clients,
            cell_clients=plan.cell_clients,
            n_shards=plan.n_shards,
            seed=plan.seed,
            merged=merged,
            digest=digest,
            completeness=completeness,
            cells_total=plan.n_cells,
            cells_merged=len(docs),
            missing_cells=missing,
            shards=[sh.status for sh in self._shards],
            events=sum(d["events"] for d in docs),
            wall_s=wall_s,
            cpu_wall_s=sum(d["wall_s"] for d in docs),
            interrupted=self._interrupted,
        )
        if not result.ok and not self.tolerate_failures:
            failed = result.failed_shards
            what = "interrupted" if self._interrupted else (
                f"shards {failed} exhausted retries")
            raise ShardFailure(
                f"sharded run incomplete ({what}): merged "
                f"{result.cells_merged}/{result.cells_total} cells, "
                f"completeness {completeness:.3f}; rerun with "
                f"tolerate_failures to accept a partial result",
                result,
            )
        return result
