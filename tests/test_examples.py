"""Smoke tests: every shipped example runs end-to-end.

Examples are documentation; these tests keep them from rotting as the
library evolves.
"""

import importlib.util
import pathlib
import sys

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Delivery report" in out
    assert "startup latency" in out
    assert "worst intermedia skew" in out


def test_distance_education(capsys):
    out = run_example("distance_education", capsys)
    assert "available Hermes servers" in out
    assert "tutor's sequential path: routing-1 -> routing-2 -> routing-3" in out
    assert "tutor replied" in out


def test_adaptive_news_service(capsys):
    out = run_example("adaptive_news_service", capsys)
    assert "Per-stream outcome" in out
    assert "grading decisions" in out
    assert "degrades" in out


def test_virtual_gallery(capsys):
    out = run_example("virtual_gallery", capsys)
    assert "resumed-conn" in out
    assert "tour over" in out


def test_service_operator(capsys):
    out = run_example("service_operator", capsys)
    assert "Concurrent sessions" in out
    assert "Admit rates by contract class" in out
    assert "negotiation" in out
