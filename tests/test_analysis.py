"""Unit tests for analysis helpers (stats + table rendering)."""

import pytest

from repro.analysis import mean_ci, render_series, render_table, summarize


# ----------------------------------------------------------------- stats
def test_mean_ci_basic():
    mean, half = mean_ci([1.0, 2.0, 3.0, 4.0])
    assert mean == pytest.approx(2.5)
    assert half > 0


def test_mean_ci_degenerate_cases():
    assert mean_ci([]) == (0.0, 0.0)
    assert mean_ci([5.0]) == (5.0, 0.0)
    assert mean_ci([2.0, 2.0, 2.0]) == (2.0, 0.0)


def test_mean_ci_wider_at_higher_confidence():
    data = [1, 5, 2, 8, 3]
    _, h95 = mean_ci(data, confidence=0.95)
    _, h99 = mean_ci(data, confidence=0.99)
    assert h99 > h95


def test_summarize():
    s = summarize(range(1, 101))
    assert s["mean"] == pytest.approx(50.5)
    assert s["median"] == pytest.approx(50.5)
    assert s["p95"] == pytest.approx(95.05)
    assert s["max"] == 100.0
    empty = summarize([])
    assert empty == {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}


# ----------------------------------------------------------------- tables
def test_render_table_alignment_and_content():
    out = render_table("My Title", ["name", "value"],
                       [["alpha", 1.2345], ["b", 123456.0]])
    lines = out.splitlines()
    assert lines[0] == "My Title"
    assert lines[1] == "=" * len("My Title")
    assert "name" in lines[2] and "value" in lines[2]
    assert "alpha" in out and "1.23" in out
    assert "123,456" in out  # thousands formatting
    # Columns align: header and data rows share separator positions
    # (lines[3] is the ---+--- rule).
    data_lines = [lines[2]] + lines[4:]
    assert len({line.find(" | ") for line in data_lines}) == 1


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table("t", ["a", "b"], [["only-one"]])


def test_render_table_float_formats():
    out = render_table("t", ["v"], [[0.0], [0.00012345], [3.14159], [2000.5]])
    assert "0" in out
    assert "0.0001234" in out or "0.0001235" in out
    assert "3.14" in out
    assert "2,000" in out or "2,001" in out


def test_render_series():
    out = render_series("Load", "t", "gaps", [(1, 2.0), (2, 4.0), (3, 0.0)])
    lines = out.splitlines()
    assert lines[0] == "Load"
    # Largest value gets the longest bar.
    bar_lengths = [line.count("#") for line in lines[3:]]
    assert bar_lengths[1] == max(bar_lengths)
    assert bar_lengths[2] == 0
    assert render_series("E", "x", "y", []).endswith("(no data)")
