"""Flight recorder: ring bounds, triggers, dumps, tracer delegation."""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.faults.scenarios import run_chaos
from repro.obs import read_jsonl, summarize_trace
from repro.obs.flightrec import DEFAULT_TRIGGER_KINDS, FlightRecorder
from repro.obs.tracer import RecordingTracer


def test_ring_is_bounded_and_counts_drops():
    rec = FlightRecorder(max_events=3)
    for t in range(5):
        rec.emit(float(t), "session", "s")
    assert len(rec.ring) == 3
    assert [e.time for e in rec.ring] == [2.0, 3.0, 4.0]
    assert rec.dropped_events == 2


def test_skip_kinds_filters_before_the_ring():
    rec = FlightRecorder(skip_kinds=("noise",))
    rec.emit(0.0, "noise", "x")
    rec.emit(1.0, "session", "s")
    assert [e.kind for e in rec.ring] == ["session"]


def test_window_keeps_trailing_span_only():
    rec = FlightRecorder(window_s=2.0)
    for t in (0.0, 5.0, 8.5, 9.0, 10.0):
        rec.emit(t, "session", "s")
    assert [e.time for e in rec.window()] == [8.5, 9.0, 10.0]
    assert [e.time for e in rec.window(0.5)] == [10.0]


def test_standalone_recorder_stays_on_control_tier():
    assert FlightRecorder().detail is False
    # Wrapping inherits the inner tracer's tier so its recording
    # keeps full fidelity.
    assert FlightRecorder(inner=RecordingTracer()).detail is True


def test_explicit_dump_roundtrips_through_trace_tooling(tmp_path):
    rec = FlightRecorder()
    rec.emit(1.0, "session", "open", session="s1")
    rec.emit(2.0, "admission.accept", "srv1", session="s1")
    path = rec.dump(str(tmp_path / "dump.jsonl"))
    events = read_jsonl(path)
    assert [e.kind for e in events] == ["session", "admission.accept"]
    assert any(summarize_trace(events))
    assert rec.last_dump["trigger"] == "manual"
    assert rec.last_dump["events"] == 2


def test_dump_without_path_raises():
    with pytest.raises(ValueError):
        FlightRecorder().dump()


def test_wrapped_tracer_sees_everything_and_delegates(tmp_path):
    inner = RecordingTracer()
    rec = FlightRecorder(inner=inner, max_events=50)
    eng = ServiceEngine(EngineConfig(seed=7), tracer=rec)
    eng.add_server("srv1",
                   documents={"doc": (av_markup(1.0, False), "t")})
    pop = eng.orchestrator.run_population(1, "srv1", "doc")
    assert len(pop.completed()) == 1
    # The inner tracer recorded the full firehose...
    assert inner.kind_counts().get("rtp.recv", 0) > 0
    # ...and attribute access falls through to it (metrics registry,
    # event list), making the wrapper drop-in for a RecordingTracer.
    assert rec.metrics is inner.metrics
    assert rec.events is inner.events
    # QoE scoring reads the tracer through the orchestrator unchanged.
    assert pop.qoe_summary()["sessions"] == 1


def test_unwrapped_recorder_has_no_inner_surface():
    rec = FlightRecorder()
    with pytest.raises(AttributeError):
        rec.kind_counts
    assert getattr(rec, "metrics", None) is None


def test_chaos_crash_auto_dumps_fault_window(tmp_path):
    """The acceptance path: crash run dumps a parseable fault window."""
    dump = str(tmp_path / "FLIGHT_crash.jsonl")
    run = run_chaos("crash", smoke=True, flight_dump=dump,
                    flight_window_s=30.0)
    meta = run.artifact["flight_dump"]
    assert meta["path"] == dump
    assert meta["trigger"] in DEFAULT_TRIGGER_KINDS
    events = read_jsonl(dump)
    assert len(events) == meta["events"] > 0
    # The injected fault is inside the dumped window...
    assert any(e.kind == "fault.crash" for e in events)
    # ...the window honours its span...
    times = [e.time for e in events]
    assert max(times) - min(times) <= 30.0
    # ...and the standard summarizer parses the dump unchanged.
    sections = summarize_trace(events)
    assert any(s["title"].startswith("Top event kinds")
               for s in sections)


def test_slo_violation_triggers_dump_via_cli(tmp_path, capsys):
    from repro.__main__ import main

    dump = tmp_path / "FLIGHT_slo.jsonl"
    # Scenario "none" injects no faults; the violated rule is the
    # only incident, and it must still produce forensics.
    assert main(["slo", "--chaos", "none", "--smoke",
                 "--flight-dump", str(dump),
                 "--rule", "qoe_p50 >= 101"]) == 1
    assert "slo.violation" in capsys.readouterr().out
    assert read_jsonl(str(dump))


def test_auto_dump_fires_once_per_run(tmp_path):
    rec = FlightRecorder(dump_path=str(tmp_path / "d.jsonl"),
                         trigger_kinds=("fault.link",))
    rec.emit(1.0, "fault.link", "router")
    first = dict(rec.last_dump)
    rec.emit(2.0, "fault.link", "router")
    assert rec.last_dump == first
    assert first["trigger"] == "fault.link"
