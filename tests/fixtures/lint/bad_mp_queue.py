"""Known-bad: shared multiprocessing queue instead of sole-writer pipes."""

import multiprocessing as mp


def build_ipc():
    results = mp.Queue()  # line 7: fork-mp-queue
    return results
