"""Shared diagnostics engine for the static-analysis subsystem.

Both rule families — the HML scenario analyzer
(:mod:`repro.analysis.scenario_rules`) and the simulation determinism
linter (:mod:`repro.analysis.pyrules`) — report through this module:
a rule is a named, documented checker registered in a
:class:`RuleRegistry`; a finding is a :class:`Diagnostic` carrying a
severity, a stable rule id, an optional :class:`SourceSpan`, and a
message. Rendering goes through the existing
:class:`~repro.analysis.report.Reporter`, so ``python -m repro lint``
emits the same text tables / single-JSON-document output as every
other CLI path.

Severity contract: only :attr:`Severity.ERROR` findings fail a lint
run (non-zero exit). Warnings surface authoring smells that are legal
but suspicious; info is purely advisory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Severity",
    "SourceSpan",
    "Diagnostic",
    "Rule",
    "RuleRegistry",
    "exit_code",
    "github_annotations",
    "render_diagnostics",
    "summarize_diagnostics",
]


class Severity(enum.IntEnum):
    """Finding severity; ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class SourceSpan:
    """Where a finding anchors: a file (or scenario name) and a line.

    ``file`` is a filesystem path for Python lint findings and a
    scenario/document name for HML findings; ``line`` is 1-based
    (0 = whole file / whole document). ``snippet`` optionally carries
    the offending source line for caret-free context rendering.
    """

    file: str
    line: int = 0
    column: int = 0
    snippet: str = ""

    def location(self) -> str:
        if self.line <= 0:
            return self.file
        if self.column > 0:
            return f"{self.file}:{self.line}:{self.column}"
        return f"{self.file}:{self.line}"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding from one rule."""

    rule_id: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    #: free-form subject (stream id, module name, scenario-set name)
    subject: str = ""

    def format(self) -> str:
        """``path:line: severity[rule-id] message`` — the grep-able
        one-line rendering used by text output and test assertions."""
        where = self.span.location() if self.span is not None else self.subject
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity.label}[{self.rule_id}] {self.message}"

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR


@dataclass(frozen=True, slots=True)
class Rule:
    """A registered checker.

    ``check`` receives one analysis context (a
    :class:`~repro.analysis.scenario_rules.ScenarioContext` or a
    :class:`~repro.analysis.pyrules.PyModule`) and yields raw
    diagnostics; the registry stamps each with the rule's id and
    default severity (a checker may still emit an explicit severity
    via :meth:`RuleRegistry.run`'s pass-through).
    """

    rule_id: str
    family: str
    description: str
    severity: Severity
    check: Callable[..., Iterable[Diagnostic]]


class RuleRegistry:
    """Holds one family of rules; rules self-register via decorator.

    >>> registry = RuleRegistry("scenario")
    >>> @registry.rule("demo-rule", "fires on everything")
    ... def _check(ctx):
    ...     yield Diagnostic("", Severity.ERROR, "boom")
    """

    def __init__(self, family: str) -> None:
        self.family = family
        self._rules: dict[str, Rule] = {}

    def rule(
        self,
        rule_id: str,
        description: str,
        severity: Severity = Severity.ERROR,
    ) -> Callable[[Callable[..., Iterable[Diagnostic]]],
                  Callable[..., Iterable[Diagnostic]]]:
        """Decorator registering ``fn`` as the checker for ``rule_id``."""
        if rule_id in self._rules:
            raise ValueError(f"rule {rule_id!r} already registered "
                             f"in family {self.family!r}")

        def register(
            fn: Callable[..., Iterable[Diagnostic]],
        ) -> Callable[..., Iterable[Diagnostic]]:
            self._rules[rule_id] = Rule(
                rule_id=rule_id, family=self.family,
                description=description, severity=severity, check=fn,
            )
            return fn

        return register

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown {self.family} rule {rule_id!r}") from None

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        for rule_id in self.ids():
            yield self._rules[rule_id]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def run(self, ctx: object,
            only: Sequence[str] | None = None) -> list[Diagnostic]:
        """Run every rule (or the ``only`` subset) against ``ctx``.

        Each yielded diagnostic is stamped with the rule's id and, when
        the checker left severity unset (``rule_id == ""`` sentinel is
        not used; checkers emit real severities), the registry keeps
        whatever the checker chose — the rule's declared severity is
        the default the checker closures use.
        """
        out: list[Diagnostic] = []
        for rule in self:
            if only is not None and rule.rule_id not in only:
                continue
            for diag in rule.check(ctx):
                if diag.rule_id != rule.rule_id:
                    diag = replace(diag, rule_id=rule.rule_id)
                out.append(diag)
        out.sort(key=lambda d: (
            d.span.file if d.span else d.subject,
            d.span.line if d.span else 0,
            d.rule_id,
        ))
        return out


@dataclass(slots=True)
class _Counts:
    errors: int = 0
    warnings: int = 0
    infos: int = 0

    def count(self, diags: Iterable[Diagnostic]) -> "_Counts":
        for d in diags:
            if d.severity is Severity.ERROR:
                self.errors += 1
            elif d.severity is Severity.WARNING:
                self.warnings += 1
            else:
                self.infos += 1
        return self


def summarize_diagnostics(diags: Sequence[Diagnostic]) -> dict[str, int]:
    """``{"errors": n, "warnings": n, "infos": n}`` rollup."""
    c = _Counts().count(diags)
    return {"errors": c.errors, "warnings": c.warnings, "infos": c.infos}


def exit_code(diags: Sequence[Diagnostic]) -> int:
    """Process exit status for a lint run: 1 iff any error."""
    return 1 if any(d.is_error for d in diags) else 0


_GITHUB_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "notice",
}


def _github_escape(text: str) -> str:
    """GitHub workflow-command data escaping (%, CR, LF)."""
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def github_annotations(diags: Sequence[Diagnostic]) -> list[str]:
    """GitHub Actions workflow commands, one per finding.

    ``::error file=src/x.py,line=12,col=3::[rule-id] message`` — when
    printed from a CI step these land as inline annotations on the
    PR diff. Findings without a file span annotate the run itself.
    """
    out: list[str] = []
    for d in diags:
        props = ""
        if d.span is not None and d.span.file:
            props = f" file={_github_escape(d.span.file)}"
            if d.span.line > 0:
                props += f",line={d.span.line}"
                if d.span.column > 0:
                    props += f",col={d.span.column}"
        message = _github_escape(f"[{d.rule_id}] {d.message}")
        out.append(f"::{_GITHUB_LEVEL[d.severity]}{props}::{message}")
    return out


def render_diagnostics(reporter, diags: Sequence[Diagnostic],
                       title: str) -> None:
    """Render findings as one Reporter table (+ per-line text)."""
    rows = [
        [d.severity.label, d.rule_id,
         d.span.location() if d.span else d.subject, d.message]
        for d in diags
    ]
    if rows:
        reporter.table(title, ["severity", "rule", "where", "message"], rows)
    counts = summarize_diagnostics(diags)
    reporter.value(
        f"{title}:summary",
        f"{counts['errors']} error(s), {counts['warnings']} warning(s), "
        f"{counts['infos']} info",
    )
