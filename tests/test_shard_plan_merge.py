"""Sharding plan partition laws and population-merge algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.bench import shard_workload
from repro.shard.merge import (
    empty_population_doc,
    merge_cell_docs,
    merge_population_docs,
    merged_digest,
    session_index,
)
from repro.shard.plan import ShardPlan
from repro.shard.worker import run_cell

# -- plan: deterministic partition --------------------------------------------


def test_cells_partition_clients_exactly():
    plan = ShardPlan(n_clients=21, n_shards=3, cell_clients=4, seed=5)
    covered = []
    for cell in range(plan.n_cells):
        lo, hi = plan.cell_bounds(cell)
        assert lo < hi
        covered.extend(range(lo, hi))
    assert covered == list(range(21))


def test_shards_partition_cells_for_any_k():
    plan = ShardPlan(n_clients=40, n_shards=1, cell_clients=4)
    for k in (1, 2, 3, 7, 100):
        p = ShardPlan(n_clients=40, n_shards=k, cell_clients=4)
        assert p.n_cells == plan.n_cells
        seen = sorted(c for s in range(k) for c in p.shard_cells(s))
        assert seen == list(range(p.n_cells))


def test_cell_seed_is_shard_count_invariant():
    """The determinism cornerstone: a cell's seed stream derives from
    (root seed, cell index) only — never from how many shards run."""
    for k in (1, 2, 4, 8):
        p = ShardPlan(n_clients=32, n_shards=k, cell_clients=4, seed=11)
        q = ShardPlan(n_clients=32, n_shards=1, cell_clients=4, seed=11)
        for cell in range(p.n_cells):
            assert p.cell_seed(cell) == q.cell_seed(cell)


def test_cell_and_shard_seed_streams_are_disjoint():
    p = ShardPlan(n_clients=64, n_shards=8, cell_clients=8, seed=3)
    cell_seeds = {p.cell_seed(c) for c in range(p.n_cells)}
    shard_seeds = {p.shard_seed(s) for s in range(p.n_shards)}
    assert len(cell_seeds) == p.n_cells
    assert len(shard_seeds) == p.n_shards
    assert not cell_seeds & shard_seeds


def test_plan_validation():
    with pytest.raises(ValueError):
        ShardPlan(n_clients=0, n_shards=1)
    with pytest.raises(ValueError):
        ShardPlan(n_clients=8, n_shards=0)
    with pytest.raises(ValueError):
        ShardPlan(n_clients=8, n_shards=1, cell_clients=0)
    with pytest.raises(ValueError):
        ShardPlan(n_clients=8, n_shards=1, seed=-1)


# -- merge algebra (property-tested) ------------------------------------------


def _outcome(i: int) -> dict:
    return {"session_id": f"sess-{i}",
            "result": {"completed": bool(i % 2)}}


def _doc(indices: list[int], counts: dict[str, int]) -> dict:
    return {"outcomes": [_outcome(i) for i in indices],
            "metrics": counts}


@st.composite
def _three_disjoint_docs(draw):
    indices = sorted(draw(st.sets(st.integers(1, 200), max_size=24)))
    labels = draw(st.lists(st.integers(0, 2), min_size=len(indices),
                           max_size=len(indices)))
    parts: list[list[int]] = [[], [], []]
    for idx, lab in zip(indices, labels):
        parts[lab].append(idx)
    keys = ["frames.sent", "rtcp.reports", "ctl.drops"]
    docs = []
    for part in parts:
        counts = {k: draw(st.integers(0, 50))
                  for k in draw(st.sets(st.sampled_from(keys)))}
        docs.append(_doc(part, counts))
    return docs


@settings(max_examples=60, deadline=None)
@given(_three_disjoint_docs())
def test_merge_identity(docs):
    a = docs[0]
    assert merge_population_docs(a, empty_population_doc()) == \
        merge_population_docs(empty_population_doc(), a)
    merged = merge_population_docs(a, empty_population_doc())
    assert [session_index(o) for o in merged["outcomes"]] == \
        sorted(session_index(o) for o in a["outcomes"])


@settings(max_examples=60, deadline=None)
@given(_three_disjoint_docs())
def test_merge_associative_and_commutative(docs):
    a, b, c = docs
    left = merge_population_docs(merge_population_docs(a, b), c)
    right = merge_population_docs(a, merge_population_docs(b, c))
    assert left == right
    assert merge_population_docs(a, b) == merge_population_docs(b, a)


def test_merge_rejects_duplicate_sessions():
    a = _doc([1, 2], {})
    b = _doc([2, 3], {})
    with pytest.raises(ValueError, match="duplicate session"):
        merge_population_docs(a, b)


def test_merge_rejects_duplicate_cells():
    cell = {"cell": 0, "population": _doc([1], {})}
    with pytest.raises(ValueError, match="duplicate cell"):
        merge_cell_docs([cell, dict(cell)])


def test_session_index_rejects_malformed_ids():
    with pytest.raises(ValueError):
        session_index({"session_id": "nope"})


# -- permutation invariance over real cell documents --------------------------


def test_real_cell_merge_is_order_independent():
    """Any permutation of a 3-way split merges to the same digest —
    including the float-summing service/timeseries telemetry."""
    plan = ShardPlan(n_clients=6, n_shards=1, cell_clients=2, seed=7)
    workload = shard_workload(duration_s=1.5, stagger_s=0.25,
                              with_images=False)
    docs = [run_cell(workload, cell, *plan.cell_bounds(cell),
                     plan.cell_seed(cell))
            for cell in range(plan.n_cells)]
    reference = merged_digest(merge_cell_docs(list(docs)))
    for order in ((2, 0, 1), (1, 2, 0), (2, 1, 0)):
        shuffled = [docs[i] for i in order]
        assert merged_digest(merge_cell_docs(shuffled)) == reference
    # splitting the fold differently must not matter either: the
    # canonical sort inside merge_cell_docs is what the supervisor
    # relies on when shards deliver cells in arbitrary order
    assert len({d["digest"] for d in docs}) == len(docs)
