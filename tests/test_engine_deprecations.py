"""The ServiceEngine.run_* shims warn but still delegate unchanged."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup


def engine(seed=11):
    eng = ServiceEngine(EngineConfig(seed=seed))
    eng.add_server("srv1", documents={"doc": (av_markup(3.0), "x")})
    return eng


def test_run_full_session_shim_warns_and_matches_orchestrator():
    with pytest.warns(DeprecationWarning,
                      match="run_full_session is deprecated"):
        via_shim = engine().run_full_session("srv1", "doc")
    via_orchestrator = engine().orchestrator.run_full_session("srv1", "doc")
    assert via_shim.to_dict() == via_orchestrator.to_dict()


def test_run_concurrent_sessions_shim_warns_and_matches():
    with pytest.warns(DeprecationWarning,
                      match="run_concurrent_sessions is deprecated"):
        via_shim = engine().run_concurrent_sessions("srv1", "doc", 2,
                                                    stagger_s=0.2)
    direct = engine().orchestrator.run_concurrent_sessions("srv1", "doc", 2,
                                                           stagger_s=0.2)
    assert [r.to_dict() for r in via_shim] == [r.to_dict() for r in direct]


def test_run_autoplay_sequence_shim_warns():
    with pytest.warns(DeprecationWarning,
                      match="run_autoplay_sequence is deprecated"):
        visits = engine().run_autoplay_sequence("srv1", "doc")
    assert visits and visits[0]["document"] == "doc"


def test_run_population_shorthand_does_not_warn():
    eng = engine()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        pop = eng.run_population(2, "srv1", "doc", stagger_s=0.2)
    assert len(pop) == 2
