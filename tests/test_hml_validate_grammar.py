"""Tests for semantic validation and the grammar production table."""

from repro.hml import DocumentBuilder, validate_document
from repro.hml.ast import AudioVideoElement, HyperLink, LinkKind
from repro.hml.examples import figure2_document
from repro.hml.grammar import (
    GRAMMAR_PRODUCTIONS,
    grammar_text,
    nonterminals,
    terminals,
)
from repro.hml.tokens import KEYWORDS


def errors(issues):
    return [i for i in issues if i.is_error]


def codes(issues):
    return {i.code for i in issues}


def test_figure2_document_is_valid():
    assert not errors(validate_document(figure2_document()))


def test_duplicate_ids_detected():
    doc = (
        DocumentBuilder("t")
        .image("s:/a.gif", "X", duration=1.0)
        .audio("s:/b.au", "X", duration=1.0)
        .build()
    )
    assert "duplicate-id" in codes(validate_document(doc))


def test_avsync_start_mismatch_detected():
    doc = DocumentBuilder("t").build()
    doc.elements.append(
        AudioVideoElement(
            audio_source="a", video_source="v", audio_id="A", video_id="V",
            audio_startime=1.0, video_startime=2.0, duration=5.0,
        )
    )
    assert "avsync-startime" in codes(validate_document(doc))


def test_negative_times_detected():
    doc = DocumentBuilder("t").audio("s", "A", startime=-1.0, duration=1.0).build()
    assert "negative-startime" in codes(validate_document(doc))
    doc2 = DocumentBuilder("t").audio("s", "A", duration=-5.0).build()
    assert "bad-duration" in codes(validate_document(doc2))


def test_open_duration_warns_not_errors():
    doc = DocumentBuilder("t").audio("s", "A").build()
    issues = validate_document(doc)
    assert not errors(issues)
    assert "open-duration" in codes(issues)


def test_multiple_timed_links_detected():
    doc = (
        DocumentBuilder("t")
        .hyperlink("a", at_time=1.0)
        .hyperlink("b", at_time=2.0)
        .build()
    )
    assert "multiple-timed-links" in codes(validate_document(doc))


def test_early_timed_link_warns():
    doc = (
        DocumentBuilder("t")
        .video("s", "V", startime=0.0, duration=60.0)
        .hyperlink("next", at_time=10.0)
        .build()
    )
    issues = validate_document(doc)
    assert "early-timed-link" in codes(issues)
    assert not errors(issues)


def test_empty_link_target_detected():
    doc = DocumentBuilder("t").build()
    doc.elements.append(HyperLink(target="  ", kind=LinkKind.EXPLORATIONAL))
    assert "empty-link-target" in codes(validate_document(doc))


# ----------------------------------------------------------------- grammar
def test_every_referenced_nonterminal_is_defined():
    defined = nonterminals()
    for lhs, alts in GRAMMAR_PRODUCTIONS:
        for alt in alts:
            for sym in alt.split():
                if sym.startswith("<") and sym.endswith(">"):
                    assert sym in defined, f"{sym} referenced in {lhs} undefined"


def test_grammar_terminals_covered_by_keyword_registry():
    """Every grammar terminal maps to a registered keyword.

    END_X terminals are the closing-tag forms of X; STRING,
    PARAGRAPH and SEPARATOR are the lexical/void-tag forms.
    """
    special = {"STRING", "PARAGRAPH", "SEPARATOR"}
    for term in terminals():
        if term in special or term.startswith("/*"):
            continue
        base = term[4:] if term.startswith("END_") else term
        assert base in KEYWORDS, f"grammar terminal {term} has no keyword"


def test_grammar_text_matches_figure1_shape():
    text = grammar_text()
    assert text.splitlines()[0].startswith("<Hdocument>")
    assert "::=" in text
    assert "<Au_ViOptions>" in text
    assert "SYNC" not in text  # symbolic names only
    # One ::= per production.
    assert text.count("::=") == len(GRAMMAR_PRODUCTIONS)


def test_grammar_has_paper_production_count():
    # Figure 1 defines 36 productions (including the dangling <Next>).
    assert len(GRAMMAR_PRODUCTIONS) == 36
