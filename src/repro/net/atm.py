"""ATM cell-layer links (the paper's §7 future-work testbed).

"Future work will focus on ... the implementation of a testbed
application on an ATM network." This module adds an AAL5-style cell
layer to the link model: every packet is segmented into 53-byte cells
(48 bytes of payload each), serialization pays the ~10% cell-header
tax, and — the characteristic ATM effect — loss of *any one cell*
destroys the whole packet, amplifying a small cell-loss rate into a
much larger packet-loss rate for large (multi-cell) packets.
"""

from __future__ import annotations

from repro.des import Simulator
from repro.net.link import Link
from repro.net.packet import Packet

__all__ = ["AtmLink", "CELL_BYTES", "CELL_PAYLOAD_BYTES", "cells_for"]

CELL_BYTES = 53
CELL_PAYLOAD_BYTES = 48


def cells_for(size_bytes: int) -> int:
    """Number of ATM cells needed for a packet (AAL5, no trailer model)."""
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    return -(-size_bytes // CELL_PAYLOAD_BYTES)


class AtmLink(Link):
    """A link whose wire format is ATM cells.

    Inherits queueing from :class:`Link` (the queue still holds
    packets; segmentation happens at the transmitter, as in an AAL5
    NIC). The loss model, when present, is evaluated **per cell**.
    """

    def __init__(self, sim: Simulator, src: str, dst: str, rate_bps: float,
                 delay_s: float, queue_packets: int = 100,
                 loss_model=None) -> None:
        super().__init__(sim, src, dst, rate_bps, delay_s,
                         queue_packets=queue_packets, loss_model=loss_model)
        self.cells_tx = 0
        self.cell_loss_events = 0

    def serialization_delay(self, size_bytes: int) -> float:
        # Full cells on the wire, headers included.
        return cells_for(size_bytes) * CELL_BYTES * 8.0 / self.rate_bps

    def _propagated(self, pkt: Packet) -> None:
        if not self.up:
            self._drop_down(pkt)
            return
        n_cells = cells_for(pkt.size_bytes)
        self.cells_tx += n_cells
        if self.loss_model is not None:
            lost_cells = sum(self.loss_model.is_lost() for _ in range(n_cells))
            if lost_cells:
                # One lost cell kills the AAL5 frame.
                self.cell_loss_events += lost_cells
                self.stats.loss_drops += 1
                if self.on_drop is not None:
                    self.on_drop(pkt, "drop-loss")
                return
        if self.on_arrival is not None:
            pkt.hops += 1
            self.on_arrival(pkt)

    @property
    def cell_tax(self) -> float:
        """Fraction of wire capacity spent on cell headers/padding."""
        return 1.0 - CELL_PAYLOAD_BYTES / CELL_BYTES
