"""Tests for SMIL export and the ASCII desktop snapshot."""

from xml.etree import ElementTree as ET

from repro.client import VirtualRenderer
from repro.hml import DocumentBuilder
from repro.hml.examples import figure2_document
from repro.hml.smil_export import to_smil
from repro.model.layout import LayoutEngine


# ----------------------------------------------------------------- SMIL
def test_smil_export_figure2_structure():
    xml = to_smil(figure2_document())
    root = ET.fromstring(xml)
    assert root.tag == "smil"
    # Layout regions for the visual elements exist.
    regions = {r.get("id") for r in root.iter("region")}
    assert "r-I1" in regions and "r-I2" in regions
    # Images carry begin/dur from STARTIME/DURATION.
    imgs = {i.get("src"): i for i in root.iter("img")}
    assert imgs["imgsrv:/I1.gif"].get("begin") == "0s"
    assert imgs["imgsrv:/I1.gif"].get("dur") == "6s"
    assert imgs["imgsrv:/I2.gif"].get("begin") == "6s"
    # The AU_VI pair is a nested <par> whose children start together.
    inner_pars = [p for p in root.iter("par") if p.get("begin")]
    assert len(inner_pars) == 1
    pair = inner_pars[0]
    assert pair.get("begin") == "4s"
    kids = {c.tag for c in pair}
    assert kids == {"audio", "video"}
    assert all(c.get("begin") == "0s" for c in pair)
    # The timed link wraps the body content.
    a = root.find("./body/a")
    assert a is not None
    assert a.get("href") == "next-document"


def test_smil_export_plain_document_has_no_anchor():
    doc = (DocumentBuilder("plain")
           .audio("s:/a.au", "A", duration=2.0)
           .build())
    root = ET.fromstring(to_smil(doc))
    assert root.find("./body/a") is None
    audio = root.find(".//audio")
    assert audio.get("dur") == "2s"


def test_smil_open_ended_media_has_no_dur():
    doc = DocumentBuilder("t").audio("s:/a.au", "A").build()
    root = ET.fromstring(to_smil(doc))
    assert root.find(".//audio").get("dur") is None


# ------------------------------------------------------------- snapshot
def test_ascii_snapshot_draws_visible_boxes():
    doc = (
        DocumentBuilder("t")
        .image("s:/i.gif", "IMG1", startime=0.0, duration=5.0,
               width=400, height=300)
        .build()
    )
    layout = LayoutEngine().layout(doc)
    r = VirtualRenderer(layout)
    r.show("IMG1", 1.0)
    art = r.ascii_snapshot(t=2.0)
    assert "+" in art and "|" in art
    assert "IMG1" in art
    # After hiding, the box disappears.
    r.hide("IMG1", 3.0)
    art_later = r.ascii_snapshot(t=4.0)
    assert "IMG1" not in art_later


def test_ascii_snapshot_without_layout():
    r = VirtualRenderer()
    assert "(no layout" in r.ascii_snapshot(0.0)


def test_ascii_snapshot_figure2_mid_scenario():
    from repro.model import PresentationScenario

    scenario = PresentationScenario.from_document(figure2_document())
    r = VirtualRenderer(scenario.layout)
    r.show("I1", 0.0)
    r.hide("I1", 6.0)
    r.show("I2", 6.0)
    art = r.ascii_snapshot(t=7.0)
    assert "I2" in art and "I1" not in art
