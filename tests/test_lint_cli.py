"""End-to-end ``python -m repro lint`` behaviour: exit codes, JSON
output, rule listing."""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "fixtures")


def run_lint(*args):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


def test_self_lint_exits_zero():
    proc = run_lint("--self")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_scenarios_lint_exits_zero():
    proc = run_lint("--scenarios")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "shipped scenarios" in proc.stdout


def test_bad_fixture_exits_nonzero():
    proc = run_lint(os.path.join(FIXTURES, "hml", "bad_link_window.hml"))
    assert proc.returncode == 1
    assert "scenario-link-window" in proc.stdout


def test_warning_only_run_exits_zero():
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_port_pairing.py"))
    assert proc.returncode == 0
    assert "det-port-pairing" in proc.stdout


def test_python_fixture_errors_exit_nonzero():
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_wall_clock.py"))
    assert proc.returncode == 1
    assert "det-wall-clock" in proc.stdout


def test_json_output_is_machine_readable():
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_wall_clock.py"),
                    "--json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc  # one structured document, not free text


def test_list_rules_names_all_families():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for rule in ("det-wall-clock", "det-global-random",
                 "det-unordered-iter", "det-tracer-guard",
                 "det-port-pairing", "scenario-sync-interval",
                 "scenario-link-window", "scenario-link-dangling",
                 "scenario-bandwidth",
                 # PR 10 families: fork-safety, taint, trace-schema
                 "fork-mp-queue", "fork-module-state",
                 "fork-captured-handle", "fork-raw-artifact-write",
                 "det-taint", "trace-unknown-kind",
                 "trace-field-mismatch", "trace-detail-guard",
                 "trace-unused-kind", "trace-dynamic-kind"):
        assert rule in proc.stdout


def test_github_format_emits_annotations():
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_wall_clock.py"),
                    "--format", "github")
    assert proc.returncode == 1
    assert "::error file=" in proc.stdout
    assert "line=" in proc.stdout
    assert "[det-wall-clock]" in proc.stdout


def test_unknown_format_rejected():
    proc = run_lint("--self", "--format", "sarif")
    assert proc.returncode == 2


def test_new_family_fixture_fails_via_cli():
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_mp_queue.py"))
    assert proc.returncode == 1
    assert "fork-mp-queue" in proc.stdout


def test_baseline_flag_suppresses_finding(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "entries": [{"rule": "fork-mp-queue", "file": "bad_mp_queue.py",
                     "reason": "CLI test"}],
    }))
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_mp_queue.py"),
                    "--baseline", str(baseline))
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_write_baseline_snapshot(tmp_path):
    out = tmp_path / "generated.json"
    proc = run_lint(os.path.join(FIXTURES, "lint", "bad_mp_queue.py"),
                    "--write-baseline", str(out))
    assert proc.returncode == 1  # findings still reported this run
    doc = json.loads(out.read_text())
    assert doc["version"] == 1
    assert any(e["rule"] == "fork-mp-queue" for e in doc["entries"])


def test_no_targets_prints_usage_and_exits_2():
    proc = run_lint()
    assert proc.returncode == 2


def test_capacity_flag_drives_bandwidth_rule():
    path = os.path.join(FIXTURES, "hml", "bad_bandwidth.hml")
    assert run_lint(path, "--capacity-mbps", "0.5").returncode == 1
    assert run_lint(path, "--capacity-mbps", "10").returncode == 0
