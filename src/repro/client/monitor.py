"""Buffer-occupancy monitoring with watermarks (after [LIT 92]).

"When the buffer monitoring mechanism experiences buffer underflow,
the presentation scheduler may lead to frame duplication in order to
avoid noticeable gaps in presentation. Correspondingly, when buffer's
occupancy exceeds some upper threshold, the scheduler should drop
frames to decrease the buffer's data." (§4)

The monitor classifies the buffer into LOW / NORMAL / HIGH zones
relative to its time window and recommends the corresponding action;
the playout process applies it and logs the outcome.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.client.buffers import MediaBuffer

__all__ = ["BufferState", "BufferAction", "BufferMonitor"]


class BufferState(enum.Enum):
    LOW = "low"
    NORMAL = "normal"
    HIGH = "high"


class BufferAction(enum.Enum):
    NONE = "none"
    DUPLICATE = "duplicate"  # hold position: replay last frame
    DROP = "drop"  # shed buffered frames


@dataclass(slots=True)
class MonitorStats:
    low_entries: int = 0
    high_entries: int = 0
    duplicate_recommendations: int = 0
    drop_recommendations: int = 0
    state_trace: list[tuple[float, BufferState]] = field(default_factory=list)


class BufferMonitor:
    """Watermark-based occupancy classifier for one media buffer."""

    def __init__(
        self,
        buffer: MediaBuffer,
        low_watermark: float = 0.25,
        high_watermark: float = 1.5,
        max_consecutive_duplicates: int = 3,
    ) -> None:
        if not (0.0 <= low_watermark < high_watermark):
            raise ValueError("need 0 <= low < high watermark")
        if max_consecutive_duplicates < 1:
            raise ValueError("max_consecutive_duplicates must be >= 1")
        self.buffer = buffer
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.max_consecutive_duplicates = max_consecutive_duplicates
        self.stats = MonitorStats()
        self._state = BufferState.NORMAL
        self._consecutive_duplicates = 0
        self._tracer = None
        self._session = ""
        self._tracing = False

    def set_tracer(self, tracer, session: str = "") -> None:
        """Emit ``buffer.watermark`` events on zone crossings."""
        self._tracer = tracer
        self._session = session
        self._tracing = tracer is not None and bool(
            getattr(tracer, "enabled", False)
        )

    @property
    def state(self) -> BufferState:
        return self._state

    def classify(self) -> BufferState:
        ratio = self.buffer.occupancy_ratio
        if ratio < self.low_watermark:
            return BufferState.LOW
        if ratio > self.high_watermark:
            return BufferState.HIGH
        return BufferState.NORMAL

    def check(self, now: float) -> BufferAction:
        """Reclassify and recommend an action for this playout tick."""
        new_state = self.classify()
        if new_state is not self._state:
            if new_state is BufferState.LOW:
                self.stats.low_entries += 1
            elif new_state is BufferState.HIGH:
                self.stats.high_entries += 1
            self.stats.state_trace.append((now, new_state))
            if self._tracing:
                self._tracer.emit(
                    now, "buffer.watermark", self.buffer.stream_id,
                    session=self._session, state=new_state.value,
                    ratio=round(self.buffer.occupancy_ratio, 4),
                )
            self._state = new_state
        if self._state is BufferState.LOW and not self.buffer.is_empty:
            # Stretch what we have: recommend repeating frames so the
            # buffer refills before it runs completely dry — but cap
            # consecutive repeats so a stream whose source has simply
            # ended still drains (no duplication livelock).
            if self._consecutive_duplicates < self.max_consecutive_duplicates:
                self._consecutive_duplicates += 1
                self.stats.duplicate_recommendations += 1
                return BufferAction.DUPLICATE
            return BufferAction.NONE
        self._consecutive_duplicates = 0
        if self._state is BufferState.HIGH:
            self.stats.drop_recommendations += 1
            return BufferAction.DROP
        return BufferAction.NONE
