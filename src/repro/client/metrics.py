"""Quality-of-Presentation metrics.

Every playout process logs its events here; the experiment harness
derives the quantities the paper's mechanisms are meant to improve:
playout gaps (intramedia synchronization failures), rebuffering
episodes, startup latency, intermedia skew statistics and the
delivered-quality profile.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["PlayoutEventKind", "PlayoutEvent", "PlayoutEventLog", "SkewSeries"]

#: Lip-sync tolerance from the synchronization literature the paper
#: builds on (Steinmetz): ±80 ms is where audio/video skew becomes
#: perceptible.
DEFAULT_SYNC_THRESHOLD_S = 0.080


class PlayoutEventKind(enum.Enum):
    START = "start"  # stream playout began
    FRAME = "frame"  # a frame was presented
    GAP = "gap"  # deadline passed with no frame available
    DUPLICATE = "duplicate"  # a frame was repeated (skew/underflow action)
    DROP = "drop"  # a frame was discarded (skew/overflow action)
    STOP = "stop"  # stream playout finished
    SHOW = "show"  # discrete media displayed
    HIDE = "hide"  # discrete media removed
    PAUSE = "pause"
    RESUME = "resume"


@dataclass(frozen=True, slots=True)
class PlayoutEvent:
    time: float  # simulation time
    stream_id: str
    kind: PlayoutEventKind
    media_time_s: float = 0.0
    grade: int = 0


class PlayoutEventLog:
    """Chronological event log with derived QoP statistics."""

    def __init__(self) -> None:
        self.events: list[PlayoutEvent] = []
        self._tracer = None
        self._session = ""
        self._tracing = False
        self._tracing_detail = False

    def set_tracer(self, tracer, session: str = "") -> None:
        """Forward playout events to a structured tracer.

        FRAME events are the hot path (one per presented frame): they
        are traced only when the caller supplies the frame id, so the
        lifecycle correlator can close each frame's span while legacy
        callers stay cheap. Gaps, drops, duplicates and lifecycle
        events always carry the diagnostic signal.
        """
        self._tracer = tracer
        self._session = session
        self._tracing = tracer is not None and bool(
            getattr(tracer, "enabled", False)
        )
        self._tracing_detail = self._tracing and bool(
            getattr(tracer, "detail", True)
        )

    def record(
        self,
        time: float,
        stream_id: str,
        kind: PlayoutEventKind,
        media_time_s: float = 0.0,
        grade: int = 0,
        frame_seq: int | None = None,
        reason: str = "",
    ) -> None:
        self.events.append(
            PlayoutEvent(time=time, stream_id=stream_id, kind=kind,
                         media_time_s=media_time_s, grade=grade)
        )
        if self._tracing:
            # Per-frame events are detail-tier: skipped for
            # control-plane tracers (flight recorder) and for legacy
            # callers that don't supply the frame id.
            if kind is PlayoutEventKind.FRAME and (
                    not self._tracing_detail or frame_seq is None):
                return
            extra: dict[str, object] = {}
            if frame_seq is not None:
                extra["frame"] = frame_seq
            if reason:
                extra["reason"] = reason
            self._tracer.emit(time, f"playout.{kind.value}", stream_id,
                              session=self._session,
                              media_time_s=media_time_s, grade=grade,
                              **extra)

    # -- selections -----------------------------------------------------
    def for_stream(self, stream_id: str) -> list[PlayoutEvent]:
        return [e for e in self.events if e.stream_id == stream_id]

    def count(self, kind: PlayoutEventKind, stream_id: str | None = None) -> int:
        return sum(
            1
            for e in self.events
            if e.kind is kind and (stream_id is None or e.stream_id == stream_id)
        )

    # -- derived QoP ------------------------------------------------------
    def start_time(self, stream_id: str) -> float | None:
        """First presentation instant: START for continuous streams,
        SHOW for discrete elements."""
        for e in self.events:
            if e.stream_id == stream_id and e.kind in (
                PlayoutEventKind.START, PlayoutEventKind.SHOW
            ):
                return e.time
        return None

    def gap_count(self, stream_id: str | None = None) -> int:
        return self.count(PlayoutEventKind.GAP, stream_id)

    def gap_time_s(self, frame_interval_s: float,
                   stream_id: str | None = None) -> float:
        """Total presentation time covered by gaps."""
        return self.gap_count(stream_id) * frame_interval_s

    def gap_ratio(self, stream_id: str) -> float:
        frames = self.count(PlayoutEventKind.FRAME, stream_id)
        dups = self.count(PlayoutEventKind.DUPLICATE, stream_id)
        gaps = self.gap_count(stream_id)
        total = frames + dups + gaps
        return 0.0 if total == 0 else gaps / total

    def mean_grade(self, stream_id: str) -> float:
        grades = [
            e.grade
            for e in self.events
            if e.stream_id == stream_id and e.kind is PlayoutEventKind.FRAME
        ]
        return float(np.mean(grades)) if grades else 0.0

    def grade_trajectory(self, stream_id: str) -> list[tuple[float, int]]:
        """(time, grade) at each grade change observed during playout."""
        out: list[tuple[float, int]] = []
        last: int | None = None
        for e in self.events:
            if e.stream_id == stream_id and e.kind is PlayoutEventKind.FRAME:
                if last is None or e.grade != last:
                    out.append((e.time, e.grade))
                    last = e.grade
        return out

    def summary(self, stream_id: str) -> dict[str, float]:
        return {
            "frames": self.count(PlayoutEventKind.FRAME, stream_id),
            "gaps": self.gap_count(stream_id),
            "duplicates": self.count(PlayoutEventKind.DUPLICATE, stream_id),
            "drops": self.count(PlayoutEventKind.DROP, stream_id),
            "gap_ratio": self.gap_ratio(stream_id),
            "mean_grade": self.mean_grade(stream_id),
        }


class SkewSeries:
    """Time series of intermedia skew samples for one sync group.

    Skew convention: (slave presented media time) − (master presented
    media time), in seconds, sampled at slave playout instants.
    """

    def __init__(self, group: str,
                 threshold_s: float = DEFAULT_SYNC_THRESHOLD_S) -> None:
        if threshold_s <= 0:
            raise ValueError("threshold must be positive")
        self.group = group
        self.threshold_s = threshold_s
        self.times: list[float] = []
        self.skews: list[float] = []

    def sample(self, time: float, skew_s: float) -> None:
        self.times.append(time)
        self.skews.append(skew_s)

    def __len__(self) -> int:
        return len(self.skews)

    @property
    def max_abs_s(self) -> float:
        return float(np.max(np.abs(self.skews))) if self.skews else 0.0

    @property
    def mean_abs_s(self) -> float:
        return float(np.mean(np.abs(self.skews))) if self.skews else 0.0

    @property
    def fraction_out_of_sync(self) -> float:
        if not self.skews:
            return 0.0
        out = np.abs(np.asarray(self.skews)) > self.threshold_s
        return float(np.mean(out))

    def percentile_abs_s(self, q: float) -> float:
        if not self.skews:
            return 0.0
        return float(np.percentile(np.abs(self.skews), q))
