"""Integration tests: media server streaming to an RTP receiver."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.media import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    MediaStore,
    MediaType,
    default_registry,
)
from repro.net import Network, ReliableReceiver
from repro.rtp import RtpReceiver
from repro.server import MediaServer


def build():
    sim = Simulator()
    net = Network(sim)
    net.add_node("cli")
    net.add_node("vidsrv")
    net.add_duplex_link("cli", "vidsrv", 10e6, 0.005)
    store = MediaStore(default_registry(), RngRegistry(seed=7))
    store.add(ContinuousMediaObject("/v1.mpg", MediaType.VIDEO, "MPEG",
                                    duration_s=4.0))
    store.add(DiscreteMediaObject("/i1.gif", MediaType.IMAGE, "GIF",
                                  size_bytes=30_000))
    ms = MediaServer(sim, net, "vidsrv", "vidsrv", store)
    return sim, net, ms


def test_stream_delivers_frames_under_element_id():
    sim, net, ms = build()
    got = []
    RtpReceiver(net, "cli", 5004, 90_000, "V1",
                on_frame=lambda f, t: got.append(f))
    handler, conv = ms.start_stream(
        "sess-1", "/v1.mpg", stream_id="V1",
        client_node="cli", client_port=5004, duration_s=2.0,
    )
    sim.run(until=handler.finished)
    sim.run(until=sim.now + 0.1)
    assert handler.frames_sent == 50  # 2 s at 25 fps
    assert len(got) == 50
    assert all(f.stream_id == "V1" for f in got)


def test_stream_send_offset():
    sim, net, ms = build()
    arrivals = []
    RtpReceiver(net, "cli", 5004, 90_000, "V1",
                on_frame=lambda f, t: arrivals.append(t))
    handler, _ = ms.start_stream(
        "sess-1", "/v1.mpg", stream_id="V1",
        client_node="cli", client_port=5004, duration_s=1.0,
        send_offset_s=3.0,
    )
    sim.run(until=handler.finished)
    sim.run(until=sim.now + 0.1)
    assert min(arrivals) >= 3.0


def test_pause_resume_stops_transmission():
    sim, net, ms = build()
    arrivals = []
    RtpReceiver(net, "cli", 5004, 90_000, "V1",
                on_frame=lambda f, t: arrivals.append(t))
    handler, _ = ms.start_stream(
        "sess-1", "/v1.mpg", stream_id="V1",
        client_node="cli", client_port=5004, duration_s=2.0,
    )

    def controller():
        yield sim.timeout(0.5)
        ms.pause_session("sess-1")
        yield sim.timeout(4.0)
        ms.resume_session("sess-1")

    sim.process(controller())
    sim.run(until=handler.finished)
    sim.run(until=sim.now + 0.1)
    # No frames arrived during the pause window.
    in_pause = [t for t in arrivals if 0.6 < t < 4.4]
    assert not in_pause
    assert len(arrivals) == 50


def test_regrade_mid_stream_shrinks_frames():
    sim, net, ms = build()
    got = []
    RtpReceiver(net, "cli", 5004, 90_000, "V1",
                on_frame=lambda f, t: got.append(f))
    handler, conv = ms.start_stream(
        "sess-1", "/v1.mpg", stream_id="V1",
        client_node="cli", client_port=5004, duration_s=4.0,
    )

    def degrader():
        yield sim.timeout(2.0)
        conv.degrade(sim.now, reason="test")
        conv.degrade(sim.now, reason="test")
        conv.degrade(sim.now, reason="test")

    sim.process(degrader())
    sim.run(until=handler.finished)
    sim.run(until=sim.now + 0.2)
    early = [f.size_bytes for f in got if f.grade == 0]
    late = [f.size_bytes for f in got if f.grade == 3]
    assert early and late
    assert sum(late) / len(late) < sum(early) / len(early)


def test_suspension_halts_frames_but_media_time_advances():
    sim, net, ms = build()
    got = []
    RtpReceiver(net, "cli", 5004, 90_000, "V1",
                on_frame=lambda f, t: got.append(f))
    handler, conv = ms.start_stream(
        "sess-1", "/v1.mpg", stream_id="V1",
        client_node="cli", client_port=5004, duration_s=2.0,
        floor_grade=0,
    )

    def suspender():
        yield sim.timeout(1.0)
        conv.degrade(sim.now)  # at floor 0 -> suspend directly

    sim.process(suspender())
    sim.run(until=handler.finished)
    assert conv.suspended
    assert handler.suspended_intervals > 0
    assert handler.frames_sent == pytest.approx(25, abs=2)


def test_discrete_delivery_over_reliable_channel():
    sim, net, ms = build()
    got = []
    ReliableReceiver(net, "cli", 7000,
                     on_message=lambda data, size, flow: got.append((data, size)))
    done = ms.send_discrete("I1", "/i1.gif", "cli", 7000, flow_id="img:I1")
    sim.run(until=done)
    assert got == [({"element_id": "I1"}, 30_000)]
    assert "TCP" in net.tap.bytes_by_protocol
    assert "RTP" not in net.tap.bytes_by_protocol


def test_duplicate_stream_id_rejected_and_stop():
    sim, net, ms = build()
    RtpReceiver(net, "cli", 5004, 90_000, "V1")
    h, _ = ms.start_stream("s", "/v1.mpg", stream_id="V1",
                           client_node="cli", client_port=5004, duration_s=4.0)
    with pytest.raises(ValueError):
        ms.start_stream("s", "/v1.mpg", stream_id="V1",
                        client_node="cli", client_port=5004, duration_s=4.0)
    # A different session may stream the same object concurrently.
    RtpReceiver(net, "cli", 5005, 90_000, "V1b")
    ms.start_stream("s2", "/v1.mpg", stream_id="V1",
                    client_node="cli", client_port=5005, duration_s=4.0)
    assert set(ms.streams) == {("s", "V1"), ("s2", "V1")}
    ms.stop_stream("s", "V1")
    assert ("s", "V1") not in ms.streams
    ms.stop_stream("s", "V1")  # idempotent
    ms.stop_session("s2")
    assert not ms.streams
