"""The Media Stream Quality Converter (§4).

"Flow scheduler identifies the specific media streams that are not
transmitted as desired, and in cooperation with the corresponding
Media Stream Quality Converter gracefully degrades (upgrades) the
stream's quality, e.g. by increasing (decreasing) video compression
factor or decreasing (increasing) audio sampling frequency."

The converter owns one live :class:`FrameSource` and applies grade
transitions to it, recording the trajectory for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.media.encodings import SUSPENDED, Codec
from repro.media.traces import FrameSource

__all__ = ["MediaStreamQualityConverter"]


@dataclass(slots=True)
class ConversionRecord:
    time: float
    old_grade: int
    new_grade: int
    reason: str


class MediaStreamQualityConverter:
    """Applies grading decisions to one stream's frame source."""

    def __init__(self, source: FrameSource, floor_grade: int,
                 allow_suspend: bool = True) -> None:
        if floor_grade < 0:
            raise ValueError("floor_grade must be >= 0")
        self.source = source
        self.codec: Codec = source.codec
        # The floor cannot be deeper than the ladder's worst real rung.
        self.floor_grade = min(floor_grade, self.codec.num_grades - 1)
        self.allow_suspend = allow_suspend
        self.history: list[ConversionRecord] = []

    @property
    def grade_index(self) -> int:
        return self.source.grade_index

    @property
    def suspended(self) -> bool:
        return self.source.grade is SUSPENDED

    @property
    def at_floor(self) -> bool:
        return self.grade_index >= self.floor_grade

    @property
    def can_degrade(self) -> bool:
        if self.suspended:
            return False
        if not self.at_floor:
            return True
        return self.allow_suspend

    @property
    def can_upgrade(self) -> bool:
        return self.grade_index > 0

    def degrade(self, now: float, reason: str = "") -> bool:
        """One rung worse; past the user floor this suspends the
        stream (if allowed). Returns True if a change was applied."""
        if not self.can_degrade:
            return False
        old = self.grade_index
        if self.at_floor:
            new = self.codec.num_grades  # suspend sentinel index
        else:
            new = self.codec.degrade(old)
        self.source.set_grade(new)
        self.history.append(ConversionRecord(now, old, new, reason))
        return True

    def upgrade(self, now: float, reason: str = "") -> bool:
        """One rung better; from suspension, re-enter at the worst
        real rung. Returns True if a change was applied."""
        if not self.can_upgrade:
            return False
        old = self.grade_index
        new = self.codec.upgrade(old)
        self.source.set_grade(new)
        self.history.append(ConversionRecord(now, old, new, reason))
        return True

    def grade_trajectory(self) -> list[tuple[float, int]]:
        return [(r.time, r.new_grade) for r in self.history]
