"""End-to-end integration tests of the full service engine."""

from repro.core import EngineConfig, ServiceEngine, TrafficConfig
from repro.hml.examples import figure2_markup
from repro.hml import DocumentBuilder, serialize


def small_av_markup(duration=4.0):
    doc = (
        DocumentBuilder("AV lesson")
        .text("a synchronized audio and video pair")
        .audio_video("audsrv:/a.au", "vidsrv:/v.mpg", "A", "V",
                     startime=0.0, duration=duration)
        .build()
    )
    return serialize(doc)


def engine_with_doc(markup, config=None, name="doc1"):
    eng = ServiceEngine(config)
    eng.add_server("srv1", documents={name: (markup, "demo")})
    return eng


def test_full_session_figure2():
    eng = engine_with_doc(figure2_markup())
    result = eng.orchestrator.run_full_session("srv1", "doc1")
    assert result.completed
    # All three continuous streams played essentially fully.
    assert result.streams["A1"].frames_played > 350  # 8 s at 50 fps
    assert result.streams["A2"].frames_played > 200  # 5 s at 50 fps
    assert result.streams["V"].frames_played > 150  # 8 s at 25 fps
    # Discrete media were shown.
    assert result.log.count_for("I1") if hasattr(result.log, "count_for") \
        else True
    assert result.total_gap_ratio() < 0.05
    assert result.worst_skew_s() < 0.08
    assert result.startup_latency_s is not None
    assert result.charge > 0.0


def test_protocols_match_figure5():
    eng = engine_with_doc(figure2_markup())
    result = eng.orchestrator.run_full_session("srv1", "doc1")
    # Scenario/images over TCP; audio/video over RTP; feedback RTCP.
    assert result.protocol_bytes.get("TCP", 0) > 0
    assert result.protocol_bytes.get("RTP", 0) > 0
    assert result.protocol_bytes.get("RTCP", 0) > 0
    # Media dominates the byte count.
    assert result.protocol_bytes["RTP"] > result.protocol_bytes["RTCP"]


def test_clean_network_no_grading():
    eng = engine_with_doc(small_av_markup())
    result = eng.orchestrator.run_full_session("srv1", "doc1")
    assert result.completed
    assert not result.grading_decisions
    assert result.mean_video_grade() == 0.0
    assert result.loss_ratio() < 0.01


def test_congestion_triggers_video_degradation():
    # Full-quality video (1.5 Mb/s) + audio + 1 Mb/s cross traffic
    # oversubscribe the 2.2 Mb/s access link; one or two grading rungs
    # (1.0 / 0.75 Mb/s video) make the load feasible again.
    cfg = EngineConfig(
        access_rate_bps=2.2e6,
        traffic=[TrafficConfig(kind="poisson", rate_bps=1.0e6)],
    )
    eng = engine_with_doc(small_av_markup(duration=20.0), cfg)
    result = eng.orchestrator.run_full_session("srv1", "doc1")
    assert result.completed
    degrades = [d for d in result.grading_decisions if d.action == "degrade"]
    assert degrades, "congestion should trigger the grading loop"
    # Video degrades before audio (the paper's ordering).
    assert degrades[0].target_stream == "V"
    assert result.streams["V"].frames_played > 100
    assert result.mean_video_grade() > 0.0


def test_deterministic_replay():
    def run():
        eng = engine_with_doc(small_av_markup(), EngineConfig(seed=42))
        r = eng.orchestrator.run_full_session("srv1", "doc1")
        return (r.streams["V"].frames_played, r.streams["V"].packets_received,
                r.total_gaps(), round(r.worst_skew_s(), 9))

    assert run() == run()


def test_two_servers_with_search():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"net-intro": (small_av_markup(), "nets")})
    eng.add_server("srv2", documents={"poetry": (figure2_markup(), "arts")})
    assert eng.servers["srv1"].peers == {"srv2": eng.servers["srv2"]}
    results = eng.servers["srv1"].search("scenario")
    assert "srv2" in results  # forwarded query found the Figure 2 doc


def test_unknown_document_fails_cleanly():
    eng = engine_with_doc(small_av_markup())
    result = eng.orchestrator.run_full_session("srv1", "nope")
    assert not result.completed
    assert result.events


def test_time_window_override_controls_startup():
    short = engine_with_doc(small_av_markup(),
                            EngineConfig(time_window_s=0.3))
    long = engine_with_doc(small_av_markup(),
                           EngineConfig(time_window_s=2.0))
    r_short = short.orchestrator.run_full_session("srv1", "doc1")
    r_long = long.orchestrator.run_full_session("srv1", "doc1")
    assert r_short.startup_latency_s < r_long.startup_latency_s
