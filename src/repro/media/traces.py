"""Synthetic frame-accurate media traces.

Substitution for the paper's real MPEG/AVI and PCM-family content
(see DESIGN.md): the mechanisms under study consume only frame sizes,
rates and timestamps, which these generators produce with controlled,
reproducible statistics.

* **Video** — GoP-structured (IBBPBBPBBPBB) frame sizes with I:P:B
  size ratios and an AR(1) log-normal rate modulation, the standard
  first-order model for VBR video; mean bitrate matches the active
  :class:`~repro.media.encodings.QualityGrade`.
* **Audio** — constant-size frames (one per 20 ms block), exact CBR.

Two consumption styles:

* bulk :func:`VideoTraceGenerator.generate` /
  :func:`AudioTraceGenerator.generate` build a whole
  :class:`MediaTrace` vectorized with numpy (used by tests and
  benchmarks);
* the stateful :class:`FrameSource` yields frames one at a time and
  supports **mid-stream regrading** — the hook the Media Stream
  Quality Converter uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.media.encodings import SUSPENDED, Codec, QualityGrade
from repro.media.types import ContinuousMediaObject, Frame, FrameKind, MediaType

__all__ = [
    "MediaTrace",
    "VideoTraceGenerator",
    "AudioTraceGenerator",
    "FrameSource",
    "trace_for_object",
    "GOP_PATTERN",
    "FRAME_SIZE_WEIGHTS",
]

#: Classic MPEG-1 group-of-pictures pattern (12 frames).
GOP_PATTERN: tuple[FrameKind, ...] = (
    FrameKind.I,
    FrameKind.B,
    FrameKind.B,
    FrameKind.P,
    FrameKind.B,
    FrameKind.B,
    FrameKind.P,
    FrameKind.B,
    FrameKind.B,
    FrameKind.P,
    FrameKind.B,
    FrameKind.B,
)

#: Relative size of each frame kind (I frames are largest).
FRAME_SIZE_WEIGHTS: dict[FrameKind, float] = {
    FrameKind.I: 2.5,
    FrameKind.P: 1.0,
    FrameKind.B: 0.5,
    FrameKind.SAMPLE: 1.0,
    FrameKind.BLOCK: 1.0,
}

_GOP_MEAN_WEIGHT = sum(FRAME_SIZE_WEIGHTS[k] for k in GOP_PATTERN) / len(GOP_PATTERN)


@dataclass(slots=True)
class MediaTrace:
    """A fully materialised frame sequence for one stream."""

    stream_id: str
    codec_name: str
    clock_rate: int
    frames: list[Frame]

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(f.size_bytes for f in self.frames)

    @property
    def duration_s(self) -> float:
        if not self.frames:
            return 0.0
        return self.frames[-1].end_time / self.clock_rate

    @property
    def mean_bitrate_bps(self) -> float:
        dur = self.duration_s
        if dur == 0:
            return 0.0
        return self.total_bytes * 8.0 / dur

    def sizes(self) -> np.ndarray:
        return np.array([f.size_bytes for f in self.frames], dtype=np.int64)

    def media_times_s(self) -> np.ndarray:
        times = np.array([f.media_time for f in self.frames], dtype=np.float64)
        return times / self.clock_rate


def _ar1_lognormal_multipliers(
    n: int, rng: np.random.Generator, rho: float, sigma: float
) -> np.ndarray:
    """Mean-one log-normal AR(1) modulation series of length ``n``.

    The log-process x follows x_{t} = rho x_{t-1} + eps_t with
    stationary variance v = sigma^2/(1-rho^2); exp(x - v/2) then has
    unit mean, keeping the trace's long-run bitrate on target.
    """
    if n == 0:
        return np.empty(0)
    v = sigma * sigma / (1.0 - rho * rho)
    eps = rng.normal(0.0, sigma, size=n)
    x = np.empty(n)
    x[0] = rng.normal(0.0, np.sqrt(v))
    # scipy.signal.lfilter would also do; the explicit loop is clearer
    # and this is not a hot path (one call per stream per run).
    for i in range(1, n):
        x[i] = rho * x[i - 1] + eps[i]
    return np.exp(x - v / 2.0)


class VideoTraceGenerator:
    """GoP-structured VBR video trace generator."""

    def __init__(
        self,
        codec: Codec,
        rng: np.random.Generator,
        rho: float = 0.9,
        sigma: float = 0.12,
    ) -> None:
        if codec.media_type is not MediaType.VIDEO:
            raise ValueError(f"codec {codec.name} is not video")
        if not (0.0 <= rho < 1.0):
            raise ValueError("rho must be in [0, 1)")
        self.codec = codec
        self.rng = rng
        self.rho = rho
        self.sigma = sigma

    def generate(
        self,
        stream_id: str,
        duration_s: float,
        grade_index: int = 0,
        start_seq: int = 0,
        start_media_time: int = 0,
    ) -> MediaTrace:
        grade = self.codec.grade(grade_index)
        if grade is SUSPENDED:
            return MediaTrace(stream_id, self.codec.name, self.codec.clock_rate, [])
        n = int(round(duration_s * grade.frame_rate))
        ticks = int(round(self.codec.clock_rate / grade.frame_rate))
        kinds = [GOP_PATTERN[i % len(GOP_PATTERN)] for i in range(n)]
        weights = np.array([FRAME_SIZE_WEIGHTS[k] for k in kinds])
        scale = grade.mean_frame_bytes / _GOP_MEAN_WEIGHT
        mult = _ar1_lognormal_multipliers(n, self.rng, self.rho, self.sigma)
        sizes = np.maximum(1, np.rint(weights * scale * mult)).astype(np.int64)
        frames = [
            Frame(
                stream_id=stream_id,
                seq=start_seq + i,
                media_time=start_media_time + i * ticks,
                duration=ticks,
                size_bytes=int(sizes[i]),
                kind=kinds[i],
                grade=grade_index,
            )
            for i in range(n)
        ]
        return MediaTrace(stream_id, self.codec.name, self.codec.clock_rate, frames)


class AudioTraceGenerator:
    """Constant-bitrate audio trace generator (20 ms frames)."""

    def __init__(self, codec: Codec) -> None:
        if codec.media_type is not MediaType.AUDIO:
            raise ValueError(f"codec {codec.name} is not audio")
        self.codec = codec

    def generate(
        self,
        stream_id: str,
        duration_s: float,
        grade_index: int = 0,
        start_seq: int = 0,
        start_media_time: int = 0,
    ) -> MediaTrace:
        grade = self.codec.grade(grade_index)
        if grade is SUSPENDED:
            return MediaTrace(stream_id, self.codec.name, self.codec.clock_rate, [])
        n = int(round(duration_s * grade.frame_rate))
        ticks = int(round(self.codec.clock_rate / grade.frame_rate))
        size = max(1, int(round(grade.mean_frame_bytes)))
        frames = [
            Frame(
                stream_id=stream_id,
                seq=start_seq + i,
                media_time=start_media_time + i * ticks,
                duration=ticks,
                size_bytes=size,
                kind=FrameKind.SAMPLE,
                grade=grade_index,
            )
            for i in range(n)
        ]
        return MediaTrace(stream_id, self.codec.name, self.codec.clock_rate, frames)


class FrameSource:
    """Stateful frame producer with mid-stream regrade support.

    The media server pulls :meth:`next_frame` once per frame interval;
    the Media Stream Quality Converter calls :meth:`set_grade` when
    the Server QoS Manager decides to degrade or upgrade. While the
    grade is the SUSPENDED sentinel, :meth:`next_frame` returns
    ``None`` but media time keeps advancing, so a later upgrade
    resumes at the correct point in the scenario timeline.
    """

    def __init__(
        self,
        stream_id: str,
        codec: Codec,
        rng: np.random.Generator,
        grade_index: int = 0,
        rho: float = 0.9,
        sigma: float = 0.12,
    ) -> None:
        self.stream_id = stream_id
        self.codec = codec
        self.rng = rng
        self.rho = rho
        self.sigma = sigma
        self._grade_index = grade_index
        self._seq = 0
        self._media_time = 0
        self._frame_in_gop = 0
        self._log_state: float | None = None

    @property
    def grade_index(self) -> int:
        return self._grade_index

    @property
    def grade(self) -> QualityGrade:
        return self.codec.grade(self._grade_index)

    @property
    def media_time_s(self) -> float:
        return self._media_time / self.codec.clock_rate

    def set_grade(self, index: int) -> None:
        if index < 0:
            raise ValueError(f"grade index must be >= 0, got {index}")
        self._grade_index = index

    def fast_forward(self, media_time_s: float, seq: int | None = None) -> None:
        """Jump to a later point in the scenario timeline.

        Used when a replica takes over a crashed server's stream: the
        replacement source must resume at the media position (and frame
        sequence) the dead one had reached, not from zero. Only forward
        jumps are allowed; the GoP phase is realigned so frame kinds
        stay periodic across the switch.
        """
        target = int(round(media_time_s * self.codec.clock_rate))
        if target < self._media_time:
            raise ValueError(
                f"cannot rewind {self.stream_id}: at {self.media_time_s:.3f}s,"
                f" asked for {media_time_s:.3f}s"
            )
        ticks = int(round(self.codec.clock_rate * self.frame_interval_s))
        skipped = 0 if ticks <= 0 else (target - self._media_time) // ticks
        self._media_time += skipped * ticks
        self._frame_in_gop += skipped
        self._seq = self._seq + skipped if seq is None else seq

    @property
    def frame_interval_s(self) -> float:
        grade = self.grade
        if grade is SUSPENDED:
            # While suspended, advance media time in nominal best-grade
            # steps so the stream stays aligned with the scenario.
            return self.codec.best.frame_interval_s
        return grade.frame_interval_s

    def _next_multiplier(self) -> float:
        v = self.sigma**2 / (1.0 - self.rho**2)
        if self._log_state is None:
            self._log_state = float(self.rng.normal(0.0, np.sqrt(v)))
        else:
            self._log_state = self.rho * self._log_state + float(
                self.rng.normal(0.0, self.sigma)
            )
        return float(np.exp(self._log_state - v / 2.0))

    def next_frame(self) -> Frame | None:
        """Produce the next frame (or ``None`` while suspended)."""
        grade = self.grade
        ticks = int(round(self.codec.clock_rate * self.frame_interval_s))
        if grade is SUSPENDED:
            self._media_time += ticks
            return None
        if self.codec.media_type is MediaType.VIDEO:
            kind = GOP_PATTERN[self._frame_in_gop % len(GOP_PATTERN)]
            self._frame_in_gop += 1
            weight = FRAME_SIZE_WEIGHTS[kind]
            scale = grade.mean_frame_bytes / _GOP_MEAN_WEIGHT
            size = max(1, int(round(weight * scale * self._next_multiplier())))
        else:
            kind = FrameKind.SAMPLE
            size = max(1, int(round(grade.mean_frame_bytes)))
        frame = Frame(
            stream_id=self.stream_id,
            seq=self._seq,
            media_time=self._media_time,
            duration=ticks,
            size_bytes=size,
            kind=kind,
            grade=self._grade_index,
        )
        self._seq += 1
        self._media_time += ticks
        return frame


def trace_for_object(
    obj: ContinuousMediaObject,
    codec: Codec,
    rng: np.random.Generator,
    grade_index: int = 0,
) -> MediaTrace:
    """Materialise the full trace of a stored continuous media object."""
    if codec.media_type is not obj.media_type:
        raise ValueError(
            f"codec {codec.name} ({codec.media_type}) does not match "
            f"object {obj.object_id} ({obj.media_type})"
        )
    if obj.media_type is MediaType.VIDEO:
        gen = VideoTraceGenerator(codec, rng)
        return gen.generate(obj.object_id, obj.duration_s, grade_index)
    gen = AudioTraceGenerator(codec)
    return gen.generate(obj.object_id, obj.duration_s, grade_index)
