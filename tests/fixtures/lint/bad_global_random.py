"""Fixture: draws from global RNGs instead of named des.rng streams."""

import random

import numpy as np


def jitter() -> float:
    np.random.seed(7)
    return random.random() + np.random.uniform(0.0, 1.0)
