"""Atomic artifact writes: temp file + ``os.replace``.

Every artifact the repo persists (``BENCH_*.json``, ``PROFILE_*``,
flight-recorder dumps, history files, markdown reports) goes through
these helpers so an interrupted or killed run can never leave a
truncated file behind: the content lands in a temp file in the target
directory, is flushed and fsynced, and only then renamed over the
destination — a single atomic step on POSIX filesystems. On any
failure the temp file is removed and the previous artifact (if one
existed) is untouched.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

__all__ = ["atomic_open", "atomic_write_text", "atomic_write_json"]


@contextmanager
def atomic_open(path: str | Path, encoding: str = "utf-8",
                ) -> Iterator[TextIO]:
    """Open a temp file for writing; rename it over ``path`` on success.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems). If the body raises, the temp file is
    deleted and ``path`` keeps its previous content.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically write ``text`` to ``path``."""
    with atomic_open(path) as fh:
        fh.write(text)


def atomic_write_json(path: str | Path, doc: Any, *, indent: int | None = 2,
                      sort_keys: bool = True, default=str) -> None:
    """Atomically write ``doc`` as JSON (trailing newline included)."""
    with atomic_open(path) as fh:
        json.dump(doc, fh, indent=indent, sort_keys=sort_keys,
                  default=default)
        fh.write("\n")
