# lint: allow-file(det-wall-clock)
"""Opt-in DES kernel profiler: where does the wall time go?

The kernel speed program (ROADMAP item 2) needs attribution before
optimisation. A :class:`KernelProfiler` patches ``step``/``run`` on
one :class:`~repro.des.kernel.Simulator` *instance* — an uninstalled
simulator runs the original methods, so the hooks cost exactly
nothing when off. Installed, every kernel step is timed and charged
to its event kind (Timeout, Event, Process...), and every callback
inside the step to its handler (``process:<name>`` for process
resumptions, the callback's qualname otherwise).

Wall-clock reads are deliberate here — a profiler measures real time
by definition — and never feed back into simulation state, so
determinism is untouched (file-wide ``det-wall-clock`` pragma above).

Outputs: a hot-spot table, a collapsed-stack export (one
``kernel;<kind>;<handler> <microseconds>`` line per stack, the format
flamegraph.pl and speedscope ingest directly) and a
``PROFILE_<name>.json`` artifact via ``python -m repro profile`` or
``bench --profile``.
"""

from __future__ import annotations

import heapq
import time
from typing import Any

__all__ = ["KernelProfiler", "PROFILE_SCHEMA", "PROFILE_SCHEMA_VERSION"]

PROFILE_SCHEMA = "repro.profile"
PROFILE_SCHEMA_VERSION = 1


def _handler_name(cb: Any) -> str:
    """A stable, human-readable label for one event callback."""
    self_obj = getattr(cb, "__self__", None)
    if self_obj is not None:
        name = getattr(self_obj, "name", None)
        if name is not None and getattr(cb, "__name__", "") == "_resume":
            return f"process:{name}"
        return f"{type(self_obj).__name__}.{getattr(cb, '__name__', '?')}"
    qualname = getattr(cb, "__qualname__", None)
    if qualname:
        return qualname
    return repr(cb)


class KernelProfiler:
    """Attributes kernel wall time per event kind and per handler."""

    def __init__(self) -> None:
        self._sim: Any = None
        self._orig_step: Any = None
        self._orig_run: Any = None
        #: event kind -> [count, nanoseconds] (whole-step time)
        self.per_kind: dict[str, list[int]] = {}
        #: (event kind, handler) -> [count, nanoseconds]
        self.per_handler: dict[tuple[str, str], list[int]] = {}
        #: total wall time spent inside ``run()`` (ns)
        self.kernel_ns = 0
        self.steps = 0
        #: end timestamp of the previous step within the current
        #: run() — lets a step absorb the loop overhead that led to
        #: it, so per-kind attribution covers the whole run loop
        self._last_end: int | None = None

    # -- install / uninstall ------------------------------------------------
    @property
    def installed(self) -> bool:
        return self._sim is not None

    def install(self, sim: Any) -> "KernelProfiler":
        """Patch one simulator instance; returns self for chaining."""
        if self._sim is not None:
            raise RuntimeError("profiler is already installed")
        self._sim = sim
        self._orig_step = sim.step
        self._orig_run = sim.run
        sim.step = self._profiled_step
        sim.run = self._profiled_run
        return self

    def uninstall(self) -> None:
        """Restore the simulator's original methods."""
        if self._sim is None:
            return
        # Deleting the instance attributes re-exposes the class
        # methods, leaving the simulator exactly as it was built.
        del self._sim.step
        del self._sim.run
        self._sim = None
        self._orig_step = None
        self._orig_run = None

    # -- patched kernel methods ---------------------------------------------
    def _profiled_step(self) -> None:
        """``Simulator.step`` with per-kind / per-handler timing.

        Mirrors the kernel's step semantics exactly (heap pop, clock
        advance, optional trace emit, eager trigger, callback run) so
        a profiled run is event-for-event identical to a bare one.
        """
        sim = self._sim
        t0 = time.perf_counter_ns()
        # Charge from the previous step's end when inside run(), so
        # the run loop's own bookkeeping lands on some event kind
        # instead of vanishing from the attribution.
        start = self._last_end if self._last_end is not None else t0
        when, _, event = heapq.heappop(sim._heap)
        sim._now = when
        kind = type(event).__name__
        if sim._tracing_detail:
            sim._tracer.emit(when, "kernel.event", kind)
        event._triggered = True
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        if callbacks:
            for cb in callbacks:
                c0 = time.perf_counter_ns()
                cb(event)
                c1 = time.perf_counter_ns()
                rec = self.per_handler.get((kind, _handler_name(cb)))
                if rec is None:
                    rec = self.per_handler[(kind, _handler_name(cb))] = [0, 0]
                rec[0] += 1
                rec[1] += c1 - c0
        t1 = time.perf_counter_ns()
        krec = self.per_kind.get(kind)
        if krec is None:
            krec = self.per_kind[kind] = [0, 0]
        krec[0] += 1
        krec[1] += t1 - start
        if self._last_end is not None:
            self._last_end = t1
        self.steps += 1

    def _profiled_run(self, until: Any = None) -> Any:
        t0 = time.perf_counter_ns()
        self._last_end = t0
        try:
            return self._orig_run(until)
        finally:
            self.kernel_ns += time.perf_counter_ns() - t0
            self._last_end = None

    # -- results ------------------------------------------------------------
    @property
    def attributed_ns(self) -> int:
        """Nanoseconds charged to some event kind (step-time sum)."""
        return sum(ns for _, ns in self.per_kind.values())

    @property
    def coverage(self) -> float:
        """Attributed fraction of measured kernel time (target >=0.95)."""
        if self.kernel_ns <= 0:
            return 1.0 if self.attributed_ns == 0 else 0.0
        return min(1.0, self.attributed_ns / self.kernel_ns)

    def hotspots(self, top: int = 15) -> list[dict[str, Any]]:
        """The costliest (kind, handler) pairs, hottest first."""
        rows = [
            {
                "kind": kind,
                "handler": handler,
                "count": count,
                "total_us": ns / 1e3,
                "mean_us": (ns / count) / 1e3 if count else 0.0,
            }
            for (kind, handler), (count, ns) in self.per_handler.items()
        ]
        rows.sort(key=lambda r: (-r["total_us"], r["kind"], r["handler"]))
        return rows[:top]

    def kind_table(self) -> list[dict[str, Any]]:
        """Per-event-kind attribution, hottest first."""
        total = self.attributed_ns or 1
        rows = [
            {
                "kind": kind,
                "count": count,
                "total_us": ns / 1e3,
                "mean_us": (ns / count) / 1e3 if count else 0.0,
                "share": ns / total,
            }
            for kind, (count, ns) in self.per_kind.items()
        ]
        rows.sort(key=lambda r: (-r["total_us"], r["kind"]))
        return rows

    def collapsed_stacks(self) -> list[str]:
        """Flamegraph-compatible lines: ``kernel;kind;handler <us>``.

        Kernel overhead not spent in any callback (heap pop, clock
        bookkeeping) folds into a ``kernel;<kind>;(kernel)`` frame so
        the flame graph's total matches the per-kind attribution.
        """
        lines = []
        handler_ns_by_kind: dict[str, int] = {}
        for (kind, handler), (_count, ns) in sorted(
                self.per_handler.items()):
            lines.append(f"kernel;{kind};{handler} {max(1, ns // 1000)}")
            handler_ns_by_kind[kind] = handler_ns_by_kind.get(kind, 0) + ns
        for kind in sorted(self.per_kind):
            _, kind_ns = self.per_kind[kind]
            overhead = kind_ns - handler_ns_by_kind.get(kind, 0)
            if overhead > 0:
                lines.append(f"kernel;{kind};(kernel) "
                             f"{max(1, overhead // 1000)}")
        return lines

    def to_artifact(self, name: str, extra: dict[str, Any] | None = None
                    ) -> dict[str, Any]:
        """The ``PROFILE_<name>.json`` document."""
        doc: dict[str, Any] = {
            "schema": PROFILE_SCHEMA,
            "version": PROFILE_SCHEMA_VERSION,
            "name": name,
            "steps": self.steps,
            "kernel_ms": self.kernel_ns / 1e6,
            "attributed_ms": self.attributed_ns / 1e6,
            "coverage": self.coverage,
            "by_kind": self.kind_table(),
            "hotspots": self.hotspots(),
            "collapsed_stacks": self.collapsed_stacks(),
        }
        if extra:
            doc.update(extra)
        return doc
