"""Per-session Quality-of-Experience scoring from trace events.

Turns the frame spans of :mod:`repro.obs.lifecycle` plus the
skew-correction and grading events into one :class:`SessionQoE` per
session: startup delay, stall count/duration, skew violations,
grade-degradation time, frame delivery accounting, end-to-end latency
percentiles (streaming log-bucketed histograms — no sample list is
retained) and a composite 0–100 score.

The score is a diagnostic ranking, not a perceptual model: it starts
at 100 and subtracts bounded penalties for startup delay, stalls,
undelivered frames, skew corrections and time spent at a degraded
grade, so a clean run always ranks strictly above an impaired one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.lifecycle import FrameSpan, correlate_frames
from repro.obs.metrics import Histogram, log_buckets
from repro.obs.tracer import TraceEvent

__all__ = ["SessionQoE", "score_session", "score_sessions",
           "qoe_summary"]

#: latency histogram bounds shared by all QoE scorers
LATENCY_BOUNDS = log_buckets(1e-4, 100.0, per_decade=9)

#: two gap events closer than this belong to the same stall
STALL_MERGE_S = 0.5


@dataclass(slots=True)
class SessionQoE:
    """One session's derived quality-of-experience summary."""

    session: str
    duration_s: float = 0.0
    startup_s: float = 0.0
    stall_count: int = 0
    stall_time_s: float = 0.0
    skew_violations: int = 0
    degraded_time_s: float = 0.0
    frames_sent: int = 0
    frames_played: int = 0
    frames_dropped: int = 0
    frames_lost: int = 0
    #: end-to-end (send -> playout) latency distribution, played frames
    latency: dict[str, float] = field(default_factory=dict)
    score: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        if self.frames_sent == 0:
            return 1.0
        return self.frames_played / self.frames_sent

    def to_dict(self) -> dict[str, object]:
        return {
            "session": self.session,
            "score": self.score,
            "duration_s": self.duration_s,
            "startup_s": self.startup_s,
            "stall_count": self.stall_count,
            "stall_time_s": self.stall_time_s,
            "skew_violations": self.skew_violations,
            "degraded_time_s": self.degraded_time_s,
            "frames_sent": self.frames_sent,
            "frames_played": self.frames_played,
            "frames_dropped": self.frames_dropped,
            "frames_lost": self.frames_lost,
            "delivery_ratio": self.delivery_ratio,
            "latency": dict(self.latency),
        }


def _stalls(gap_times: list[float]) -> tuple[int, float]:
    """Merge per-tick gap events into stalls: (count, total seconds).

    Consecutive gaps one frame interval apart are one stall; the
    stall's duration spans its first to its last gap plus one typical
    spacing (a lone gap still stalls for about one frame time).
    """
    if not gap_times:
        return 0, 0.0
    gap_times = sorted(gap_times)
    deltas = [b - a for a, b in zip(gap_times, gap_times[1:]) if b > a]
    spacing = min(deltas) if deltas else STALL_MERGE_S / 2.0
    merge = max(STALL_MERGE_S, 2.0 * spacing)
    count = 1
    total = 0.0
    run_start = gap_times[0]
    prev = gap_times[0]
    for t in gap_times[1:]:
        if t - prev > merge:
            total += (prev - run_start) + spacing
            count += 1
            run_start = t
        prev = t
    total += (prev - run_start) + spacing
    return count, total


def _degraded_time(grade_events: list[TraceEvent], end_s: float) -> float:
    """Seconds spent above (worse than) the session's initial grade."""
    if not grade_events:
        return 0.0
    baseline = grade_events[0].args.get("old", 0)
    degraded_since: float | None = None
    total = 0.0
    for e in sorted(grade_events, key=lambda e: e.time):
        grade = e.args.get("new", baseline)
        if grade > baseline and degraded_since is None:
            degraded_since = e.time
        elif grade <= baseline and degraded_since is not None:
            total += e.time - degraded_since
            degraded_since = None
    if degraded_since is not None:
        total += max(0.0, end_s - degraded_since)
    return total


def _composite_score(q: SessionQoE) -> float:
    """Bounded-penalty composite in [0, 100] (higher is better)."""
    duration = max(q.duration_s, 1e-9)
    undelivered = 1.0 - q.delivery_ratio
    penalty = 0.0
    penalty += min(15.0, 4.0 * q.startup_s)
    penalty += min(15.0, 3.0 * q.stall_count)
    penalty += min(20.0, 100.0 * q.stall_time_s / duration)
    penalty += min(40.0, 100.0 * undelivered)
    penalty += min(5.0, 0.5 * q.skew_violations)
    penalty += min(15.0, 50.0 * q.degraded_time_s / duration)
    return max(0.0, 100.0 - penalty)


def score_session(
    events: list[TraceEvent],
    session: str,
    spans: dict[tuple[str, str, int], FrameSpan] | None = None,
) -> SessionQoE:
    """Score one session from a trace (and optionally pre-built spans)."""
    if spans is None:
        spans = correlate_frames(events, session=session)
    qoe = SessionQoE(session=session)

    begin_s: float | None = None
    end_s: float | None = None
    first_play_s: float | None = None
    gap_times: list[float] = []
    grade_events: list[TraceEvent] = []
    for e in events:
        if e.session != session:
            continue
        if e.kind == "session":
            if e.phase == "B":
                begin_s = e.time if begin_s is None else begin_s
            elif e.phase == "E":
                end_s = e.time
        elif e.kind in ("playout.frame", "playout.start"):
            if first_play_s is None or e.time < first_play_s:
                first_play_s = e.time
        elif e.kind == "playout.gap":
            gap_times.append(e.time)
        elif e.kind == "skew.correct":
            qoe.skew_violations += 1
        elif e.kind == "qos.grade":
            grade_events.append(e)

    if begin_s is None:
        begin_s = min((e.time for e in events if e.session == session),
                      default=0.0)
    if end_s is None:
        end_s = max((e.time for e in events if e.session == session),
                    default=begin_s)
    qoe.duration_s = max(0.0, end_s - begin_s)
    if first_play_s is not None:
        qoe.startup_s = max(0.0, first_play_s - begin_s)
    qoe.stall_count, qoe.stall_time_s = _stalls(gap_times)
    qoe.degraded_time_s = _degraded_time(grade_events, end_s)

    latency = Histogram(bounds=LATENCY_BOUNDS)
    for span in spans.values():
        if span.session != session:
            continue
        qoe.frames_sent += 1
        terminal = span.terminal
        if terminal == "played":
            qoe.frames_played += 1
            total = span.total_s
            if total is not None and total >= 0:
                latency.observe(total)
        elif terminal == "dropped":
            qoe.frames_dropped += 1
        elif terminal == "lost":
            qoe.frames_lost += 1
    qoe.latency = latency.summary()
    qoe.score = _composite_score(qoe)
    return qoe


def score_sessions(
    events: list[TraceEvent],
) -> dict[str, SessionQoE]:
    """Score every session that opened a ``session`` span in the trace."""
    sessions = [e.name for e in events
                if e.kind == "session" and e.phase == "B"]
    spans = correlate_frames(events)
    out: dict[str, SessionQoE] = {}
    for sess in sessions:
        sess_spans = {k: s for k, s in spans.items() if s.session == sess}
        out[sess] = score_session(events, sess, spans=sess_spans)
    return out


def qoe_summary(qoes: list[SessionQoE] | dict[str, SessionQoE]) -> dict:
    """Population rollup: score/startup/latency percentiles.

    Streaming histograms keep this O(buckets) regardless of
    population size; the result is JSON-serializable and rides on
    :class:`~repro.core.orchestrator.PopulationResult`.
    """
    values = list(qoes.values()) if isinstance(qoes, dict) else list(qoes)
    score = Histogram(bounds=tuple(range(1, 101)) + (float("inf"),))
    startup = Histogram(bounds=log_buckets(1e-3, 100.0))
    latency = Histogram(bounds=LATENCY_BOUNDS)
    totals = {"stall_count": 0, "skew_violations": 0, "frames_sent": 0,
              "frames_played": 0, "frames_dropped": 0, "frames_lost": 0}
    for q in values:
        score.observe(q.score)
        startup.observe(q.startup_s)
        if q.latency.get("count"):
            # fold the per-session p50 into the population view
            latency.observe(q.latency.get("p50", 0.0))
        for key in totals:
            totals[key] += getattr(q, key)
    return {
        "sessions": len(values),
        "score": score.summary(),
        "startup_s": startup.summary(),
        "frame_latency_p50_s": latency.summary(),
        **totals,
    }
