"""Interconnection abstraction: the web of linked documents.

Sequential links form the author's intended reading order; exploration
links branch sideways. The web is a directed multigraph over document
names (optionally qualified by host for cross-server links), used by
the service layer for navigation and by Hermes for lesson sequencing.
"""

from __future__ import annotations

import networkx as nx

from repro.hml.ast import HmlDocument, LinkKind

__all__ = ["DocumentWeb"]


class DocumentWeb:
    """Directed graph of documents connected by hyperlinks."""

    def __init__(self) -> None:
        self.graph = nx.MultiDiGraph()

    # -- construction -----------------------------------------------------
    def add_document(self, name: str, doc: HmlDocument,
                     host: str = "") -> None:
        """Register a document and its outgoing links.

        ``name`` is the document's own name; link targets of the form
        "host:doc" point across servers, bare targets stay on
        ``host``.
        """
        key = self._key(host, name)
        if key in self.graph and self.graph.nodes[key].get("resolved"):
            raise ValueError(f"document {key!r} already added")
        self.graph.add_node(key, title=doc.title, host=host, resolved=True)
        for link in doc.hyperlinks():
            target_host = link.target_host if link.target_host is not None else host
            target_key = self._key(target_host, link.target_document)
            if target_key not in self.graph:
                self.graph.add_node(target_key, host=target_host,
                                    resolved=False)
            self.graph.add_edge(
                key, target_key,
                kind=link.kind, at_time=link.at_time, note=link.note,
            )

    @staticmethod
    def _key(host: str, name: str) -> str:
        return f"{host}:{name}" if host else name

    # -- queries -------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self.graph

    def documents(self) -> list[str]:
        return sorted(self.graph.nodes)

    def dangling(self) -> list[str]:
        """Link targets that were never added as documents."""
        return sorted(
            n for n, data in self.graph.nodes(data=True)
            if not data.get("resolved")
        )

    def links_from(self, key: str,
                   kind: LinkKind | None = None) -> list[tuple[str, dict]]:
        out = []
        for _, dst, data in self.graph.out_edges(key, data=True):
            if kind is None or data["kind"] is kind:
                out.append((dst, data))
        return out

    def sequential_successor(self, key: str) -> str | None:
        """The unique sequential next document, if any.

        Prefers a timed (AT) link — the author's automatic
        progression — over untimed sequential links.
        """
        seq = self.links_from(key, kind=LinkKind.SEQUENTIAL)
        if not seq:
            return None
        timed = [(d, l) for d, l in seq if l.get("at_time") is not None]
        chosen = timed[0] if timed else seq[0]
        return chosen[0]

    def sequential_path(self, start: str, limit: int = 100) -> list[str]:
        """Follow sequential links from ``start`` (cycle-safe)."""
        path = [start]
        seen = {start}
        current = start
        while len(path) < limit:
            nxt = self.sequential_successor(current)
            if nxt is None or nxt in seen:
                break
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path

    def reachable(self, start: str) -> set[str]:
        if start not in self.graph:
            raise KeyError(f"unknown document {start!r}")
        return set(nx.descendants(self.graph, start)) | {start}

    def cross_server_links(self) -> list[tuple[str, str]]:
        """Edges whose endpoints live on different hosts."""
        out = []
        for src, dst in self.graph.edges():
            if self.graph.nodes[src].get("host") != self.graph.nodes[dst].get("host"):
                out.append((src, dst))
        return sorted(set(out))
