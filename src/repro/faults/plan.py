"""Declarative, schedulable fault plans.

A :class:`FaultPlan` is a list of frozen fault records, each pinned to
an absolute simulation time. Plans are pure data — they carry no
behaviour — so they serialise to/from dicts for CLI flags, CI jobs and
golden files, and two runs given the same seed and plan replay
identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = [
    "LinkDownFault",
    "LinkFlapFault",
    "ServerCrashFault",
    "ControlPartitionFault",
    "ControlImpairFault",
    "FaultPlan",
]


@dataclass(frozen=True, slots=True)
class LinkDownFault:
    """Cut the ``src``→``dst`` link (both directions) for a while."""

    src: str
    dst: str
    at: float
    duration_s: float
    kind: str = "link-down"


@dataclass(frozen=True, slots=True)
class LinkFlapFault:
    """Repeatedly cut and restore a link: ``count`` outages of
    ``down_s`` seconds, one every ``period_s`` starting at ``at``."""

    src: str
    dst: str
    at: float
    period_s: float
    down_s: float
    count: int
    kind: str = "link-flap"


@dataclass(frozen=True, slots=True)
class ServerCrashFault:
    """Fail-stop one media server; optionally restart it later."""

    server: str
    media_server: str
    at: float
    #: None = never restarts
    restart_after_s: float | None = None
    kind: str = "server-crash"


@dataclass(frozen=True, slots=True)
class ControlPartitionFault:
    """Total control-plane partition: every control message delivered
    during the window is lost (the transport keeps retransmitting, but
    endpoint-level drops defeat it — this is what RPC retry is for)."""

    at: float
    duration_s: float
    kind: str = "control-partition"


@dataclass(frozen=True, slots=True)
class ControlImpairFault:
    """Lossy/slow control plane: messages are independently dropped
    with ``drop_prob`` and the survivors delayed by ``delay_s`` plus
    uniform jitter in ``[0, jitter_s)``."""

    at: float
    duration_s: float
    drop_prob: float = 0.0
    delay_s: float = 0.0
    jitter_s: float = 0.0
    kind: str = "control-impair"


_FAULT_TYPES = {
    "link-down": LinkDownFault,
    "link-flap": LinkFlapFault,
    "server-crash": ServerCrashFault,
    "control-partition": ControlPartitionFault,
    "control-impair": ControlImpairFault,
}

Fault = (LinkDownFault | LinkFlapFault | ServerCrashFault
         | ControlPartitionFault | ControlImpairFault)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered set of scheduled faults for one run."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if f.at < 0:
                raise ValueError(f"fault time must be >= 0: {f}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def empty(self) -> bool:
        return not self.faults

    def needs_control_state(self) -> bool:
        """Does this plan ever touch the control plane?"""
        return any(f.kind in ("control-partition", "control-impair")
                   for f in self.faults)

    def to_dict(self) -> dict:
        return {"faults": [asdict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults = []
        for item in data.get("faults", []):
            item = dict(item)
            kind = item.pop("kind")
            try:
                ftype = _FAULT_TYPES[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            faults.append(ftype(**item))
        return cls(faults=tuple(faults))
