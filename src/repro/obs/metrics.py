"""Labelled counters, gauges and histograms.

A :class:`MetricsRegistry` keys each time series on (metric name,
sorted label set), Prometheus-style, and hands back live instrument
objects — the caller holds the instrument and updates it without any
registry lookup on the hot path. Snapshots are plain dicts, so they
travel inside :class:`~repro.core.results.SessionResult` and
aggregate across a :class:`~repro.core.orchestrator.PopulationResult`
without dragging the registry along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "log_buckets"]

#: default histogram bucket upper bounds (seconds-flavoured)
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0, float("inf"))

#: percentiles reported by :meth:`Histogram.percentiles` by default
DEFAULT_QUANTILES = (0.50, 0.95, 0.99)


def log_buckets(lo: float, hi: float,
                per_decade: int = 9) -> tuple[float, ...]:
    """Logarithmically spaced bucket bounds from ``lo`` to past ``hi``.

    ``per_decade`` bounds per factor-of-ten keeps the relative
    quantile error bounded (~±12% at the default 9/decade) with a
    number of buckets that grows only with the dynamic range — the
    streaming-percentile trade-off the QoE scorer relies on. The
    returned tuple always ends with ``+inf``.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    factor = 10.0 ** (1.0 / per_decade)
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * factor)
    bounds.append(float("inf"))
    return tuple(bounds)


@dataclass(slots=True)
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """A value that can go up and down (e.g. buffer occupancy)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass(slots=True)
class Histogram:
    """Bucketed distribution with count/sum/min/max summary."""

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("bucket bounds must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the buckets.

        Prometheus-style: locate the bucket holding the target rank
        and interpolate linearly inside it; the open-ended last bucket
        reports the observed maximum. The result is clamped to the
        observed [min, max], so exact at the extremes and within one
        bucket's width elsewhere.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += n
            if cumulative >= target and n > 0:
                hi = self.bounds[i]
                if hi == float("inf"):
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else 0.0
                est = lo + (hi - lo) * (target - previous) / n
                return min(max(est, self.min), self.max)
        return self.max

    def percentiles(
        self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict[str, float]:
        """{"p50": ..., "p95": ...} for the requested quantiles."""
        return {f"p{round(q * 100):d}": self.quantile(q)
                for q in quantiles}

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both distributions.

        Associative and commutative (bucket counts and totals add;
        min/max combine), so shard results can merge in any order.
        Both operands must share identical bucket bounds — merging
        differently bucketed histograms would silently misplace mass.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        merged = Histogram(
            bounds=self.bounds,
            bucket_counts=[a + b for a, b in
                           zip(self.bucket_counts, other.bucket_counts)],
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )
        return merged

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "min": self.min, "max": self.max, **self.percentiles()}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class MetricsRegistry:
    """Registry of labelled instruments with snapshot export."""

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instrument accessors (get-or-create) -------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = Histogram(
                bounds=bounds if bounds is not None else DEFAULT_BUCKETS
            )
        return hist

    # -- queries -----------------------------------------------------------
    def series(
        self, name: str,
    ) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """(labels dict, instrument) pairs of one metric name."""
        for store in (self._counters, self._gauges, self._histograms):
            for (metric, key), instrument in store.items():
                if metric == name:
                    yield dict(key), instrument

    def names(self) -> list[str]:
        out = set()
        for store in (self._counters, self._gauges, self._histograms):
            out.update(metric for metric, _ in store)
        return sorted(out)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-serializable state: {name: {"k=v,...": value}}.

        Counters and gauges flatten to numbers, histograms to their
        summary dicts.
        """
        out: dict[str, dict[str, object]] = {}
        for (name, key), counter in self._counters.items():
            out.setdefault(name, {})[_label_str(key)] = counter.value
        for (name, key), gauge in self._gauges.items():
            out.setdefault(name, {})[_label_str(key)] = gauge.value
        for (name, key), hist in self._histograms.items():
            out.setdefault(name, {})[_label_str(key)] = hist.summary()
        return out

    @staticmethod
    def merge_counts(snapshots: list[dict[str, int]]) -> dict[str, int]:
        """Sum flat {key: count} dicts (per-session snapshot rollup)."""
        total: dict[str, int] = {}
        for snap in snapshots:
            for key, value in snap.items():
                total[key] = total.get(key, 0) + value
        return total
