"""The shipped-scenario corpus the ``--scenarios`` lint pass covers.

Two sources:

* **built-in** scenarios authored inside :mod:`repro` — the paper's
  Figure 2 worked example, the experiments' standard A/V workload and
  a Hermes distance-education course (a *closed*, cross-linked
  multi-document set);
* **example** scenarios from ``examples/*.py``: each example module
  exposes a ``scenario_documents() -> dict[name, markup]`` function
  (plus optional ``SCENARIO_CLOSED`` / ``SCENARIO_CAPACITY_MBPS``
  module attributes) that this module loads without executing the
  example's ``main()``.

Every set carries a declared access capacity so the static
bandwidth-feasibility pass runs over the whole corpus; the CI gate
asserts all of it lints error-free.
"""

from __future__ import annotations

import importlib.util
import os

from repro.analysis.scenario_rules import ScenarioSet
from repro.hml.ast import HmlDocument
from repro.hml.parser import parse

__all__ = [
    "builtin_scenario_sets",
    "example_scenario_sets",
    "shipped_scenario_sets",
    "default_examples_dir",
]

#: default declared access capacity for shipped scenarios (a paper-era
#: broadband access link comfortably above the heaviest shipped peak)
DEFAULT_CAPACITY_BPS = 10e6


def _as_document(value: "HmlDocument | str") -> HmlDocument:
    return value if isinstance(value, HmlDocument) else parse(value)


def builtin_scenario_sets() -> dict[str, ScenarioSet]:
    """Scenario sets authored inside the package."""
    from repro.core.experiments import av_markup
    from repro.hermes.lessons import make_course
    from repro.hml.examples import figure2_document

    sets: dict[str, ScenarioSet] = {}
    sets["figure2"] = ScenarioSet(
        name="figure2",
        documents={"figure2": figure2_document()},
        closed=False,  # its link leaves the worked example
        capacity_bps=DEFAULT_CAPACITY_BPS,
    )
    sets["experiment-av"] = ScenarioSet(
        name="experiment-av",
        documents={"experiment-av": parse(av_markup(10.0, True))},
        closed=True,
        capacity_bps=DEFAULT_CAPACITY_BPS,
    )
    # The CDN bench's hot document: one continuous A/V pair fanned out
    # to every region by shared-flow batching (no image sidecars).
    sets["cdn-hot"] = ScenarioSet(
        name="cdn-hot",
        documents={"cdn-hot": parse(av_markup(6.0, False))},
        closed=True,
        capacity_bps=DEFAULT_CAPACITY_BPS,
    )
    lessons = make_course("routing", "networking", n_lessons=3,
                          segment_s=5.0, tutor="dr-net")
    sets["hermes-routing"] = ScenarioSet(
        name="hermes-routing",
        documents={lesson.name: lesson.document for lesson in lessons},
        closed=True,  # a course is a complete authored universe
        capacity_bps=DEFAULT_CAPACITY_BPS,
    )
    return sets


def default_examples_dir() -> str | None:
    """Locate ``examples/`` next to the working tree, if present."""
    candidates = [
        os.path.join(os.getcwd(), "examples"),
        os.path.normpath(os.path.join(
            os.path.dirname(__file__), "..", "..", "..", "examples")),
    ]
    for cand in candidates:
        if os.path.isdir(cand):
            return cand
    return None


def example_scenario_sets(
    examples_dir: str | None = None,
) -> dict[str, ScenarioSet]:
    """Load ``scenario_documents()`` from every example module.

    Modules without the hook (pure-workflow examples) are skipped;
    a module that fails to import is surfaced as a broken corpus
    entry by raising — shipped examples must stay importable.
    """
    directory = (examples_dir if examples_dir is not None
                 else default_examples_dir())
    if directory is None:
        return {}
    sets: dict[str, ScenarioSet] = {}
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".py") or fname.startswith("_"):
            continue
        mod_name = f"_repro_example_{fname[:-3]}"
        spec = importlib.util.spec_from_file_location(
            mod_name, os.path.join(directory, fname))
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        hook = getattr(module, "scenario_documents", None)
        if hook is None:
            continue
        documents = {
            name: _as_document(value)
            for name, value in hook().items()
        }
        capacity_mbps = getattr(module, "SCENARIO_CAPACITY_MBPS", None)
        sets[fname[:-3]] = ScenarioSet(
            name=fname[:-3],
            documents=documents,
            closed=bool(getattr(module, "SCENARIO_CLOSED", False)),
            capacity_bps=(capacity_mbps * 1e6 if capacity_mbps is not None
                          else DEFAULT_CAPACITY_BPS),
        )
    return sets


def shipped_scenario_sets(
    examples_dir: str | None = None,
) -> dict[str, ScenarioSet]:
    """The full corpus: built-ins plus example-module scenarios."""
    sets = builtin_scenario_sets()
    sets.update(example_scenario_sets(examples_dir))
    return sets
