"""Unit tests for SessionResult aggregates, the search client, and
the client QoS manager."""

import pytest

from repro.client.metrics import SkewSeries
from repro.core.results import SessionResult, StreamResult
from repro.des import Simulator
from repro.net import Network
from repro.rtp import RtpReceiver
from repro.client import ClientQoSManager
from repro.service.search import SearchClient


# ------------------------------------------------------------- results
def make_result():
    r = SessionResult(document="d", completed=True, startup_latency_s=0.2,
                      charge=0.01)
    r.streams["A"] = StreamResult("A", "audio", frames_played=100, gaps=0,
                                  packets_received=100, packets_lost=0,
                                  mean_grade=0.0)
    r.streams["V"] = StreamResult("V", "video", frames_played=80, gaps=20,
                                  packets_received=90, packets_lost=10,
                                  mean_grade=2.0)
    s = SkewSeries("g")
    s.sample(0.0, 0.05)
    s.sample(1.0, -0.12)
    r.skew["g"] = s
    return r


def test_result_aggregates():
    r = make_result()
    assert r.total_gaps() == 20
    assert r.total_gap_ratio() == pytest.approx(20 / 200)
    assert r.loss_ratio() == pytest.approx(10 / 200)
    assert r.worst_skew_s() == pytest.approx(0.12)
    assert r.out_of_sync_fraction() == pytest.approx(0.5)
    assert r.mean_video_grade() == 2.0
    assert r.mean_audio_grade() == 0.0


def test_result_empty_aggregates():
    r = SessionResult(document="d", completed=False,
                      startup_latency_s=None, charge=0.0)
    assert r.total_gaps() == 0
    assert r.total_gap_ratio() == 0.0
    assert r.loss_ratio() == 0.0
    assert r.worst_skew_s() == 0.0
    assert r.mean_video_grade() == 0.0


# ------------------------------------------------------------- search
def test_search_client_orders_home_first():
    results = {"remote-b": ["x"], "home": ["y", "z"], "remote-a": ["w"]}
    hits = SearchClient.hits(results, home_server="home")
    assert [h.server for h in hits] == ["home", "home", "remote-a",
                                       "remote-b"]
    assert hits[0].qualified_name == "home:y"
    remote = SearchClient.remote_hits(results, "home")
    assert all(h.server != "home" for h in remote)
    assert len(remote) == 2


def test_search_client_empty():
    assert SearchClient.hits({}) == []
    assert SearchClient.remote_hits({}, "home") == []


# ------------------------------------------------------------- QoS mgr
def build_net():
    sim = Simulator()
    net = Network(sim)
    net.add_node("cli")
    net.add_node("srv")
    net.add_duplex_link("cli", "srv", 10e6, 0.005)
    return sim, net


def test_qos_manager_registration_and_conditions():
    sim, net = build_net()
    mgr = ClientQoSManager(net, "cli", report_interval_s=0.5)
    rx = RtpReceiver(net, "cli", 5004, 90_000, "v")
    mgr.register_stream(rx, 5006, "srv", 5008, ssrc=1)
    assert mgr.streams() == ["v"]
    cond = mgr.condition("v")
    assert cond.stream_id == "v"
    assert cond.loss_ratio == 0.0
    assert mgr.worst_jitter_s() == 0.0
    with pytest.raises(ValueError):
        mgr.register_stream(rx, 5007, "srv", 5008, ssrc=2)
    with pytest.raises(KeyError):
        mgr.condition("ghost")
    with pytest.raises(ValueError):
        ClientQoSManager(net, "cli", report_interval_s=0)


def test_qos_manager_reports_and_stop():
    sim, net = build_net()
    from repro.rtp import RtcpSink

    sink = RtcpSink(net, "srv", 5008)
    mgr = ClientQoSManager(net, "cli", report_interval_s=0.5)
    rx = RtpReceiver(net, "cli", 5004, 90_000, "v")
    mgr.register_stream(rx, 5006, "srv", 5008, ssrc=1)
    sim.run(until=2.2)
    assert mgr.reports_sent() == 4
    assert len(sink.reports_received) == 4
    mgr.stop()
    sim.run(until=5.0)
    assert mgr.reports_sent() == 4  # no more after stop


def test_qos_manager_empty_worst_jitter():
    sim, net = build_net()
    mgr = ClientQoSManager(net, "cli")
    assert mgr.worst_jitter_s() == 0.0
    assert mgr.streams() == []
    assert mgr.reports_sent() == 0
