"""The Hermes server catalogue (§6.2.1).

"Initially, the user must specify the Hermes server that he wishes to
connect to. For that reason, a list of available Hermes servers is
provided. For every Hermes server, a small description concerning the
kind of lessons that are stored in it, is presented. Every Hermes
server contains lessons concerning specific and well known thematic
units."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerDescription", "HermesCatalog"]


@dataclass(frozen=True, slots=True)
class ServerDescription:
    name: str
    description: str
    thematic_units: tuple[str, ...]

    def covers(self, unit: str) -> bool:
        return unit.lower() in (u.lower() for u in self.thematic_units)


class HermesCatalog:
    """The list of available Hermes servers shown at connect time."""

    def __init__(self) -> None:
        self._servers: dict[str, ServerDescription] = {}

    def register(self, name: str, description: str,
                 thematic_units: list[str]) -> ServerDescription:
        if name in self._servers:
            raise ValueError(f"server {name!r} already in the catalogue")
        if not thematic_units:
            raise ValueError("a Hermes server needs at least one thematic unit")
        desc = ServerDescription(name=name, description=description,
                                 thematic_units=tuple(thematic_units))
        self._servers[name] = desc
        return desc

    def __contains__(self, name: str) -> bool:
        return name in self._servers

    def __len__(self) -> int:
        return len(self._servers)

    def listing(self) -> list[ServerDescription]:
        """What the user sees when picking a server."""
        return [self._servers[n] for n in sorted(self._servers)]

    def get(self, name: str) -> ServerDescription:
        try:
            return self._servers[name]
        except KeyError:
            raise KeyError(f"no Hermes server {name!r}") from None

    def servers_for_unit(self, unit: str) -> list[str]:
        """Servers likely to contain lessons on a thematic unit."""
        return sorted(n for n, d in self._servers.items() if d.covers(unit))
