"""Event queue, events and generator-based processes.

The kernel is intentionally small and deterministic:

* time is a ``float`` number of simulated seconds;
* events scheduled for the same instant fire in schedule order
  (a monotonically increasing sequence number breaks ties);
* processes are plain Python generators that ``yield`` events and are
  resumed with the event's value when it triggers.

Nothing here knows about networks or media — higher layers build on
:class:`Simulator` only through :meth:`Simulator.process`,
:meth:`Simulator.timeout`, :meth:`Simulator.event` and the resource
classes in :mod:`repro.des.resources`.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Simulator",
]


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The paper's client interrupts running playout processes when the
    user activates a hyperlink mid-presentation; this exception models
    that preemption.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait for.

    An event is *triggered* once, either successfully (with a value)
    or as a failure (with an exception). Callbacks registered before
    triggering run, in registration order, when the kernel processes
    the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state --------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    # -- triggering ---------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._enqueue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._enqueue_event(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers ``delay`` seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator may ``yield``:

    * an :class:`Event` (including another :class:`Process`) — the
      process resumes with the event's value when it triggers;
    * ``None`` — the process resumes on the next kernel step (a
      cooperative yield at the same simulated time).
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(
        self, sim: "Simulator", gen: Generator[Any, Any, Any], name: str = ""
    ) -> None:
        super().__init__(sim)
        if not isinstance(gen, Generator):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Event | None = None
        if sim._tracing:
            sim._tracer.emit(sim.now, "process.spawn", self.name)
        # Kick off at the current instant.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op error, mirroring the
        fact that a completed playout cannot be preempted.
        """
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "process.interrupt",
                                  self.name, cause=repr(cause))
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.callbacks.append(lambda ev: self._step(throw=Interrupt(cause)))
        wakeup.succeed()

    # -- internals ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: BaseException | None = None) -> None:
        if self._triggered:
            return
        try:
            if throw is not None:
                target = self.gen.throw(throw)
            else:
                target = self.gen.send(send)
        except StopIteration as stop:
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "process.finish",
                                      self.name, outcome="ok")
            self.succeed(stop.value)
            return
        except Interrupt:
            # Uncaught interrupt terminates the process quietly: the
            # preempted playout simply ends.
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "process.finish",
                                      self.name, outcome="interrupted")
            self.succeed(None)
            return
        except BaseException as exc:
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "process.finish",
                                      self.name, outcome="error",
                                      error=repr(exc))
            self.fail(exc)
            return

        if target is None:
            target = Event(self.sim)
            target.succeed()
        if not isinstance(target, Event):
            self.gen.close()
            self.fail(TypeError(f"process {self.name!r} yielded {target!r}"))
            return
        if target.callbacks is None:
            # Already processed: resume immediately via a fresh event so
            # ordering stays FIFO at this instant.
            proxy = Event(self.sim)
            proxy.callbacks.append(self._resume)
            if target.ok:
                proxy.succeed(target.value)
            else:
                proxy._ok = False
                proxy._value = target.value
                proxy._triggered = True
                self.sim._enqueue_event(proxy)
            self._waiting_on = proxy
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._on_trigger(ev)
            else:
                ev.callbacks.append(self._on_trigger)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.triggered}

    def _on_trigger(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _on_trigger(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _on_trigger(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class Simulator:
    """The event queue and simulated clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        # Tracing is opt-in and two-tier: `_tracing` guards
        # control-plane emits (faults, admission, drops, spans);
        # `_tracing_detail` guards the per-packet/per-frame firehose
        # and is True only when the tracer also declares
        # ``detail = True``. A sim without a tracer pays one
        # attribute check per hook point either way.
        self._tracer = None
        self._tracing = False
        self._tracing_detail = False

    @property
    def now(self) -> float:
        return self._now

    # -- observability -------------------------------------------------
    @property
    def tracer(self):
        """The attached tracer, or ``None`` (tracing disabled)."""
        return self._tracer

    @property
    def tracing(self) -> bool:
        """True when a tracer is attached and enabled."""
        return self._tracing

    def set_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a structured tracer.

        Anything with the :class:`repro.obs.Tracer` emit/span API and
        an ``enabled`` flag works; the kernel deliberately doesn't
        import :mod:`repro.obs` so the DES layer stays dependency-free.
        """
        self._tracer = tracer
        self._tracing = tracer is not None and bool(
            getattr(tracer, "enabled", False)
        )
        self._tracing_detail = self._tracing and bool(
            getattr(tracer, "detail", True)
        )

    # -- construction helpers -----------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, gen: Generator[Any, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, gen, name=name)

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timeout:
        """Invoke ``fn()`` after ``delay`` seconds (fire-and-forget).

        Lighter than spawning a process for one-shot actions such as
        a packet emerging from a propagation delay.
        """
        t = Timeout(self, delay)
        t.callbacks.append(lambda _ev: fn())
        return t

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _schedule_at(self, time: float, event: Event) -> None:
        if time < self._now:
            raise ValueError(f"cannot schedule into the past: {time} < {self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), event))

    def _enqueue_event(self, event: Event) -> None:
        heapq.heappush(self._heap, (self._now, next(self._seq), event))

    # -- execution ------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        if self._tracing_detail:
            self._tracer.emit(time, "kernel.event",
                              type(event).__name__)
        # Timeouts trigger at their fire instant (succeed()/fail() set
        # the flag eagerly for ordinary events).
        event._triggered = True
        event._run_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a deadline, or an event triggers.

        ``until`` may be a time (run up to and including that instant),
        an :class:`Event` (run until it triggers; its value is
        returned), or ``None`` (drain the queue).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            if isinstance(until, Event):
                while not until.triggered or not until.processed:
                    if not self._heap:
                        raise RuntimeError(
                            "event queue drained before `until` event triggered"
                        )
                    self.step()
                if not until.ok:
                    raise until.value
                return until.value
            deadline = float("inf") if until is None else float(until)
            if deadline < self._now:
                raise ValueError(
                    f"deadline {deadline} is in the past (now={self._now})")
            while self._heap and self._heap[0][0] <= deadline:
                self.step()
            if until is not None:
                self._now = max(self._now, deadline)
            return None
        finally:
            self._running = False
