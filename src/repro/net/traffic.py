"""Cross-traffic sources used to load the network.

Congestion in the experiments is created by competing traffic on
shared links, reproducing "times of network congestion" in which the
paper's recovery mechanisms must act:

* :class:`PoissonTrafficSource` — memoryless packet arrivals at a
  configurable mean rate (classic background load).
* :class:`OnOffTrafficSource` — exponential ON/OFF bursts sending at
  peak rate during ON periods; superpositions of these produce the
  bursty, correlated load broadband links actually see.
"""

from __future__ import annotations

import numpy as np

from repro.des import Simulator
from repro.net.channel import DatagramSocket
from repro.net.topology import Network

__all__ = ["PoissonTrafficSource", "OnOffTrafficSource"]


class _TrafficBase:
    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        rng: np.random.Generator,
        packet_bytes: int = 1000,
        port: int = 9,
        flow_id: str = "",
        start_at: float = 0.0,
        stop_at: float = float("inf"),
    ) -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.src = src
        self.dst = dst
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.flow_id = flow_id or f"xtraffic:{src}->{dst}"
        self.start_at = start_at
        self.stop_at = stop_at
        self.packets_sent = 0
        self._socket = DatagramSocket(network, src, port=self._free_port(port))
        self.sim.process(self._run(), name=self.flow_id)

    def _free_port(self, base: int) -> int:
        node = self.network.node(self.src)
        port = base
        while port in node._ports:
            port += 1
        return port

    def _emit(self) -> None:
        self.packets_sent += 1
        self._socket.sendto(
            self.dst,
            dst_port=9,
            size_bytes=self.packet_bytes,
            protocol="UDP",
            flow_id=self.flow_id,
            seq=self.packets_sent,
        )

    def _run(self):  # pragma: no cover - overridden
        raise NotImplementedError
        yield


class PoissonTrafficSource(_TrafficBase):
    """Poisson packet arrivals at ``rate_bps`` mean load."""

    def __init__(self, network, src, dst, rng, rate_bps: float, **kw) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.rate_bps = rate_bps
        super().__init__(network, src, dst, rng, **kw)

    @property
    def mean_interarrival_s(self) -> float:
        return self.packet_bytes * 8.0 / self.rate_bps

    def _run(self):
        if self.start_at > 0:
            yield self.sim.timeout(self.start_at)
        while self.sim.now < self.stop_at:
            yield self.sim.timeout(
                float(self.rng.exponential(self.mean_interarrival_s))
            )
            if self.sim.now >= self.stop_at:
                break
            self._emit()


class OnOffTrafficSource(_TrafficBase):
    """Exponential ON/OFF source bursting at ``peak_rate_bps``.

    Mean load is ``peak_rate_bps * on_mean / (on_mean + off_mean)``.
    """

    def __init__(
        self,
        network,
        src,
        dst,
        rng,
        peak_rate_bps: float,
        on_mean_s: float = 1.0,
        off_mean_s: float = 1.0,
        **kw,
    ) -> None:
        if peak_rate_bps <= 0:
            raise ValueError("peak_rate_bps must be positive")
        if on_mean_s <= 0 or off_mean_s <= 0:
            raise ValueError("on/off means must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.on_mean_s = on_mean_s
        self.off_mean_s = off_mean_s
        super().__init__(network, src, dst, rng, **kw)

    @property
    def mean_rate_bps(self) -> float:
        duty = self.on_mean_s / (self.on_mean_s + self.off_mean_s)
        return self.peak_rate_bps * duty

    def _run(self):
        interval = self.packet_bytes * 8.0 / self.peak_rate_bps
        if self.start_at > 0:
            yield self.sim.timeout(self.start_at)
        while self.sim.now < self.stop_at:
            on_len = float(self.rng.exponential(self.on_mean_s))
            burst_end = self.sim.now + on_len
            while self.sim.now < burst_end and self.sim.now < self.stop_at:
                self._emit()
                yield self.sim.timeout(interval)
            yield self.sim.timeout(float(self.rng.exponential(self.off_mean_s)))
