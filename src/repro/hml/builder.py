"""Fluent authoring API for HML documents.

The builder is what "authors" (lesson designers in Hermes, workload
generators in the benchmarks) use instead of hand-writing markup; it
produces the same AST the parser does.
"""

from __future__ import annotations

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    HyperLink,
    ImageElement,
    LinkKind,
    Paragraph,
    Separator,
    TextBlock,
    TextSpan,
    VideoElement,
)

__all__ = ["DocumentBuilder"]


class DocumentBuilder:
    """Chainable builder; call :meth:`build` to obtain the document."""

    def __init__(self, title: str) -> None:
        if not title.strip():
            raise ValueError("document title must be non-empty")
        self._doc = HmlDocument(title=title.strip())

    # -- structure -------------------------------------------------------
    def heading(self, level: int, text: str) -> "DocumentBuilder":
        self._doc.elements.append(Heading(level=level, text=text))
        return self

    def paragraph(self) -> "DocumentBuilder":
        self._doc.elements.append(Paragraph())
        return self

    def separator(self) -> "DocumentBuilder":
        self._doc.elements.append(Separator())
        return self

    def text(self, *spans: str | TextSpan) -> "DocumentBuilder":
        converted = tuple(
            s if isinstance(s, TextSpan) else TextSpan(str(s)) for s in spans
        )
        if not converted:
            raise ValueError("text() requires at least one span")
        self._doc.elements.append(TextBlock(spans=converted))
        return self

    # -- media -----------------------------------------------------------
    def image(
        self,
        source: str,
        element_id: str,
        startime: float = 0.0,
        duration: float | None = None,
        width: int | None = None,
        height: int | None = None,
        where: tuple[int, int] | None = None,
        note: str = "",
        repeat: int = 1,
    ) -> "DocumentBuilder":
        self._doc.elements.append(
            ImageElement(source=source, element_id=element_id, startime=startime,
                         duration=duration, width=width, height=height,
                         where=where, note=note, repeat=repeat)
        )
        return self

    def audio(
        self,
        source: str,
        element_id: str,
        startime: float = 0.0,
        duration: float | None = None,
        note: str = "",
        repeat: int = 1,
    ) -> "DocumentBuilder":
        self._doc.elements.append(
            AudioElement(source=source, element_id=element_id,
                         startime=startime, duration=duration, note=note,
                         repeat=repeat)
        )
        return self

    def video(
        self,
        source: str,
        element_id: str,
        startime: float = 0.0,
        duration: float | None = None,
        note: str = "",
        repeat: int = 1,
    ) -> "DocumentBuilder":
        self._doc.elements.append(
            VideoElement(source=source, element_id=element_id,
                         startime=startime, duration=duration, note=note,
                         repeat=repeat)
        )
        return self

    def audio_video(
        self,
        audio_source: str,
        video_source: str,
        audio_id: str,
        video_id: str,
        startime: float = 0.0,
        duration: float | None = None,
        note: str = "",
    ) -> "DocumentBuilder":
        """Synchronized pair: both media share the start time."""
        self._doc.elements.append(
            AudioVideoElement(
                audio_source=audio_source, video_source=video_source,
                audio_id=audio_id, video_id=video_id,
                audio_startime=startime, video_startime=startime,
                duration=duration, note=note,
            )
        )
        return self

    # -- links -------------------------------------------------------------
    def hyperlink(
        self,
        target: str,
        kind: LinkKind | None = None,
        at_time: float | None = None,
        note: str = "",
    ) -> "DocumentBuilder":
        if kind is None:
            kind = LinkKind.SEQUENTIAL if at_time is not None \
                else LinkKind.EXPLORATIONAL
        self._doc.elements.append(
            HyperLink(target=target, kind=kind, at_time=at_time, note=note)
        )
        return self

    def build(self) -> HmlDocument:
        return self._doc
