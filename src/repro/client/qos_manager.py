"""Client QoS Manager.

"Incoming data packets of a specific stream, besides other
information, carry a timestamping indication which is used by the
Client QoS Manager to carry out conclusions about the connection's
condition, e.g. the packet delay, the delay jitter. Based on this
information, the client QoS manager, periodically or in specifically
calculated intervals, sends feedback reports to the sending side"
(§4).

One manager aggregates all of a presentation's RTP receivers and owns
their RTCP reporters; it also exposes the per-stream connection
condition for local decisions (e.g. time-window sizing of late-bound
buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Network
from repro.rtp.rtcp import RtcpReporter
from repro.rtp.session import RtpReceiver

__all__ = ["ClientQoSManager", "ConnectionCondition"]


@dataclass(frozen=True, slots=True)
class ConnectionCondition:
    """Snapshot of one stream's observed network condition."""

    stream_id: str
    mean_delay_s: float
    last_delay_s: float
    jitter_s: float
    cumulative_lost: int
    packets_received: int

    @property
    def loss_ratio(self) -> float:
        total = self.packets_received + self.cumulative_lost
        return 0.0 if total == 0 else self.cumulative_lost / total


class ClientQoSManager:
    """Aggregates receiver statistics and runs the feedback loop."""

    def __init__(self, network: Network, node_id: str,
                 report_interval_s: float = 1.0,
                 adaptive: bool = False) -> None:
        if report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")
        self.network = network
        self.node_id = node_id
        self.report_interval_s = report_interval_s
        self.adaptive = adaptive
        #: session id stamped onto RTCP trace events (wired by the
        #: client composition when tracing is on)
        self.session = ""
        self._receivers: dict[str, RtpReceiver] = {}
        self._reporters: dict[str, RtcpReporter] = {}
        #: report source ports drawn from the node's own allocator —
        #: returned in :meth:`stop` (pairing the allocate below)
        self._owned_ports: list[int] = []
        self._stopped = False

    def register_stream(
        self,
        receiver: RtpReceiver,
        rtcp_port: int | None,
        server_node: str,
        server_rtcp_port: int,
        ssrc: int,
    ) -> RtcpReporter:
        """Attach a stream and start its periodic receiver reports.

        ``rtcp_port=None`` draws the report source port from this
        client host's own allocator.
        """
        stream_id = receiver.stream_id
        if stream_id in self._receivers:
            raise ValueError(f"stream {stream_id!r} already registered")
        if rtcp_port is None:
            rtcp_port = self.network.node(self.node_id).ports.allocate("media")
            self._owned_ports.append(rtcp_port)
        self._receivers[stream_id] = receiver
        sim = self.network.sim
        if sim._tracing:
            sim._tracer.emit(sim.now, "qos.stream", stream_id,
                             node=self.node_id, rtcp_port=rtcp_port,
                             interval_s=self.report_interval_s,
                             session=self.session)
        reporter = RtcpReporter(
            self.network, receiver, self.node_id, rtcp_port,
            server_node, server_rtcp_port, ssrc=ssrc,
            interval_s=self.report_interval_s,
            adaptive=self.adaptive,
            min_interval_s=min(0.25, self.report_interval_s),
        )
        reporter.session = self.session
        self._reporters[stream_id] = reporter
        return reporter

    def stop(self) -> None:
        """Stop the feedback loop and return owned report ports.

        Idempotent: the orchestrator stops the loop at presentation
        end and the composition's ``close()`` calls it again during
        session teardown. Reports flow client → server only, so
        unbinding the source sockets here cannot strand in-flight
        traffic.
        """
        if self._stopped:
            return
        self._stopped = True
        owned = set(self._owned_ports)
        for stream_id in sorted(self._reporters):
            reporter = self._reporters[stream_id]
            reporter.stop()
            # Only tear down sockets on ports this manager allocated;
            # externally-chosen report ports stay the caller's.
            if reporter.socket.port in owned:
                reporter.socket.close()
        ports = self.network.node(self.node_id).ports
        for port in self._owned_ports:
            ports.release(port)
        self._owned_ports.clear()

    # -- queries -----------------------------------------------------------
    def streams(self) -> list[str]:
        return sorted(self._receivers)

    def condition(self, stream_id: str) -> ConnectionCondition:
        try:
            rx = self._receivers[stream_id]
        except KeyError:
            raise KeyError(f"no registered stream {stream_id!r}") from None
        st = rx.stats
        return ConnectionCondition(
            stream_id=stream_id,
            mean_delay_s=st.mean_delay_s,
            last_delay_s=st.last_delay_s,
            jitter_s=rx.jitter.jitter_s,
            cumulative_lost=st.cumulative_lost,
            packets_received=st.packets_received,
        )

    def worst_jitter_s(self) -> float:
        if not self._receivers:
            return 0.0
        return max(rx.jitter.jitter_s for rx in self._receivers.values())

    def reports_sent(self) -> int:
        return sum(r.reports_sent for r in self._reporters.values())
