"""Deterministic decomposition of a population into cells and shards.

The unit of determinism is the **cell**: a fixed-size block of
clients that runs as a complete, self-contained engine. Cell count,
cell membership and every cell's seed derive only from the population
size, the cell size and the root seed — never from the shard count or
any runtime state — so the set of cell results is a pure function of
``(n_clients, cell_clients, seed)``. Shards are merely *assignments*
of cells to worker processes; changing K changes who computes a cell,
not what the cell computes. That is what makes the merged digest
shard-count-invariant and a retried shard byte-identical to the lost
attempt.

Seed streams: cell ``c`` seeds its engine from
``SeedSequence(entropy=seed, spawn_key=(0, c))``; shard ``s`` gets a
supervisor-side stream from ``spawn_key=(1, s)`` (used only for retry
backoff jitter — it never touches simulation results).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

__all__ = ["ShardPlan", "ShardWorkload"]

#: spawn-key namespaces (cell engines vs supervisor jitter streams)
_CELL_KEY = 0
_SHARD_KEY = 1


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Partition of N clients into cells, and cells onto K shards."""

    n_clients: int
    n_shards: int
    cell_clients: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.cell_clients < 1:
            raise ValueError("cell_clients must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    # -- cells ---------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return -(-self.n_clients // self.cell_clients)

    def cell_bounds(self, cell: int) -> tuple[int, int]:
        """Global client-index range ``[lo, hi)`` of one cell."""
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell {cell} out of range 0..{self.n_cells - 1}")
        lo = cell * self.cell_clients
        return lo, min(self.n_clients, lo + self.cell_clients)

    def cell_seed(self, cell: int) -> int:
        """The engine seed of one cell (independent of ``n_shards``)."""
        seq = np.random.SeedSequence(entropy=self.seed,
                                     spawn_key=(_CELL_KEY, cell))
        return int(seq.generate_state(1, np.uint64)[0])

    def shard_seed(self, shard: int) -> int:
        """Supervisor-side stream for shard ``shard`` (jitter only)."""
        seq = np.random.SeedSequence(entropy=self.seed,
                                     spawn_key=(_SHARD_KEY, shard))
        return int(seq.generate_state(1, np.uint64)[0])

    # -- shard assignment ----------------------------------------------------
    def shard_cells(self, shard: int) -> list[int]:
        """Cells owned by shard ``shard`` (round-robin by cell index)."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard {shard} out of range 0..{self.n_shards - 1}")
        return [c for c in range(self.n_cells)
                if c % self.n_shards == shard]

    def worker_cells(self, shard: int) -> list[tuple[int, int, int, int]]:
        """``(cell, lo, hi, seed)`` tuples for one worker process."""
        out = []
        for c in self.shard_cells(shard):
            lo, hi = self.cell_bounds(c)
            out.append((c, lo, hi, self.cell_seed(c)))
        return out

    def to_dict(self) -> dict:
        return {"n_clients": self.n_clients, "n_shards": self.n_shards,
                "cell_clients": self.cell_clients, "seed": self.seed}


@dataclass(frozen=True, slots=True)
class ShardWorkload:
    """What every cell runs: the document, the shape, the fault plan.

    Pure picklable data — worker processes rebuild engines from it.
    ``config`` holds :class:`~repro.core.config.EngineConfig` keyword
    overrides (never ``seed``; seeds come from the plan per cell).

    The ``fail_*`` / ``hang_*`` / ``cell_delay_s`` fields are
    supervised-crash test hooks: they make a worker die (``os._exit``)
    or go silent at a deterministic point so the retry and timeout
    paths can be drilled without races.
    """

    markup: str
    document: str = "doc"
    topic: str = "bench"
    server: str = "srv1"
    contract: str = "basic"
    stagger_s: float = 0.4
    horizon_s: float = 600.0
    config: dict = field(default_factory=dict)
    #: FaultPlan.to_dict() form, installed in every cell (None = none)
    fault_plan: dict | None = None
    # -- crash-drill hooks ---------------------------------------------------
    #: shard that dies (os._exit) after sending ``fault_after_cells``
    fail_shard: int | None = None
    #: attempts (1-based) on which the failure fires; later retries run
    fail_attempts: int = 1
    #: shard that goes silent (stops heartbeats, sleeps) instead
    hang_shard: int | None = None
    hang_attempts: int = 1
    fault_after_cells: int = 1
    #: wall-clock pause after each cell (widens kill-race windows)
    cell_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if "seed" in self.config:
            raise ValueError(
                "workload config must not carry a seed: cell seeds come "
                "from the ShardPlan's seed streams")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardWorkload":
        return cls(**data)
