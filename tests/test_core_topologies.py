"""Tests for engine topology options and full-stack interactive ops."""

from repro.core import EngineConfig, ServiceEngine
from repro.core.experiments import av_markup
from repro.hml.examples import figure2_markup


def test_separate_media_hosts_topology():
    eng = ServiceEngine(EngineConfig(separate_media_hosts=True))
    eng.add_server("srv1", documents={"fig2": (figure2_markup(), "demo")})
    # Each media server got its own host behind the router.
    for host in ("host:imgsrv", "host:audsrv", "host:vidsrv"):
        assert host in eng.network.nodes
    server = eng.servers["srv1"]
    nodes = {ms.node_id for ms in server.media_servers.values()}
    assert len(nodes) == 3
    assert server.node_id not in nodes
    # The parallel-connection delivery still works, in sync.
    result = eng.orchestrator.run_full_session("srv1", "fig2")
    assert result.completed
    assert result.worst_skew_s() < 0.08
    assert result.total_gap_ratio() < 0.05


def test_colocated_default_topology():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"fig2": (figure2_markup(), "demo")})
    server = eng.servers["srv1"]
    nodes = {ms.node_id for ms in server.media_servers.values()}
    assert nodes == {server.node_id}


def test_full_stack_pause_resume_and_reload():
    """§5 interactive operations across the whole stack: pause stops
    server transmission and client playout; resume continues; reload
    re-requests the same document."""
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"doc": (av_markup(4.0), "x")})
    server = eng.servers["srv1"]
    client, handler = eng.open_session("srv1", "u", "pw")
    box = {}

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            yield from client.subscribe(SubscriptionForm(
                real_name="U", address="x", email="u@e.org"))
        resp = yield from client.request_document("doc")
        comp = eng.build_client_composition(resp.body["markup"], server)
        ready = yield from client.send_ready(comp.rtp_ports,
                                             comp.discrete_ports)
        comp.attach_feedback(ready.body["rtcp_port"], server.node_id)
        done = comp.start()
        # Pause both sides at t≈1.5, resume at t≈4.5.
        yield eng.sim.timeout(1.5)
        yield from client.pause()
        comp.scheduler.pause()
        pause_started = eng.sim.now
        yield eng.sim.timeout(3.0)
        yield from client.resume()
        comp.scheduler.resume()
        yield done
        box["end"] = eng.sim.now
        box["pause_started"] = pause_started
        box["comp"] = comp
        comp.qos.stop()
        # Reload: request the same document again (FSM reload edge).
        client.reload()
        resp = yield from client.request_document("doc", via_link=True)
        box["reload"] = resp.msg_type
        yield from client.disconnect()

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    eng.sim.run(until=eng.sim.now + 1.0)
    comp = box["comp"]
    # The 4 s presentation stretched by ~3 s of pause.
    assert box["end"] >= box["pause_started"] + 3.0
    # No frames arrived at the client's receivers during the pause gap
    # (beyond a small in-flight tail).
    assert comp.log.gap_count() == 0
    assert box["reload"] == "scenario"


def test_time_window_sizing_uses_statistics_when_unset():
    """With time_window_s=None the buffers size themselves from the
    statistical formula (not a fixed default)."""
    eng = ServiceEngine(EngineConfig(time_window_s=None))
    eng.add_server("srv1", documents={"doc": (av_markup(3.0), "x")})
    result = eng.orchestrator.run_full_session("srv1", "doc")
    assert result.completed
    for sid in ("A", "V"):
        assert result.streams[sid].time_window_s >= 0.2
