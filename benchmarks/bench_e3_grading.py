"""E3 — long-term recovery by media quality grading.

Claim (§4): on congestion feedback the server "gracefully degrades
the stream's quality ... This results in less network traffic, thus
more available bandwidth", and upgrades again "when the network's
condition permits it". Grading should beat fixed full quality on
loss and gaps through a congestion epoch, at the cost of temporarily
lower video quality.
"""

from repro.analysis import render_table
from repro.core.experiments import run_grading_comparison


def test_e3_grading_on_off(report, once):
    headers, rows, results = once(run_grading_comparison)
    report("e3_grading",
           render_table("E3 — quality grading through a congestion epoch "
                        "(cross traffic during [5, 20) s)",
                        headers, rows))
    on = next(r for r in rows if r[0] == "on")
    off = next(r for r in rows if r[0] == "off")
    # Grading cuts packet loss and presentation gaps decisively.
    assert on[1] < off[1] / 2, "grading should cut loss by >2x"
    assert on[2] < off[2], "grading should cut gap time"
    # The cost: degraded (but nonzero-quality) video during the epoch.
    assert 0 < on[3] <= 4
    # Audio untouched — video pays first.
    assert on[4] == 0
    # The loop closed in both directions: degrades AND recovery upgrades.
    assert on[5] > 0 and on[6] > 0
    # Fixed quality never grades.
    assert off[5] == 0 and off[6] == 0
    # Recovery: the video grade trajectory comes back up after the epoch.
    r_on = results[True]
    v_traj = r_on.grade_trajectories.get("V", [])
    assert v_traj, "video grade trajectory missing"
    worst = max(g for _, g in v_traj)
    final = v_traj[-1][1]
    assert final < worst, "grade should recover after the epoch"
