"""Known-bad: live tracer captured across a Process(target=...) fork."""

import multiprocessing as mp


def worker(tracer, n):
    if tracer.enabled:
        tracer.emit(0.0, "shard.exit", shard=n, attempt=1, wall_s=0.0)


def launch(tracer):
    proc = mp.Process(target=worker, args=(tracer, 1))  # line 12
    proc.start()
    return proc
