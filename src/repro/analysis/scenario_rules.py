"""Whole-scenario static analysis over parsed HML documents.

:mod:`repro.hml.validate` checks per-node constraints (ids unique,
times sane). This module checks what only the *whole* scenario — or a
whole multi-document scenario set — can reveal, ahead of any byte
streaming:

``scenario-sync-interval``
    AU_VI sync-group members must occupy one coincident, positive
    interval: "the two media should start and stop playing at the
    same time" (§3.1). Fires on diverging starts/ends, negative or
    zero-length intervals, and open-ended members paired with bounded
    ones.

``scenario-link-window``
    A timed ``HLINK AT t`` must fire inside its anchor document's
    active interval ``[0, scenario_end]``: a link timed after the last
    media ends leaves the presentation idling with nothing driving the
    clock; ``t`` before the end is the (legal) early-cut authoring
    choice and only warns.

``scenario-link-dangling``
    Every hyperlink target must resolve inside the scenario set.
    Errors in *closed* sets (the authored universe is complete —
    e.g. a Hermes course); warns in open sets where targets may live
    on servers outside the analyzed corpus.

``scenario-bandwidth``
    Static bandwidth feasibility: the worst-case concurrent-bandwidth
    step function (codec best-grade rates from
    :func:`repro.media.encodings.default_registry` over playout
    intervals) must fit the declared access capacity. This is the
    authoring-time mirror of the flow scheduler's admission charge:
    :meth:`FlowScenario.peak_rate_bps` computes the identical peak at
    grade 0, so the static verdict and the runtime admission decision
    agree by construction. If only quality-grade degradation (every
    gradable stream at its ladder's bottom rung) makes the peak fit,
    the finding downgrades to a warning — admission would still admit
    the session, negotiated down toward its floor.
"""

from __future__ import annotations

from collections.abc import Iterator

from dataclasses import dataclass, field

from repro.analysis.diagnostics import (
    Diagnostic,
    RuleRegistry,
    Severity,
    SourceSpan,
)
from repro.hml.ast import HmlDocument, HyperLink
from repro.media.encodings import CodecRegistry, default_registry
from repro.model.sync import PlayoutEntry, build_playout_schedule

__all__ = [
    "SCENARIO_RULES",
    "ScenarioSet",
    "ScenarioContext",
    "BandwidthVerdict",
    "bandwidth_profile",
    "check_bandwidth",
    "analyze_document",
    "analyze_set",
]

SCENARIO_RULES = RuleRegistry("scenario")


@dataclass(slots=True)
class ScenarioSet:
    """A named collection of documents analyzed as one scenario.

    ``closed=True`` asserts the set is the complete authored universe
    (every link target must resolve inside it); open sets only warn on
    unresolved targets. ``capacity_bps`` declares the access-link /
    admission capacity the bandwidth-feasibility pass checks against
    (``None`` skips the pass).
    """

    name: str
    documents: dict[str, HmlDocument] = field(default_factory=dict)
    closed: bool = False
    capacity_bps: float | None = None

    def resolves(self, link: HyperLink) -> bool:
        """Does ``link`` point at a document of this set?

        Both the full ``host:doc`` form and the bare document name
        resolve (cross-host targets name the document on the remote
        server; the set holds documents from every host it spans).
        """
        return (link.target in self.documents
                or link.target_document in self.documents)


@dataclass(slots=True)
class ScenarioContext:
    """What one rule invocation sees: a document inside its set."""

    doc_name: str
    document: HmlDocument
    scenario_set: ScenarioSet
    codecs: CodecRegistry
    schedule: list[PlayoutEntry] = field(default_factory=list)

    def span(self, detail: str = "") -> SourceSpan:
        return SourceSpan(file=self.doc_name, snippet=detail)


# ---------------------------------------------------------------- sync
def _interval_repr(entry: PlayoutEntry) -> str:
    end = "open" if entry.end_time is None else f"{entry.end_time:g}"
    return f"[{entry.start_time:g}, {end})"


@SCENARIO_RULES.rule(
    "scenario-sync-interval",
    "AU_VI sync-group members must share one coincident, positive "
    "playout interval",
)
def _check_sync_intervals(ctx: ScenarioContext) -> Iterator[Diagnostic]:
    groups: dict[str, list[PlayoutEntry]] = {}
    for entry in ctx.schedule:
        if entry.sync_group:
            groups.setdefault(entry.sync_group, []).append(entry)
    for group_name in sorted(groups):
        members = groups[group_name]
        anchor = members[0]
        for entry in members:
            if entry.duration is not None and entry.duration <= 0:
                yield Diagnostic(
                    "", Severity.ERROR,
                    f"sync group {group_name!r}: member "
                    f"{entry.stream_id!r} has a non-positive interval "
                    f"{_interval_repr(entry)}",
                    span=ctx.span(), subject=ctx.doc_name,
                )
        starts = {e.start_time for e in members}
        ends = {e.end_time for e in members}
        if len(starts) > 1 or len(ends) > 1:
            detail = ", ".join(
                f"{e.stream_id}={_interval_repr(e)}"
                for e in sorted(members, key=lambda m: m.stream_id)
            )
            yield Diagnostic(
                "", Severity.ERROR,
                f"sync group {group_name!r}: member intervals diverge "
                f"({detail}); synchronized media must start and stop "
                "together",
                span=ctx.span(), subject=ctx.doc_name,
            )


# ---------------------------------------------------------------- links
def _scenario_end(schedule: list[PlayoutEntry]) -> float | None:
    """Latest known media end; None when any entry is open-ended."""
    ends: list[float] = []
    for entry in schedule:
        if entry.end_time is None:
            return None
        ends.append(entry.end_time)
    return max(ends) if ends else 0.0


@SCENARIO_RULES.rule(
    "scenario-link-window",
    "a timed HLINK must fire inside the document's active interval",
)
def _check_link_window(ctx: ScenarioContext) -> Iterator[Diagnostic]:
    end = _scenario_end(ctx.schedule)
    for link in ctx.document.hyperlinks():
        if link.at_time is None:
            continue
        if link.at_time < 0:
            yield Diagnostic(
                "", Severity.ERROR,
                f"timed link to {link.target!r} fires at "
                f"{link.at_time:g}s, before the document starts",
                span=ctx.span(), subject=ctx.doc_name,
            )
        elif end is not None and link.at_time > end:
            yield Diagnostic(
                "", Severity.ERROR,
                f"timed link to {link.target!r} fires at "
                f"{link.at_time:g}s, outside the document's active "
                f"interval [0, {end:g}]: the presentation idles for "
                f"{link.at_time - end:g}s with no media playing",
                span=ctx.span(), subject=ctx.doc_name,
            )
        elif end is not None and link.at_time < end:
            yield Diagnostic(
                "", Severity.WARNING,
                f"timed link to {link.target!r} fires at "
                f"{link.at_time:g}s and cuts the presentation short "
                f"(last media ends at {end:g}s)",
                span=ctx.span(), subject=ctx.doc_name,
            )


@SCENARIO_RULES.rule(
    "scenario-link-dangling",
    "hyperlink targets must resolve inside the scenario set",
)
def _check_link_dangling(ctx: ScenarioContext) -> Iterator[Diagnostic]:
    severity = (Severity.ERROR if ctx.scenario_set.closed
                else Severity.WARNING)
    qualifier = "closed" if ctx.scenario_set.closed else "open"
    for link in ctx.document.hyperlinks():
        if not link.target.strip():
            continue  # validate_document already errors on empty targets
        if not ctx.scenario_set.resolves(link):
            yield Diagnostic(
                "", severity,
                f"link target {link.target!r} does not resolve in the "
                f"{qualifier} scenario set {ctx.scenario_set.name!r} "
                f"({len(ctx.scenario_set.documents)} document(s))",
                span=ctx.span(), subject=ctx.doc_name,
            )


# ------------------------------------------------------------ bandwidth
@dataclass(frozen=True, slots=True)
class BandwidthVerdict:
    """Result of the static bandwidth-feasibility pass.

    ``steps`` is the worst-case concurrent-bandwidth step function as
    ``(time_s, total_bps)`` breakpoints at codec best grades;
    ``degraded_peak_bps`` re-evaluates the peak with every gradable
    stream at its ladder's bottom rung (the admission floor).
    """

    peak_bps: float
    peak_time_s: float
    degraded_peak_bps: float
    capacity_bps: float | None
    steps: tuple[tuple[float, float], ...]

    @property
    def feasible(self) -> bool:
        return (self.capacity_bps is None
                or self.peak_bps <= self.capacity_bps)

    @property
    def feasible_degraded(self) -> bool:
        return (self.capacity_bps is None
                or self.degraded_peak_bps <= self.capacity_bps)


def _stream_rates(entry: PlayoutEntry,
                  codecs: CodecRegistry) -> tuple[float, float]:
    """(best-grade, bottom-rung) send rates for one schedule entry."""
    if not entry.media_type.is_continuous:
        return 0.0, 0.0
    codec = codecs.default_for(entry.media_type)
    best = float(codec.best.bitrate_bps)
    floor = float(codec.worst.bitrate_bps) if codec.gradable else best
    return best, floor


def bandwidth_profile(
    schedule: list[PlayoutEntry],
    codecs: CodecRegistry | None = None,
    degraded: bool = False,
) -> list[tuple[float, float]]:
    """Concurrent-bandwidth step function over the playout schedule.

    Mirrors :meth:`FlowScenario.peak_rate_bps`: continuous streams
    charge their nominal codec rate over ``[start, start+duration)``;
    open-ended streams are charged from start to the scenario horizon
    (conservatively: they never release bandwidth).
    """
    registry = codecs if codecs is not None else default_registry()
    deltas: list[tuple[float, float]] = []
    for entry in schedule:
        best, floor = _stream_rates(entry, registry)
        rate = floor if degraded else best
        if rate <= 0:
            continue
        deltas.append((entry.start_time, rate))
        if entry.end_time is not None:
            deltas.append((entry.end_time, -rate))
    deltas.sort()
    steps: list[tuple[float, float]] = []
    current = 0.0
    for t, delta in deltas:
        current += delta
        if steps and steps[-1][0] == t:
            steps[-1] = (t, current)
        else:
            steps.append((t, current))
    return steps


def check_bandwidth(
    schedule: list[PlayoutEntry],
    capacity_bps: float | None,
    codecs: CodecRegistry | None = None,
) -> BandwidthVerdict:
    """Evaluate static feasibility of a playout schedule."""
    registry = codecs if codecs is not None else default_registry()
    steps = bandwidth_profile(schedule, registry)
    peak_t, peak = 0.0, 0.0
    for t, rate in steps:
        if rate > peak:
            peak_t, peak = t, rate
    degraded_steps = bandwidth_profile(schedule, registry, degraded=True)
    degraded_peak = max((r for _, r in degraded_steps), default=0.0)
    return BandwidthVerdict(
        peak_bps=peak, peak_time_s=peak_t,
        degraded_peak_bps=degraded_peak, capacity_bps=capacity_bps,
        steps=tuple(steps),
    )


@SCENARIO_RULES.rule(
    "scenario-bandwidth",
    "worst-case concurrent bandwidth must fit the declared capacity",
)
def _check_bandwidth_rule(ctx: ScenarioContext) -> Iterator[Diagnostic]:
    capacity = ctx.scenario_set.capacity_bps
    if capacity is None:
        return
    verdict = check_bandwidth(ctx.schedule, capacity, ctx.codecs)
    if verdict.feasible:
        return
    where = (f"peak {verdict.peak_bps / 1e6:.2f} Mb/s at "
             f"t={verdict.peak_time_s:g}s exceeds the declared "
             f"capacity {capacity / 1e6:.2f} Mb/s")
    if verdict.feasible_degraded:
        yield Diagnostic(
            "", Severity.WARNING,
            f"{where}; feasible only with quality degradation "
            f"(bottom-rung peak {verdict.degraded_peak_bps / 1e6:.2f} "
            "Mb/s) — admission would negotiate the session down",
            span=ctx.span(), subject=ctx.doc_name,
        )
    else:
        yield Diagnostic(
            "", Severity.ERROR,
            f"{where}; infeasible even with every stream degraded to "
            f"its bottom rung ({verdict.degraded_peak_bps / 1e6:.2f} "
            "Mb/s) — admission would reject this scenario",
            span=ctx.span(), subject=ctx.doc_name,
        )


# ---------------------------------------------------------------- entry
def analyze_document(
    doc_name: str,
    document: HmlDocument,
    scenario_set: ScenarioSet | None = None,
    codecs: CodecRegistry | None = None,
) -> list[Diagnostic]:
    """Run every scenario rule over one document.

    ``scenario_set=None`` analyzes the document as a singleton open
    set (link resolution warns rather than errors).
    """
    sset = scenario_set if scenario_set is not None else ScenarioSet(
        name=doc_name, documents={doc_name: document})
    ctx = ScenarioContext(
        doc_name=doc_name, document=document, scenario_set=sset,
        codecs=codecs if codecs is not None else default_registry(),
        schedule=build_playout_schedule(document),
    )
    return SCENARIO_RULES.run(ctx)


def analyze_set(scenario_set: ScenarioSet,
                codecs: CodecRegistry | None = None) -> list[Diagnostic]:
    """Run every scenario rule over every document of a set."""
    registry = codecs if codecs is not None else default_registry()
    out: list[Diagnostic] = []
    for doc_name in sorted(scenario_set.documents):
        out.extend(analyze_document(
            doc_name, scenario_set.documents[doc_name],
            scenario_set=scenario_set, codecs=registry,
        ))
    return out
