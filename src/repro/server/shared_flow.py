"""Server-side delivery batching: one egress flow per hot object.

When many viewers request the same hot scenario at once, per-session
unicast sends the identical frame sequence once per viewer over the
origin's egress link. The :class:`SharedFlowManager` merges those
requests: the first request opens a *batch* that stays open for a
short window; every request for the same (media server, object,
fan-out point) joins it; then exactly one master flow starts. The
master pulls frames from a single seeded
:class:`~repro.media.traces.FrameSource` at the origin and ships each
frame **once** as a carrier packet to the fan-out router (the
viewers' POP, or the core router), where a per-subscriber
:class:`~repro.rtp.session.RtpSender` packetizes it onward. Each
viewer keeps its own SSRC, RTP sequence space and session
attribution, so the client-side receivers, QoE scoring and loss
accounting are byte-for-byte oblivious to the sharing.

Modelling notes / limitations:

* The batch window delays the batch's streams by at most
  ``batch_window_s``; keep it below the flow lead so the wait lands
  in the client's prefill buffer, not in playout gaps.
* The quality converter is shared: a grading decision by any
  subscriber's Server QoS Manager regrades the whole flow (shared
  delivery means shared quality, as in any broadcast scheme).
* Per-session pause gates do not stop a shared flow — a paused viewer
  simply discards what keeps arriving (documented trade-off).
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.des import Event, Simulator
from repro.media.types import Frame
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.rtp.session import RtpSender
from repro.server.media_server import MediaServer
from repro.server.quality_converter import MediaStreamQualityConverter

__all__ = ["SharedFlowManager", "SharedFlow", "FlowSubscriber"]

#: carrier/fan-out transmission ports, above every allocator range so
#: they never collide with control/rtcp/media allocations
_relay_ports = itertools.count(80_000)

#: per-packet overhead of the origin→POP carrier encapsulation
CARRIER_HEADER_BYTES = 12


class FlowSubscriber:
    """One viewer's leg of a shared flow."""

    def __init__(
        self,
        session_id: str,
        stream_id: str,
        client_node: str,
        client_port: int,
        ssrc: int,
    ) -> None:
        self.session_id = session_id
        self.stream_id = stream_id
        self.client_node = client_node
        self.client_port = client_port
        self.ssrc = ssrc
        #: created when the flow starts (fan-out node side)
        self.sender: RtpSender | None = None

    def close(self) -> None:
        if self.sender is not None:
            self.sender.close()
            self.sender = None


class SharedFlow:
    """One batched delivery: a master source fanned out at a router."""

    def __init__(
        self,
        manager: "SharedFlowManager",
        ms: MediaServer,
        object_path: str,
        stream_id: str,
        fanout_node: str,
        duration_s: float,
        send_offset_s: float,
        initial_grade: int,
        floor_grade: int,
        allow_suspend: bool,
    ) -> None:
        self.manager = manager
        self.sim: Simulator = manager.sim
        self.network: Network = manager.network
        self.ms = ms
        self.object_path = object_path
        self.stream_id = stream_id
        self.fanout_node = fanout_node
        self.duration_s = duration_s
        self.send_offset_s = send_offset_s
        self.subscribers: list[FlowSubscriber] = []
        self.started = False
        self.frames_sent = 0
        self.carrier_packets = 0
        self.finished: Event = self.sim.event()
        source = ms.store.frame_source(object_path,
                                       grade_index=initial_grade)
        source.stream_id = stream_id
        self.converter = MediaStreamQualityConverter(
            source, floor_grade=floor_grade, allow_suspend=allow_suspend
        )
        self.source = source
        self._relay_port = next(_relay_ports)
        self._process = None

    @property
    def key(self) -> tuple:
        return (self.ms.name, self.object_path, self.fanout_node,
                self.send_offset_s, self.duration_s)

    def add_subscriber(self, sub: FlowSubscriber) -> None:
        if self.started:
            raise RuntimeError(
                f"shared flow {self.stream_id!r} already started"
            )
        self.subscribers.append(sub)

    # -- delivery ----------------------------------------------------------
    def start(self) -> None:
        """Close the batch and begin the master transmission."""
        if self.started or not self.subscribers:
            return
        self.started = True
        self.network.node(self.fanout_node).bind(
            self._relay_port, self._fan_out
        )
        for sub in self.subscribers:
            codec = self.ms.store.codec_for(self.object_path)
            sub.sender = RtpSender(
                self.network, self.fanout_node, next(_relay_ports),
                sub.client_node, sub.client_port,
                ssrc=sub.ssrc, payload_type=codec.payload_type,
                clock_rate=codec.clock_rate, stream_id=sub.stream_id,
                session=sub.session_id,
            )
        self._process = self.sim.process(
            self._run(), name=f"sflow:{self.stream_id}:{self.fanout_node}"
        )
        if self.sim._tracing:
            self.sim._tracer.emit(
                self.sim.now, "sflow.start", self.stream_id,
                node=self.ms.node_id, fanout=self.fanout_node,
                subscribers=len(self.subscribers),
            )
            metrics = getattr(self.sim._tracer, "metrics", None)
            if metrics is not None:
                metrics.histogram("shared_flow_batch_size").observe(
                    len(self.subscribers)
                )

    def _run(self):
        sim = self.sim
        if self.send_offset_s > 0:
            yield sim.timeout(self.send_offset_s)
        while self.source.media_time_s < self.duration_s - 1e-9:
            interval = self.source.frame_interval_s
            frame = self.source.next_frame()
            if frame is not None:
                self._send_carrier(frame)
                self.frames_sent += 1
            yield sim.timeout(interval)
        if sim._tracing:
            sim._tracer.emit(
                sim.now, "sflow.finish", self.stream_id,
                node=self.ms.node_id, fanout=self.fanout_node,
                frames=self.frames_sent,
                carrier_packets=self.carrier_packets,
            )
        self.finished.succeed(self.frames_sent)
        self._teardown()

    def _send_carrier(self, frame: Frame) -> None:
        """Ship one frame origin → fan-out router, exactly once."""
        if self.ms.node_id == self.fanout_node:
            # Degenerate placement (media server on the fan-out node):
            # skip the network leg and fan out directly.
            self._fan_out_frame(frame)
            return
        pkt = Packet(
            src=self.ms.node_id,
            dst=self.fanout_node,
            size_bytes=frame.size_bytes + CARRIER_HEADER_BYTES,
            protocol="SFLOW",
            flow_id=f"sflow:{self.stream_id}",
            dst_port=self._relay_port,
            payload=frame,
            seq=frame.seq,
            frame_seq=frame.seq,
        )
        self.carrier_packets += 1
        if self.sim._tracing_detail:
            self.sim._tracer.emit(
                self.sim.now, "sflow.carrier", self.stream_id,
                node=self.ms.node_id, seq=frame.seq,
                bytes=pkt.size_bytes,
            )
        self.network.send(pkt)

    def _fan_out(self, pkt: Packet) -> None:
        frame = pkt.payload
        if isinstance(frame, Frame):
            self._fan_out_frame(frame)

    def _fan_out_frame(self, frame: Frame) -> None:
        for sub in self.subscribers:
            if sub.sender is not None:
                sub.sender.send_frame(frame)

    # -- teardown ----------------------------------------------------------
    def _teardown(self) -> None:
        self.network.node(self.fanout_node).unbind(self._relay_port)
        for sub in self.subscribers:
            sub.close()
        self.manager._flow_done(self)

    def drop_session(self, session_id: str) -> None:
        """Detach one viewer; the last one stops the master."""
        keep = [s for s in self.subscribers if s.session_id != session_id]
        if len(keep) == len(self.subscribers):
            return
        for sub in self.subscribers:
            if sub.session_id == session_id:
                sub.close()
        self.subscribers = keep
        if self.started and not keep and self._process is not None:
            if self._process.is_alive:
                self._process.interrupt("no subscribers left")
            self.network.node(self.fanout_node).unbind(self._relay_port)
            self.manager._flow_done(self)


class SharedFlowManager:
    """Batches same-object requests into shared egress flows."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        fanout_node_for: Callable[[str], str],
        batch_window_s: float = 0.25,
    ) -> None:
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        self.sim = sim
        self.network = network
        self.fanout_node_for = fanout_node_for
        self.batch_window_s = batch_window_s
        #: flow key -> batch still accepting joiners
        self._open: dict[tuple, SharedFlow] = {}
        #: every flow currently transmitting
        self._active: list[SharedFlow] = []
        self.flows_started = 0
        self.joins = 0

    def subscribe(
        self,
        ms: MediaServer,
        *,
        session_id: str,
        stream_id: str,
        object_path: str,
        client_node: str,
        client_port: int,
        duration_s: float,
        send_offset_s: float = 0.0,
        initial_grade: int = 0,
        floor_grade: int = 99,
        allow_suspend: bool = True,
        ssrc: int = 0,
    ) -> MediaStreamQualityConverter:
        """Join (or open) the batch for one hot object.

        Returns the flow's shared quality converter, which the caller
        registers with the session's Server QoS Manager exactly like a
        per-session stream's converter.
        """
        if ms.failed:
            raise RuntimeError(f"media server {ms.name!r} is down")
        fanout = self.fanout_node_for(client_node)
        key = (ms.name, object_path, fanout, send_offset_s, duration_s)
        flow = self._open.get(key)
        opened = flow is None
        if flow is None:
            flow = SharedFlow(
                self, ms, object_path, stream_id, fanout,
                duration_s, send_offset_s, initial_grade, floor_grade,
                allow_suspend,
            )
            self._open[key] = flow
            self._active.append(flow)
            self.flows_started += 1
            self.sim.call_later(self.batch_window_s,
                                lambda: self._close_batch(key))
        flow.add_subscriber(FlowSubscriber(
            session_id, stream_id, client_node, client_port, ssrc
        ))
        self.joins += 1
        if self.sim._tracing:
            self.sim._tracer.emit(
                self.sim.now, "sflow.open" if opened else "sflow.join",
                stream_id, session=session_id, node=fanout,
                media=ms.name, path=object_path,
            )
            metrics = getattr(self.sim._tracer, "metrics", None)
            if metrics is not None:
                metrics.counter("shared_flow_joins", media=ms.name).inc()
        return flow.converter

    def _close_batch(self, key: tuple) -> None:
        flow = self._open.pop(key, None)
        if flow is not None:
            flow.start()

    def _flow_done(self, flow: SharedFlow) -> None:
        if flow in self._active:
            self._active.remove(flow)

    def stop_session(self, session_id: str) -> None:
        """Drop a departing session from every flow it rides."""
        for flow in list(self._active):
            flow.drop_session(session_id)

    def active_flows(self) -> list[SharedFlow]:
        return list(self._active)
