"""RTP and RTCP packet structures.

These are the header fields the paper enumerates for RTP data packets
("a timestamp ... packet sequencing information ... the packet's data
payload type") and RTCP receiver reports ("packet's transmission
delay, delay jitter and packet loss").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "RTP_HEADER_BYTES",
    "RTCP_RR_BYTES",
    "SEQ_MODULUS",
    "RtpPacket",
    "RtcpSenderReport",
    "RtcpReceiverReport",
]

RTP_HEADER_BYTES = 12
RTCP_RR_BYTES = 52
#: RTP sequence numbers are 16-bit and wrap.
SEQ_MODULUS = 1 << 16


@dataclass(frozen=True, slots=True)
class RtpPacket:
    """One RTP datagram (possibly a fragment of a media frame).

    ``timestamp`` is in media clock ticks; all fragments of one frame
    share it. ``marker`` is set on the final fragment of a frame
    (standard RTP video usage).
    """

    ssrc: int
    payload_type: int
    seq: int
    timestamp: int
    marker: bool
    payload_bytes: int
    fragment_index: int = 0
    fragment_count: int = 1
    frame: Any = None  # carried on the last fragment only

    def __post_init__(self) -> None:
        if not (0 <= self.seq < SEQ_MODULUS):
            raise ValueError(f"seq must be in [0, {SEQ_MODULUS}), got {self.seq}")
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if not (0 <= self.fragment_index < self.fragment_count):
            raise ValueError("fragment_index out of range")

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes + RTP_HEADER_BYTES


@dataclass(frozen=True, slots=True)
class RtcpSenderReport:
    """Sender report: what the source has emitted so far."""

    ssrc: int
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    sent_at: float


@dataclass(frozen=True, slots=True)
class RtcpReceiverReport:
    """Receiver report fed back to the Server QoS Manager.

    ``fraction_lost`` covers the interval since the previous report;
    ``cumulative_lost`` is connection lifetime. ``mean_delay_s`` and
    ``jitter_s`` are the receiver's current estimates (simulated
    clocks are synchronized, so one-way delay is directly
    observable — a luxury the 1996 testbed approximated from RTCP
    round trips).
    """

    ssrc: int
    stream_id: str
    fraction_lost: float
    cumulative_lost: int
    highest_seq: int
    jitter_s: float
    mean_delay_s: float
    interval_received: int
    sent_at: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction_lost <= 1.0):
            raise ValueError("fraction_lost must be in [0, 1]")
