"""The multimedia server (§2, §4).

Holds the multimedia database (presentation scenarios + topics),
performs authentication/subscription against the service-wide account
registry, runs admission control, computes flow scenarios and
activates the media servers attached to it. The application protocol
(connect / request / suspend / search — Figure 4) is driven by
:mod:`repro.service.session`; this class is the server-side engine it
calls into.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des import Simulator
from repro.media.encodings import CodecRegistry
from repro.model.scenario import PresentationScenario
from repro.server.accounts import AccountRegistry, UserAccount
from repro.server.broadcast import HotSet
from repro.server.admission import (
    AdmissionController,
    AdmissionRequest,
    AdmissionResult,
)
from repro.server.database import MultimediaDatabase, StoredDocument
from repro.server.flow_scheduler import FlowScenario, FlowScheduler
from repro.server.media_server import MediaServer
from repro.server.qos_manager import GradingPolicy, ServerQoSManager

__all__ = ["MultimediaServer", "ServedSession"]


@dataclass(slots=True)
class ServedSession:
    """Server-side state of one admitted client session."""

    session_id: str
    user: UserAccount
    reserved_bw_bps: float
    qos_manager: ServerQoSManager
    active_document: str | None = None
    flow: FlowScenario | None = None
    started_at: float = 0.0
    #: granted/requested bandwidth (< 1 when admission negotiated the
    #: connection down to a lower quality, §4)
    grant_ratio: float = 1.0


class MultimediaServer:
    """One service server: scenarios, accounts, admission, flows."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node_id: str,
        database: MultimediaDatabase,
        accounts: AccountRegistry,
        codecs: CodecRegistry,
        media_servers: dict[str, MediaServer],
        admission: AdmissionController | None = None,
        grading_policy: GradingPolicy | None = None,
        description: str = "",
    ) -> None:
        self.sim = sim
        self.name = name
        self.node_id = node_id
        self.database = database
        self.accounts = accounts
        self.codecs = codecs
        self.media_servers = dict(media_servers)
        self.admission = admission if admission is not None \
            else AdmissionController(capacity_bps=100e6)
        self.grading_policy = grading_policy
        self.description = description
        self.flow_scheduler = FlowScheduler(codecs)
        self.sessions: dict[str, ServedSession] = {}
        #: other servers of the service, for query forwarding (§6.2.2)
        self.peers: dict[str, "MultimediaServer"] = {}
        #: media-server name -> standby replicas, in failover preference
        #: order (first healthy one wins)
        self.replicas: dict[str, list[MediaServer]] = {}
        #: session_id -> live server-side protocol handler, registered
        #: by ServerSessionHandler so recovery can notify clients
        self.session_handlers: dict[str, object] = {}
        #: client node -> region name, wired by the engine when the
        #: topology is region-aware; drives edge-replica placement
        self.region_resolver = None
        #: shared-flow delivery batching (None = per-session flows)
        self.shared_flows = None
        #: demand counter over document requests; its top-k is the
        #: candidate set for periodic-broadcast delivery
        self.hot = HotSet()

    # -- service topology -------------------------------------------------
    def add_peer(self, server: "MultimediaServer") -> None:
        if server.name == self.name:
            raise ValueError("a server cannot peer with itself")
        self.peers[server.name] = server

    def media_server(self, name: str) -> MediaServer:
        try:
            return self.media_servers[name]
        except KeyError:
            raise KeyError(
                f"server {self.name!r} has no media server {name!r}"
            ) from None

    def add_replica(self, primary_name: str, replica: MediaServer) -> None:
        """Register a standby media server for ``primary_name``.

        The replica shares the primary's store contents (same catalog),
        so it can resume any of the primary's streams after a crash.
        """
        self.media_server(primary_name)  # validate the primary exists
        self.replicas.setdefault(primary_name, []).append(replica)

    def all_media_servers(self) -> list[MediaServer]:
        """Primaries followed by replicas, in stable order."""
        servers = list(self.media_servers.values())
        for name in self.media_servers:
            servers.extend(self.replicas.get(name, []))
        return servers

    def healthy_media_server(
        self, name: str, client_node: str | None = None
    ) -> MediaServer | None:
        """The serving media server for ``name``, or None.

        This is the indirection every serving path goes through, both
        for placement and under faults. Candidate order:

        * without region information (no resolver, or no
          ``client_node``): the primary, then its standbys — the
          classic failover preference;
        * with a region-aware topology: the client's *regional
          replica* first (sessions land on their region's edge), then
          the primary (origin) as the failover target, then the
          remaining replicas.

        The first healthy candidate wins; None means nobody can serve.
        """
        primary = self.media_servers.get(name)
        standbys = self.replicas.get(name, [])
        candidates: list[MediaServer] = (
            [primary] if primary is not None else []
        ) + list(standbys)
        if self.region_resolver is not None and client_node is not None:
            region = self.region_resolver(client_node)
            if region is not None:
                regional = [ms for ms in standbys if ms.region == region]
                rest = [ms for ms in candidates if ms not in regional]
                candidates = regional + rest
        for ms in candidates:
            if not ms.failed:
                return ms
        return None

    # -- connection admission (§4) -------------------------------------------
    def connect(
        self,
        session_id: str,
        user: UserAccount,
        required_bw_bps: float,
        min_bw_bps: float | None = None,
    ) -> tuple[AdmissionResult, ServedSession | None]:
        result = self.admission.decide(
            AdmissionRequest(
                session_id=session_id,
                user_id=user.user_id,
                contract=user.contract,
                required_bw_bps=required_bw_bps,
                min_bw_bps=min_bw_bps,
            )
        )
        if self.sim._tracing:
            kind = ("admission.accept" if result.admitted
                    else "admission.block")
            self.sim._tracer.emit(
                self.sim.now, kind, self.name, session=session_id,
                contract=user.contract.name, required_bps=required_bw_bps,
                reserved_bps=result.reserved_bw_bps,
            )
        if not result.admitted:
            return result, None
        session = ServedSession(
            session_id=session_id,
            user=user,
            reserved_bw_bps=result.reserved_bw_bps,
            qos_manager=ServerQoSManager(self.sim, self.grading_policy,
                                         session_id=session_id),
            started_at=self.sim.now,
            grant_ratio=result.grant_ratio,
        )
        self.sessions[session_id] = session
        user.log("login", self.sim.now, self.name)
        return result, session

    def disconnect(self, session_id: str) -> float:
        """Close a session; returns the pricing charge."""
        session = self.sessions.pop(session_id, None)
        if session is None:
            return 0.0
        self.admission.release(session_id)
        for ms in self.media_servers.values():
            ms.stop_session(session_id)
        for standbys in self.replicas.values():
            for ms in standbys:
                ms.stop_session(session_id)
        if self.shared_flows is not None:
            self.shared_flows.stop_session(session_id)
        minutes = (self.sim.now - session.started_at) / 60.0
        charge = self.accounts.charge_session(session.user.user_id, minutes)
        session.user.log("logout", self.sim.now, self.name)
        return charge

    # -- document service ---------------------------------------------------------
    def topics(self) -> list[str]:
        return self.database.topics()

    def list_documents(self, topic: str | None = None) -> list[str]:
        if topic is None:
            return self.database.names()
        return self.database.by_topic(topic)

    def fetch_document(self, session_id: str, name: str) -> StoredDocument:
        session = self.sessions.get(session_id)
        if session is None:
            raise PermissionError(f"no admitted session {session_id!r}")
        stored = self.database.get(name)
        session.active_document = name
        session.user.log("retrieve", self.sim.now, name)
        self.hot.record(name)
        return stored

    def plan_flows(self, session_id: str, name: str,
                   lead_s: float = 1.0) -> FlowScenario:
        """Compute the flow scenario for a requested document.

        A negotiated (partially admitted) session starts its streams
        at a grade whose rate fits the granted bandwidth.
        """
        session = self.sessions.get(session_id)
        if session is None:
            raise PermissionError(f"no admitted session {session_id!r}")
        stored = self.database.get(name)
        scenario = PresentationScenario.from_document(stored.document)
        initial_grade = 0
        if session.grant_ratio < 1.0:
            from repro.media.types import MediaType

            video = self.codecs.default_for(MediaType.VIDEO)
            initial_grade = FlowScheduler.grade_for_ratio(
                video, session.grant_ratio
            )
        flow = self.flow_scheduler.compute(
            scenario, lead_s=lead_s, prefs=session.user.qos,
            initial_grade=initial_grade,
        )
        session.flow = flow
        if self.sim._tracing:
            self.sim._tracer.emit(
                self.sim.now, "flow.plan", name, session=session_id,
                node=self.node_id, flows=len(flow.flows),
                initial_grade=initial_grade,
            )
            for item in flow.flows:
                self.sim._tracer.emit(
                    self.sim.now, "flow.schedule", item.stream_id,
                    session=session_id,
                    media=item.media_type.name.lower(),
                    send_offset_s=item.send_offset_s,
                    grade=item.initial_grade,
                )
        return flow

    def locate_document(self, name: str) -> str | None:
        """Which server of the service stores ``name``?

        "For every associated document, the server where this
        document is stored is specified" (§5): the contacted server
        resolves locations across its peers so the client can be
        redirected (and switch connections) when the document lives
        elsewhere.
        """
        if name in self.database:
            return self.name
        for peer in self.peers.values():
            if name in peer.database:
                return peer.name
        return None

    # -- distributed search (§6.2.2) --------------------------------------------
    def search(self, token: str, forward: bool = True) -> dict[str, list[str]]:
        """Search this server and (optionally) every peer.

        Returns {server_name: [matching document names]}; only servers
        with matches appear — "only the lessons which contain the item
        of interest and the server location are transmitted".
        """
        results: dict[str, list[str]] = {}
        own = self.database.search(token)
        if own:
            results[self.name] = own
        if forward:
            for peer in self.peers.values():
                theirs = peer.database.search(token)
                if theirs:
                    results[peer.name] = theirs
        return results
