"""Allen interval algebra over playout entries.

The paper's synchronization model builds on the interval-based
conceptual models of [LIT 90, LIT 93] (Little & Ghafoor): temporal
relationships among media objects are interval relations. This module
implements Allen's thirteen relations and classifies the pairwise
relations of a playout schedule — used by authoring tools to explain
a scenario's temporal structure and by tests as an independent oracle
for the schedule extractor.
"""

from __future__ import annotations

import enum

from repro.model.sync import PlayoutEntry

__all__ = ["AllenRelation", "relation", "inverse", "schedule_relations"]


class AllenRelation(enum.Enum):
    BEFORE = "before"
    MEETS = "meets"
    OVERLAPS = "overlaps"
    STARTS = "starts"
    DURING = "during"
    FINISHES = "finishes"
    EQUAL = "equal"
    # inverses
    AFTER = "after"
    MET_BY = "met-by"
    OVERLAPPED_BY = "overlapped-by"
    STARTED_BY = "started-by"
    CONTAINS = "contains"
    FINISHED_BY = "finished-by"


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
}
_INVERSES.update({v: k for k, v in list(_INVERSES.items())})


def inverse(rel: AllenRelation) -> AllenRelation:
    """The converse relation: relation(y, x) given relation(x, y)."""
    return _INVERSES[rel]


def relation(x_start: float, x_end: float,
             y_start: float, y_end: float,
             eps: float = 1e-9) -> AllenRelation:
    """Allen relation of interval X to interval Y.

    Intervals must be proper (end > start); instants are not modelled
    (the markup requires positive durations).
    """
    if x_end <= x_start or y_end <= y_start:
        raise ValueError("intervals must have positive length")

    def eq(a: float, b: float) -> bool:
        return abs(a - b) <= eps

    if eq(x_start, y_start) and eq(x_end, y_end):
        return AllenRelation.EQUAL
    if eq(x_end, y_start):
        return AllenRelation.MEETS
    if eq(y_end, x_start):
        return AllenRelation.MET_BY
    if x_end < y_start:
        return AllenRelation.BEFORE
    if y_end < x_start:
        return AllenRelation.AFTER
    if eq(x_start, y_start):
        return AllenRelation.STARTS if x_end < y_end \
            else AllenRelation.STARTED_BY
    if eq(x_end, y_end):
        return AllenRelation.FINISHES if x_start > y_start \
            else AllenRelation.FINISHED_BY
    if x_start > y_start and x_end < y_end:
        return AllenRelation.DURING
    if y_start > x_start and y_end < x_end:
        return AllenRelation.CONTAINS
    if x_start < y_start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def schedule_relations(
    entries: list[PlayoutEntry],
) -> dict[tuple[str, str], AllenRelation]:
    """Pairwise Allen relations of a playout schedule.

    Open-ended entries (no duration) are skipped — their intervals
    are unknown until the media's natural end.
    """
    closed = [e for e in entries if e.duration is not None]
    out: dict[tuple[str, str], AllenRelation] = {}
    for i, a in enumerate(closed):
        for b in closed[i + 1:]:
            out[(a.stream_id, b.stream_id)] = relation(
                a.start_time, a.start_time + a.duration,  # type: ignore[arg-type]
                b.start_time, b.start_time + b.duration,  # type: ignore[arg-type]
            )
    return out
