"""Fixture: a deliberate wall-clock read carrying a line pragma."""

import time


def wall_elapsed(t0: float) -> float:
    return time.perf_counter() - t0  # lint: allow(det-wall-clock)
