"""Whole-program call graph and interprocedural determinism taint.

The per-function AST rules in :mod:`repro.analysis.pyrules` catch a
wall-clock read or a global-RNG draw *at the call site*. They cannot
catch the laundered version: a helper reads the wall clock behind a
legitimate ``# lint: allow(det-wall-clock)`` pragma (measurement is
allowed), and three calls later its return value is folded into a
population digest, a merge, or a shard seed — digest-relevant state
that two replays of the same run must agree on.

This module closes that hole:

* :class:`PyProgram` parses a whole tree of modules at once and
  indexes every function/method definition. Program-scoped rule
  families (fork safety, trace schema, taint) take a ``PyProgram``
  where the per-function determinism rules take a ``PyModule``.
* :class:`CallGraph` resolves call expressions to definitions with a
  deliberately conservative strategy: same-module names first, then
  explicit ``from``-imports, then a program-unique bare-name match.
  Unresolvable calls simply end the chain — the pass under-reports
  rather than invent edges.
* The taint engine computes, per function, whether its *return value*
  derives from a nondeterminism source (wall clock, global RNG,
  ``os.environ``), propagates those summaries to a fixpoint over the
  call graph, then flags any **sink** call (``population_digest``,
  ``merge_cell_docs``, ``cell_seed`` ...) whose argument is tainted —
  reporting the full source → helper → sink chain in the diagnostic.

``det-taint`` deliberately ignores ``det-wall-clock`` pragmas: a
pragma says "this read is allowed *here*" (measurement), not "this
value may flow into a digest". Suppressing a taint finding takes a
``# lint: allow(det-taint)`` pragma of its own on the sink line.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.diagnostics import (
    Diagnostic,
    RuleRegistry,
    Severity,
    SourceSpan,
)
from repro.analysis.pyrules import (
    PyModule,
    _NP_GLOBAL_FNS,
    _WALL_CLOCK_CALLS,
    _dotted,
)

__all__ = [
    "TAINT_RULES",
    "FunctionInfo",
    "PyProgram",
    "TaintInfo",
    "load_program",
    "DIGEST_SINKS",
]

TAINT_RULES = RuleRegistry("taint")

#: digest-relevant sinks: canonical hashing, population/cell merging,
#: and shard/cell seed derivation. A nondeterministic value reaching
#: any of these breaks the byte-identical replay guarantee.
DIGEST_SINKS = frozenset({
    "population_digest", "canonical_json", "merged_digest",
    "merge_cell_docs", "merge_population_docs",
    "cell_seed", "shard_seed", "worker_cells", "SeedSequence",
})

#: taint source kinds
SRC_WALL_CLOCK = "wall-clock"
SRC_GLOBAL_RNG = "global-RNG"
SRC_ENVIRON = "os.environ"


@dataclass(frozen=True, slots=True)
class TaintInfo:
    """Provenance of one tainted value: source kind + hop chain."""

    kind: str
    chain: tuple[str, ...]

    def extended(self, hop: str) -> "TaintInfo":
        if hop in self.chain:  # recursion backstop
            return self
        return TaintInfo(self.kind, self.chain + (hop,))


@dataclass(slots=True)
class FunctionInfo:
    """One function/method definition plus its taint summary."""

    name: str
    qualname: str  # "path.py::Class.method" / "path.py::func"
    module: PyModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: taint of the return value, once the fixpoint has run
    returns: TaintInfo | None = None

    def label(self) -> str:
        where = os.path.basename(self.module.path)
        name = (f"{self.class_name}.{self.name}"
                if self.class_name else self.name)
        return f"{name}() [{where}:{self.node.lineno}]"


class PyProgram:
    """A set of parsed modules analyzed as one program.

    ``full`` marks a lint of the complete ``repro`` package (the
    ``--self`` run): program-completeness rules such as the unused
    trace-kind check only make sense there — an ad-hoc file lint
    legitimately emits only a handful of catalogue kinds.
    """

    def __init__(self, modules: list[PyModule], full: bool = False) -> None:
        self.modules = modules
        self.full = full
        #: bare function name -> every definition carrying it
        self.functions: dict[str, list[FunctionInfo]] = {}
        #: (module path, bare name) for module-scope lookups
        self._by_module: dict[tuple[str, str], FunctionInfo] = {}
        #: (module path, class, name) for method lookups
        self._methods: dict[tuple[str, str, str], FunctionInfo] = {}
        for mod in modules:
            self._index_module(mod)

    def _index_module(self, mod: PyModule) -> None:
        class_of: dict[ast.AST, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                for child in ast.walk(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        class_of.setdefault(child, node.name)
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            cls = class_of.get(node)
            qual = (f"{mod.path}::{cls}.{node.name}" if cls
                    else f"{mod.path}::{node.name}")
            info = FunctionInfo(name=node.name, qualname=qual, module=mod,
                                node=node, class_name=cls)
            self.functions.setdefault(node.name, []).append(info)
            if cls is None:
                self._by_module.setdefault((mod.path, node.name), info)
            else:
                self._methods.setdefault((mod.path, cls, node.name), info)

    # -- call resolution ------------------------------------------------
    def resolve_call(self, call: ast.Call, enclosing: FunctionInfo | None,
                     mod: PyModule) -> FunctionInfo | None:
        """Best-effort resolution of a call expression to a definition.

        Unresolvable calls return None (the chain just ends there);
        ambiguous bare names resolve only when the program holds
        exactly one definition of that name.
        """
        func = call.func
        if isinstance(func, ast.Name):
            local = self._by_module.get((mod.path, func.id))
            if local is not None:
                return local
            return self._unique(func.id)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if (isinstance(recv, ast.Name) and recv.id in ("self", "cls")
                    and enclosing is not None
                    and enclosing.class_name is not None):
                method = self._methods.get(
                    (mod.path, enclosing.class_name, func.attr))
                if method is not None:
                    return method
            return self._unique(func.attr)
        return None

    def _unique(self, name: str) -> FunctionInfo | None:
        infos = self.functions.get(name, [])
        return infos[0] if len(infos) == 1 else None

    def callers_of(self, target: FunctionInfo) -> Iterator[
            tuple[PyModule, FunctionInfo | None, ast.Call]]:
        """Every call site in the program that resolves to ``target``."""
        for mod, enclosing, call in self.iter_calls():
            if self.resolve_call(call, enclosing, mod) is target:
                yield mod, enclosing, call

    def iter_calls(self) -> Iterator[
            tuple[PyModule, FunctionInfo | None, ast.Call]]:
        for mod in self.modules:
            enclosing_of = self._enclosing_map(mod)
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call):
                    yield mod, enclosing_of.get(node), node

    def enclosing_function(self, mod: PyModule,
                           node: ast.AST) -> FunctionInfo | None:
        """The FunctionInfo whose body contains ``node`` (innermost)."""
        cur = mod.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for info in self.functions.get(cur.name, []):
                    if info.node is cur:
                        return info
                return None
            cur = mod.parents.get(cur)
        return None

    def _enclosing_map(self, mod: PyModule) -> dict[ast.AST, FunctionInfo]:
        out: dict[ast.AST, FunctionInfo] = {}
        infos = {info.node: info
                 for lst in self.functions.values() for info in lst
                 if info.module is mod}

        def fill(node: ast.AST, cur: FunctionInfo | None) -> None:
            nxt = infos.get(node, cur)
            if nxt is not None:
                out[node] = nxt
            for child in ast.iter_child_nodes(node):
                fill(child, nxt)

        fill(mod.tree, None)
        return out


def load_program(paths: list[str],
                 full: bool = False) -> tuple[PyProgram, list[Diagnostic]]:
    """Parse ``paths`` (files and/or trees) into one PyProgram.

    Unparseable files become ``det-syntax`` diagnostics instead of
    aborting the run, mirroring :func:`repro.analysis.pyrules.lint_source`.
    """
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                files.extend(os.path.join(root, n)
                             for n in sorted(names) if n.endswith(".py"))
        else:
            files.append(path)
    modules: list[PyModule] = []
    problems: list[Diagnostic] = []
    for path in files:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            modules.append(PyModule.parse(path, source))
        except SyntaxError as exc:
            problems.append(Diagnostic(
                "det-syntax", Severity.ERROR,
                f"cannot parse: {exc.msg}",
                span=SourceSpan(file=path, line=exc.lineno or 0),
            ))
    return PyProgram(modules, full=full), problems


# ----------------------------------------------------------- taint engine
def _source_of(call: ast.Call, mod: PyModule) -> TaintInfo | None:
    """TaintInfo if ``call`` is itself a nondeterminism source."""
    name = _dotted(call.func)
    loc = f"{os.path.basename(mod.path)}:{getattr(call, 'lineno', 0)}"
    if name in _WALL_CLOCK_CALLS:
        return TaintInfo(SRC_WALL_CLOCK, (f"{name}() at {loc}",))
    parts = name.split(".")
    if (len(parts) == 3 and parts[1] == "random"
            and parts[0] in ("np", "numpy") and parts[2] in _NP_GLOBAL_FNS):
        return TaintInfo(SRC_GLOBAL_RNG, (f"{name}() at {loc}",))
    if parts[0] == "random" and len(parts) == 2:
        return TaintInfo(SRC_GLOBAL_RNG, (f"{name}() at {loc}",))
    if name in ("os.getenv", "os.environ.get"):
        return TaintInfo(SRC_ENVIRON, (f"{name}() at {loc}",))
    return None


def _environ_read(node: ast.AST) -> bool:
    """``os.environ[...]`` / bare ``os.environ`` read."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute) and _dotted(node) == "os.environ"


class _FunctionTaint:
    """Intra-procedural taint over one function body."""

    def __init__(self, program: PyProgram, info: FunctionInfo) -> None:
        self.program = program
        self.info = info
        self.mod = info.module
        self.tainted: dict[str, TaintInfo] = {}

    def expr_taint(self, node: ast.AST) -> TaintInfo | None:
        """Taint of an expression: direct source, tainted callee
        return, tainted name, or any tainted sub-expression."""
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if _environ_read(node):
            loc = (f"{os.path.basename(self.mod.path)}:"
                   f"{getattr(node, 'lineno', 0)}")
            return TaintInfo(SRC_ENVIRON, (f"os.environ at {loc}",))
        if isinstance(node, ast.Call):
            src = _source_of(node, self.mod)
            if src is not None:
                return src
            callee = self.program.resolve_call(node, self.info, self.mod)
            if callee is not None and callee.returns is not None:
                return callee.returns.extended(callee.label())
            # taint rides through wrappers: round(wall_s), f(x)
            for sub in list(node.args) + [kw.value for kw in node.keywords]:
                t = self.expr_taint(sub)
                if t is not None:
                    return t
            return None
        for child in ast.iter_child_nodes(node):
            t = self.expr_taint(child)
            if t is not None:
                return t
        return None

    def run(self) -> None:
        """Propagate assignment taint to a local fixpoint."""
        body = self.info.node.body
        for _ in range(8):
            before = len(self.tainted)
            for stmt in body:
                self._visit_block(stmt)
            if len(self.tainted) == before:
                break

    def _visit_block(self, stmt: ast.stmt) -> None:
        for node in ast.walk(stmt):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.For):
                targets, value = [node.target], node.iter
            elif (isinstance(node, ast.withitem)
                    and node.optional_vars is not None):
                targets, value = [node.optional_vars], node.context_expr
            if value is None:
                continue
            taint = self.expr_taint(value)
            if taint is None:
                continue
            for target in targets:
                for name in _target_names(target):
                    self.tainted.setdefault(name, taint)

    def return_taint(self) -> TaintInfo | None:
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                t = self.expr_taint(node.value)
                if t is not None:
                    return t
        return None


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def compute_summaries(program: PyProgram) -> None:
    """Fixpoint of per-function return-taint summaries."""
    infos = [info for lst in program.functions.values() for info in lst]
    for _ in range(max(4, len(infos))):
        changed = False
        for info in infos:
            analysis = _FunctionTaint(program, info)
            analysis.run()
            ret = analysis.return_taint()
            if ret is not None and info.returns is None:
                info.returns = ret
                changed = True
        if not changed:
            break


@TAINT_RULES.rule(
    "det-taint",
    "wall-clock/global-RNG/os.environ values must not reach digest-"
    "relevant sinks (digests, merges, shard seeds)",
)
def _check_taint(program: PyProgram) -> Iterator[Diagnostic]:
    compute_summaries(program)
    for mod in program.modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_name(node)
            if sink is None:
                continue
            enclosing = program.enclosing_function(mod, node)
            analysis = _FunctionTaint(program, enclosing) \
                if enclosing is not None else None
            if analysis is not None:
                analysis.run()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                taint = (analysis.expr_taint(arg) if analysis is not None
                         else None)
                if taint is None:
                    continue
                loc = (f"{os.path.basename(mod.path)}:"
                       f"{getattr(node, 'lineno', 0)}")
                chain = " -> ".join(
                    taint.chain + (f"{sink}() at {loc}",))
                d = mod.diag(
                    "det-taint", Severity.ERROR,
                    f"{taint.kind} value flows into digest-relevant "
                    f"sink {sink}(): {chain}. Replays of the same run "
                    "would disagree; derive this input from the DES "
                    "clock or a seeded stream instead.",
                    node,
                )
                if d:
                    yield d
                break  # one finding per sink call


def _sink_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in DIGEST_SINKS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in DIGEST_SINKS:
        return func.attr
    return None
