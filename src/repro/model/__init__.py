"""Document model: the paper's four logical abstractions.

§3 divides the hypermedia model into *content*, *layout*,
*synchronization* and *interconnection*. This package maps each to a
module:

* :mod:`repro.model.content` — media locators and the content index;
* :mod:`repro.model.layout` — display regions for the desktop;
* :mod:`repro.model.sync` — the playout schedule (the E_i structures
  the client's presentation scheduler builds);
* :mod:`repro.model.links` — the hyperlink web across documents;
* :mod:`repro.model.scenario` — the combined presentation scenario.
"""

from repro.model.content import ContentIndex, MediaLocator
from repro.model.layout import DisplayLayout, LayoutEngine, Region
from repro.model.sync import (
    PlayoutEntry,
    ascii_timeline,
    build_playout_schedule,
    scenario_duration,
)
from repro.model.links import DocumentWeb
from repro.model.scenario import PresentationScenario, StreamSpec

__all__ = [
    "ContentIndex",
    "DisplayLayout",
    "DocumentWeb",
    "LayoutEngine",
    "MediaLocator",
    "PlayoutEntry",
    "PresentationScenario",
    "Region",
    "StreamSpec",
    "ascii_timeline",
    "build_playout_schedule",
    "scenario_duration",
]
