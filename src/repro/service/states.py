"""The application state-transition diagram (paper Figure 4).

States and transitions follow the §5 functional description: connect
→ authenticate (subscribing first if not a member) → browse the topic
list → request documents → view, with pause/resume, reload, link
following (suspending the connection when the target lives on another
server, with a grace interval for returning), and disconnect from any
state.

The Figure 4 benchmark regenerates this table and checks that
scripted sessions cover every edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "SessionState",
    "SessionEvent",
    "TRANSITIONS",
    "SessionStateMachine",
    "InvalidTransition",
    "transition_table_rows",
]


class SessionState(enum.Enum):
    DISCONNECTED = "disconnected"
    AUTHENTICATING = "authenticating"
    SUBSCRIBING = "subscribing"
    BROWSING = "browsing"
    REQUESTING = "requesting"
    VIEWING = "viewing"
    PAUSED = "paused"
    SUSPENDING = "suspending"
    #: a presentation whose delivery path failed (server crash, cut
    #: link) while detection/failover is in progress
    RECOVERING = "recovering"


class SessionEvent(enum.Enum):
    CONNECT = "connect"
    AUTH_OK = "auth-ok"
    AUTH_FAIL = "auth-fail"
    NOT_MEMBER = "not-member"
    SUBSCRIBED = "subscribed"
    REQUEST_DOCUMENT = "request-document"
    REQUEST_REJECTED = "request-rejected"
    SCENARIO_RECEIVED = "scenario-received"
    PAUSE = "pause"
    RESUME = "resume"
    RELOAD = "reload"
    PRESENTATION_END = "presentation-end"
    FOLLOW_LINK_LOCAL = "follow-link-local"
    FOLLOW_LINK_REMOTE = "follow-link-remote"
    RECONNECTED = "reconnected"
    SUSPEND_EXPIRED = "suspend-expired"
    STREAM_FAULT = "stream-fault"
    STREAM_RECOVERED = "stream-recovered"
    RECOVERY_FAILED = "recovery-failed"
    DISCONNECT = "disconnect"


S, E = SessionState, SessionEvent

#: (state, event) -> next state. DISCONNECT is additionally allowed
#: from every state ("the user can issue a disconnect request ... at
#: any time", §5).
TRANSITIONS: dict[tuple[SessionState, SessionEvent], SessionState] = {
    (S.DISCONNECTED, E.CONNECT): S.AUTHENTICATING,
    (S.AUTHENTICATING, E.AUTH_OK): S.BROWSING,
    (S.AUTHENTICATING, E.AUTH_FAIL): S.DISCONNECTED,
    (S.AUTHENTICATING, E.NOT_MEMBER): S.SUBSCRIBING,
    (S.SUBSCRIBING, E.SUBSCRIBED): S.BROWSING,
    (S.SUBSCRIBING, E.AUTH_FAIL): S.DISCONNECTED,
    (S.BROWSING, E.REQUEST_DOCUMENT): S.REQUESTING,
    (S.REQUESTING, E.SCENARIO_RECEIVED): S.VIEWING,
    (S.REQUESTING, E.REQUEST_REJECTED): S.BROWSING,
    (S.VIEWING, E.PAUSE): S.PAUSED,
    (S.PAUSED, E.RESUME): S.VIEWING,
    (S.VIEWING, E.RELOAD): S.REQUESTING,
    (S.VIEWING, E.PRESENTATION_END): S.BROWSING,
    (S.VIEWING, E.FOLLOW_LINK_LOCAL): S.REQUESTING,
    (S.VIEWING, E.FOLLOW_LINK_REMOTE): S.SUSPENDING,
    (S.PAUSED, E.FOLLOW_LINK_LOCAL): S.REQUESTING,
    (S.PAUSED, E.FOLLOW_LINK_REMOTE): S.SUSPENDING,
    (S.SUSPENDING, E.RECONNECTED): S.REQUESTING,
    (S.SUSPENDING, E.SUSPEND_EXPIRED): S.BROWSING,
    # Recovery extension: a delivery fault during playback enters
    # RECOVERING; failover restores VIEWING, an unrecoverable fault or
    # natural end of the (gap-filled) presentation falls back to
    # BROWSING. Repeated faults while recovering self-loop.
    (S.VIEWING, E.STREAM_FAULT): S.RECOVERING,
    (S.PAUSED, E.STREAM_FAULT): S.RECOVERING,
    (S.RECOVERING, E.STREAM_FAULT): S.RECOVERING,
    (S.RECOVERING, E.STREAM_RECOVERED): S.VIEWING,
    (S.RECOVERING, E.RECOVERY_FAILED): S.BROWSING,
    (S.RECOVERING, E.PRESENTATION_END): S.BROWSING,
}

_DISCONNECTABLE = [s for s in SessionState if s is not S.DISCONNECTED]
for _s in _DISCONNECTABLE:
    TRANSITIONS[(_s, E.DISCONNECT)] = S.DISCONNECTED


class InvalidTransition(Exception):
    def __init__(self, state: SessionState, event: SessionEvent) -> None:
        super().__init__(f"event {event.value!r} invalid in state {state.value!r}")
        self.state = state
        self.event = event


@dataclass(slots=True)
class SessionStateMachine:
    """Live FSM instance with a transition history."""

    state: SessionState = SessionState.DISCONNECTED
    history: list[tuple[float, SessionState, SessionEvent, SessionState]] = \
        field(default_factory=list)

    def can_fire(self, event: SessionEvent) -> bool:
        return (self.state, event) in TRANSITIONS

    def fire(self, event: SessionEvent, now: float = 0.0) -> SessionState:
        try:
            new = TRANSITIONS[(self.state, event)]
        except KeyError:
            raise InvalidTransition(self.state, event) from None
        self.history.append((now, self.state, event, new))
        self.state = new
        return new

    def edges_taken(self) -> set[tuple[SessionState, SessionEvent]]:
        return {(old, ev) for _, old, ev, _ in self.history}


def transition_table_rows() -> list[tuple[str, str, str]]:
    """(state, event, next-state) rows, sorted, for the Figure 4 bench."""
    return sorted(
        (s.value, e.value, nxt.value) for (s, e), nxt in TRANSITIONS.items()
    )
