"""Trace-schema conformance: every emit site vs the declared catalogue.

The trace-v3 catalogue (:mod:`repro.obs.schema`) declares every event
kind: its tier (detail vs control), its phase (instant / span begin /
span end) and its field sets. Consumers — the lifecycle correlator,
QoE scoring, trace summaries, SLO gates — key off those exact kinds
and fields, so an emit site that drifts (typo'd kind, renamed field,
per-packet kind outside the ``_tracing_detail`` guard) silently
corrupts downstream analytics or re-inflates the always-on tracer's
cost. This pass extracts every ``tracer.emit`` / ``span_begin`` /
``span_end`` call in the program and checks it against the catalogue.

Kind expressions are resolved statically:

* string constants, and both arms of a conditional
  (``"sflow.open" if opened else "sflow.join"``);
* a local variable assigned in the enclosing function
  (``kind = "admission.accept" if ... else ...``);
* f-strings by constant prefix (``f"playout.{kind.value}"`` matches
  the whole ``playout.*`` family — the site must satisfy every member);
* a parameter of the enclosing function: the function is a *wrapper*
  (e.g. the shard supervisor's ``_emit``), and every resolved caller
  becomes a virtual emit site checked with the caller's own kind and
  keyword fields.

Anything else is reported as ``trace-dynamic-kind`` (warning) rather
than guessed at. Calls inside functions *named* ``emit`` /
``span_begin`` / ``span_end`` are tracer implementations (ring
recorder delegation, the Tracer ABC) and are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo, PyProgram
from repro.analysis.diagnostics import Diagnostic, RuleRegistry, Severity
from repro.analysis.pyrules import PyModule
from repro.obs.schema import (
    TIER_DETAIL,
    TRACE_CATALOGUE,
    KindSpec,
    declared_phases,
    kinds_matching,
    lookup,
)

__all__ = ["TRACE_RULES", "EmitSite", "extract_emit_sites"]

TRACE_RULES = RuleRegistry("trace-schema")

#: correlation keys on the emit API itself, never per-kind fields
_UNIVERSAL = {"session", "node", "name"}
#: emit-family method names; calls inside defs with these names are
#: tracer implementations, not emit sites
_EMIT_METHODS = {"emit": "i", "span_begin": "B", "span_end": "E"}
#: substring that marks a detail-tier guard expression
_DETAIL_MARKER = "tracing_detail"


@dataclass(slots=True)
class EmitSite:
    """One statically-extracted emit call (possibly a virtual site
    projected through a wrapper onto its caller)."""

    mod: PyModule
    call: ast.Call  # the node diagnostics anchor at
    phase: str  # "i" | "B" | "E"
    #: (kind, exact) — exact=False is an f-string prefix match
    kinds: tuple[tuple[str, bool], ...]
    #: explicit keyword field names (universal keys excluded)
    fields: frozenset[str]
    #: site forwards a ``**kwargs`` — missing-field check is waived
    has_kwargs: bool
    enclosing: FunctionInfo | None
    #: kind expression could not be resolved at all
    dynamic: bool = False
    dynamic_why: str = ""


def extract_emit_sites(
        program: PyProgram) -> tuple[list[EmitSite], list[EmitSite]]:
    """(resolved sites, dynamic/unresolvable sites) for the program."""
    sites: list[EmitSite] = []
    dynamic: list[EmitSite] = []
    for mod, enclosing, call in program.iter_calls():
        phase = _emit_phase(call)
        if phase is None:
            continue
        if enclosing is not None and enclosing.name in _EMIT_METHODS:
            continue  # a tracer implementation / delegator
        kind_expr = _kind_expr(call)
        if kind_expr is None:
            dynamic.append(EmitSite(
                mod, call, phase, (), _site_fields(call),
                _has_kwargs(call), enclosing, dynamic=True,
                dynamic_why="no kind argument"))
            continue
        for site in _resolve_site(program, mod, enclosing, call, phase,
                                  kind_expr, depth=0):
            (dynamic if site.dynamic else sites).append(site)
    return sites, dynamic


def _emit_phase(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        return _EMIT_METHODS.get(func.attr)
    return None


def _kind_expr(call: ast.Call) -> ast.expr | None:
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg == "kind":
            return kw.value
    return None


def _site_fields(call: ast.Call) -> frozenset[str]:
    return frozenset(kw.arg for kw in call.keywords
                     if kw.arg is not None and kw.arg not in _UNIVERSAL)


def _has_kwargs(call: ast.Call) -> bool:
    return any(kw.arg is None for kw in call.keywords)


def _resolve_site(program: PyProgram, mod: PyModule,
                  enclosing: FunctionInfo | None, call: ast.Call,
                  phase: str, kind_expr: ast.expr,
                  depth: int) -> Iterator[EmitSite]:
    """Resolve one emit call into zero or more concrete sites."""
    kinds = _resolve_kinds(kind_expr, enclosing)
    if kinds:
        yield EmitSite(mod, call, phase, tuple(kinds), _site_fields(call),
                       _has_kwargs(call), enclosing)
        return
    # A parameter of the enclosing function: project through the
    # wrapper onto every caller (one hop only).
    if (depth == 0 and isinstance(kind_expr, ast.Name)
            and enclosing is not None
            and _param_index(enclosing, kind_expr.id) is not None):
        yield from _wrapper_sites(program, enclosing, kind_expr.id, phase)
        return
    yield EmitSite(
        mod, call, phase, (), _site_fields(call), _has_kwargs(call),
        enclosing, dynamic=True,
        dynamic_why=f"kind is {type(kind_expr).__name__}, "
                    "not statically resolvable")


def _resolve_kinds(expr: ast.expr,
                   enclosing: FunctionInfo | None) -> list[tuple[str, bool]]:
    """Constant / IfExp / f-string-prefix / local-assignment resolution."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return [(expr.value, True)]
    if isinstance(expr, ast.IfExp):
        body = _resolve_kinds(expr.body, enclosing)
        orelse = _resolve_kinds(expr.orelse, enclosing)
        return body + orelse if body and orelse else []
    if isinstance(expr, ast.JoinedStr):
        prefix = ""
        for part in expr.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                break
        return [(prefix, False)] if prefix else []
    if isinstance(expr, ast.Name) and enclosing is not None:
        if _param_index(enclosing, expr.id) is not None:
            return []  # wrapper case, handled by the caller projection
        out: list[tuple[str, bool]] = []
        for node in ast.walk(enclosing.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == expr.id:
                        out.extend(_resolve_kinds(node.value, enclosing))
        return out
    return []


def _param_index(info: FunctionInfo, name: str) -> int | None:
    """Positional index of ``name`` among the function's parameters,
    with an implicit self/cls already stripped for method callers."""
    params = [a.arg for a in info.node.args.args]
    if name not in params:
        return None
    idx = params.index(name)
    if params and params[0] in ("self", "cls"):
        idx -= 1
    return idx if idx >= 0 else None


def _wrapper_sites(program: PyProgram, wrapper: FunctionInfo,
                   param: str, phase: str) -> Iterator[EmitSite]:
    idx = _param_index(wrapper, param)
    assert idx is not None
    for mod, caller, call in program.callers_of(wrapper):
        kind_expr: ast.expr | None = None
        if len(call.args) > idx:
            kind_expr = call.args[idx]
        else:
            for kw in call.keywords:
                if kw.arg == param:
                    kind_expr = kw.value
        if kind_expr is None:
            continue
        kinds = _resolve_kinds(kind_expr, caller)
        if kinds:
            yield EmitSite(mod, call, phase, tuple(kinds),
                           _site_fields(call), _has_kwargs(call), caller)
        else:
            yield EmitSite(
                mod, call, phase, (), _site_fields(call),
                _has_kwargs(call), caller, dynamic=True,
                dynamic_why=f"kind forwarded through {wrapper.name}() "
                            "is not statically resolvable")


def _specs_for(site: EmitSite,
               kind: str, exact: bool) -> list[KindSpec] | None:
    """Catalogue specs one resolved kind matches, or None if unknown."""
    if exact:
        spec = lookup(kind, site.phase)
        return [spec] if spec is not None else None
    family = kinds_matching(kind, site.phase)
    return family if family else None


# ----------------------------------------------------------------- rules
@TRACE_RULES.rule(
    "trace-unknown-kind",
    "every emitted trace kind must be declared in repro.obs.schema",
)
def _check_unknown_kind(program: PyProgram) -> Iterator[Diagnostic]:
    sites, _dynamic = extract_emit_sites(program)
    for site in sites:
        for kind, exact in site.kinds:
            if _specs_for(site, kind, exact) is not None:
                continue
            phases = declared_phases(kind) if exact else []
            if phases:
                hint = (f"declared at phase(s) {', '.join(sorted(phases))} "
                        f"but emitted at phase {site.phase!r} — "
                        "emit/span_begin/span_end mismatch")
            elif exact:
                hint = "not declared in the trace-v3 catalogue"
            else:
                hint = (f"f-string prefix matches no catalogue kind at "
                        f"phase {site.phase!r}")
            d = site.mod.diag(
                "trace-unknown-kind", Severity.ERROR,
                f"unknown trace kind {kind!r}: {hint}. Declare it in "
                "repro/obs/schema.py or fix the emit site.",
                site.call,
            )
            if d:
                yield d


@TRACE_RULES.rule(
    "trace-field-mismatch",
    "emit-site fields must match the kind's declared schema",
)
def _check_field_mismatch(program: PyProgram) -> Iterator[Diagnostic]:
    sites, _dynamic = extract_emit_sites(program)
    for site in sites:
        for kind, exact in site.kinds:
            specs = _specs_for(site, kind, exact)
            if not specs:
                continue  # unknown kind already reported
            # The site must satisfy every kind it can emit: required =
            # intersection over the family, allowed = union.
            required = frozenset.intersection(
                *(s.required for s in specs))
            allowed = frozenset.union(*(s.allowed for s in specs))
            missing = () if site.has_kwargs else tuple(
                sorted(required - site.fields))
            extra = tuple(sorted(site.fields - allowed))
            if not missing and not extra:
                continue
            parts = []
            if missing:
                parts.append(f"missing required field(s) "
                             f"{', '.join(missing)}")
            if extra:
                parts.append(f"undeclared field(s) {', '.join(extra)}")
            d = site.mod.diag(
                "trace-field-mismatch", Severity.ERROR,
                f"emit of {kind!r}{'' if exact else '*'}: "
                f"{'; '.join(parts)}. The catalogue declares "
                f"required={{{', '.join(sorted(required))}}} "
                f"optional={{{', '.join(sorted(allowed - required))}}}.",
                site.call,
            )
            if d:
                yield d


@TRACE_RULES.rule(
    "trace-detail-guard",
    "detail-tier kinds must sit under the _tracing_detail guard",
)
def _check_detail_guard(program: PyProgram) -> Iterator[Diagnostic]:
    sites, _dynamic = extract_emit_sites(program)
    for site in sites:
        detail_kinds = []
        for kind, exact in site.kinds:
            specs = _specs_for(site, kind, exact) or []
            detail_kinds.extend(s.kind for s in specs
                                if s.tier == TIER_DETAIL)
        if not detail_kinds:
            continue
        if _detail_guarded(site):
            continue
        names = ", ".join(sorted(set(detail_kinds)))
        d = site.mod.diag(
            "trace-detail-guard", Severity.ERROR,
            f"detail-tier kind(s) {names} emitted outside a "
            "_tracing_detail guard: per-packet/per-frame kinds are "
            "the firehose the two-tier contract keeps off the "
            "always-on path. Wrap the emit in "
            "`if sim._tracing_detail:` (or guard with an early "
            "return).",
            site.call,
        )
        if d:
            yield d


def _detail_guarded(site: EmitSite) -> bool:
    # (a) an ancestor conditional whose test mentions the detail flag
    for anc in site.mod.ancestors(site.call):
        if isinstance(anc, (ast.If, ast.IfExp, ast.While)):
            if _DETAIL_MARKER in ast.unparse(anc.test):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    # (b) a dominating early return: an earlier `if <...detail...>:`
    # in the enclosing function whose body ends the flow (the playout
    # event-log pattern).
    if site.enclosing is None:
        return False
    emit_line = getattr(site.call, "lineno", 0)
    for node in ast.walk(site.enclosing.node):
        if not isinstance(node, ast.If):
            continue
        if getattr(node, "lineno", emit_line) >= emit_line:
            continue
        if _DETAIL_MARKER not in ast.unparse(node.test):
            continue
        if node.body and isinstance(node.body[-1],
                                    (ast.Return, ast.Raise, ast.Continue)):
            return True
    return False


@TRACE_RULES.rule(
    "trace-dynamic-kind",
    "emit sites whose kind cannot be resolved statically",
    severity=Severity.WARNING,
)
def _check_dynamic_kind(program: PyProgram) -> Iterator[Diagnostic]:
    _sites, dynamic = extract_emit_sites(program)
    for site in dynamic:
        d = site.mod.diag(
            "trace-dynamic-kind", Severity.WARNING,
            f"emit kind is not statically resolvable "
            f"({site.dynamic_why}); the schema checker cannot "
            "validate this site. Prefer a constant, a conditional "
            "over constants, or an f-string with a constant prefix.",
            site.call,
        )
        if d:
            yield d


@TRACE_RULES.rule(
    "trace-unused-kind",
    "catalogue entries no longer emitted anywhere",
    severity=Severity.WARNING,
)
def _check_unused_kind(program: PyProgram) -> Iterator[Diagnostic]:
    if not program.full:
        return  # only meaningful for a whole-package lint
    sites, dynamic = extract_emit_sites(program)
    if dynamic:
        return  # cannot prove anything unused past an unresolved site
    used: set[tuple[str, str]] = set()
    for site in sites:
        for kind, exact in site.kinds:
            if exact:
                used.add((kind, site.phase))
            else:
                used.update((s.kind, s.phase)
                            for s in kinds_matching(kind, site.phase))
    for (kind, phase), spec in sorted(TRACE_CATALOGUE.items()):
        if (kind, phase) in used:
            continue
        yield Diagnostic(
            "trace-unused-kind", Severity.WARNING,
            f"catalogue kind {kind!r} (phase {phase!r}) is declared in "
            "repro/obs/schema.py but no emit site produces it; delete "
            "the entry or restore the emit.",
            subject=f"{kind}:{phase}",
        )
