"""Unit tests for links, routing and packet delivery."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.net import GilbertElliottLoss, Network, Packet


def simple_net(rate=1_000_000, delay=0.01, queue=100):
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "b", rate_bps=rate, delay_s=delay, queue_packets=queue)
    return sim, net


def test_single_hop_delivery_time():
    sim, net = simple_net(rate=1_000_000, delay=0.01)
    got = []
    net.node("b").bind(5000, lambda p: got.append((sim.now, p)))
    pkt = Packet(src="a", dst="b", size_bytes=1250, protocol="UDP",
                 flow_id="f", dst_port=5000)
    net.send(pkt)
    sim.run()
    # 1250 B at 1 Mb/s = 10 ms serialization + 10 ms propagation.
    assert len(got) == 1
    assert got[0][0] == pytest.approx(0.020, abs=1e-9)


def test_multi_hop_forwarding():
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "r1", "r2", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "r1", 10e6, 0.001)
    net.add_duplex_link("r1", "r2", 10e6, 0.002)
    net.add_duplex_link("r2", "b", 10e6, 0.003)
    got = []
    net.node("b").bind(1, lambda p: got.append((sim.now, p.hops)))
    net.send(Packet(src="a", dst="b", size_bytes=1000, protocol="UDP",
                    flow_id="f", dst_port=1))
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 3
    # 3 serializations of 0.8 ms + 6 ms propagation.
    assert got[0][0] == pytest.approx(3 * 0.0008 + 0.006, abs=1e-9)


def test_routing_prefers_low_delay_path():
    sim = Simulator()
    net = Network(sim)
    for n in ("a", "fast", "slow", "b"):
        net.add_node(n)
    net.add_duplex_link("a", "fast", 10e6, 0.001)
    net.add_duplex_link("fast", "b", 10e6, 0.001)
    net.add_duplex_link("a", "slow", 10e6, 0.050)
    net.add_duplex_link("slow", "b", 10e6, 0.050)
    assert net.path("a", "b") == ["a", "fast", "b"]


def test_queue_overflow_drops_and_taps():
    sim, net = simple_net(rate=100_000, delay=0.0, queue=2)
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))
    # Inject 10 packets back-to-back at t=0; queue holds 2.
    for i in range(10):
        net.send(Packet(src="a", dst="b", size_bytes=1000, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    link = net.link("a", "b")
    assert link.stats.queue_drops > 0
    assert len(got) + link.stats.queue_drops == 10
    drops = net.tap.drops()
    assert len(drops) == link.stats.queue_drops
    assert all(r.event == "drop-queue" for r in drops)


def test_fifo_ordering_preserved():
    sim, net = simple_net()
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))
    for i in range(20):
        net.send(Packet(src="a", dst="b", size_bytes=500, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    assert got == list(range(20))


def test_loopback_delivery():
    sim, net = simple_net()
    got = []
    net.node("a").bind(7, lambda p: got.append(p))
    net.send(Packet(src="a", dst="a", size_bytes=100, protocol="UDP",
                    flow_id="f", dst_port=7))
    assert len(got) == 1  # immediate, no sim.run needed


def test_unbound_port_discards_silently():
    sim, net = simple_net()
    net.send(Packet(src="a", dst="b", size_bytes=100, protocol="UDP",
                    flow_id="f", dst_port=404))
    sim.run()
    assert net.node("b").rx_packets == 1  # received, no handler


def test_gilbert_elliott_loss_on_link():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    rng = RngRegistry(seed=11).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.5, p_bg=0.5, loss_bad=1.0, loss_good=0.0)
    net.add_link("a", "b", 10e6, 0.001, loss_model=ge)
    got = []
    net.node("b").bind(1, lambda p: got.append(p.seq))

    def sender():
        for i in range(400):
            net.send(Packet(src="a", dst="b", size_bytes=500, protocol="UDP",
                            flow_id="f", dst_port=1, seq=i))
            yield sim.timeout(0.01)

    sim.process(sender())
    sim.run()
    link = net.link("a", "b")
    assert link.stats.loss_drops > 0
    assert len(got) + link.stats.loss_drops == 400
    # Stationary loss is ~50%; allow generous tolerance.
    assert 0.3 < link.stats.loss_drops / 400 < 0.7


def test_tap_aggregates_by_protocol():
    sim, net = simple_net()
    net.node("b").bind(1, lambda p: None)
    net.send(Packet(src="a", dst="b", size_bytes=100, protocol="RTP",
                    flow_id="f1", dst_port=1))
    net.send(Packet(src="a", dst="b", size_bytes=200, protocol="TCP",
                    flow_id="f2", dst_port=1))
    sim.run()
    assert net.tap.bytes_by_protocol == {"RTP": 100, "TCP": 200}
    assert net.tap.protocols_for_flow("f1") == {"RTP"}


def test_duplicate_node_and_link_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    with pytest.raises(ValueError):
        net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", 1e6, 0.01)
    with pytest.raises(ValueError):
        net.add_link("a", "b", 1e6, 0.01)
    with pytest.raises(KeyError):
        net.add_link("a", "zzz", 1e6, 0.01)


def test_send_to_unknown_node_rejected():
    sim, net = simple_net()
    with pytest.raises(KeyError):
        net.send(Packet(src="zzz", dst="b", size_bytes=1, protocol="UDP",
                        flow_id="f", dst_port=1))


def test_link_utilisation_counter():
    sim, net = simple_net(rate=1_000_000)
    net.node("b").bind(1, lambda p: None)
    for i in range(5):
        net.send(Packet(src="a", dst="b", size_bytes=1250, protocol="UDP",
                        flow_id="f", dst_port=1, seq=i))
    sim.run()
    link = net.link("a", "b")
    assert link.stats.tx_packets == 5
    assert link.stats.busy_time == pytest.approx(5 * 0.01)


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", size_bytes=0, protocol="UDP",
               flow_id="f", dst_port=1)
