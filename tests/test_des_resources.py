"""Unit tests for Store (waitable FIFO)."""

import pytest

from repro.des import QueueFullError, Simulator, Store


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_put_then_get_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    arrival_time = []

    def consumer():
        item = yield store.get()
        arrival_time.append((item, sim.now))

    def producer():
        yield sim.timeout(3.0)
        yield store.put("frame")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert arrival_time == [("frame", 3.0)]


def test_put_blocks_at_capacity():
    sim = Simulator()
    store = Store(sim, capacity=2)
    done = []

    def producer():
        for i in range(3):
            yield store.put(i)
            done.append((i, sim.now))

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # Third put only completes once the consumer frees a slot at t=5.
    assert done == [(0, 0.0), (1, 0.0), (2, 5.0)]


def test_put_nowait_raises_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put_nowait("a")
    with pytest.raises(QueueFullError):
        store.put_nowait("b")


def test_get_nowait_and_peek():
    sim = Simulator()
    store = Store(sim)
    store.put_nowait("x")
    store.put_nowait("y")
    assert store.peek() == "x"
    assert store.get_nowait() == "x"
    assert store.get_nowait() == "y"
    with pytest.raises(IndexError):
        store.get_nowait()
    with pytest.raises(IndexError):
        store.peek()


def test_level_and_is_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.level == 0 and not store.is_full
    store.put_nowait(1)
    store.put_nowait(2)
    assert store.level == 2 and store.is_full
    assert len(store) == 2


def test_waiting_getters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    served = []

    def consumer(name):
        item = yield store.get()
        served.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))

    def producer():
        yield sim.timeout(1.0)
        yield store.put("a")
        yield store.put("b")

    sim.process(producer())
    sim.run()
    assert served == [("first", "a"), ("second", "b")]


def test_get_nowait_unblocks_pending_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put_nowait("old")
    put_done = []

    def producer():
        yield store.put("new")
        put_done.append(sim.now)

    sim.process(producer())
    sim.run()
    assert put_done == []  # still blocked
    assert store.get_nowait() == "old"
    sim.run()
    assert put_done == [0.0]
    assert store.peek() == "new"
