"""Layout abstraction: placing media on the user's desktop.

"The layout consists of a set of rules that internally specify how
the different media will be presented on the user's desktop" (§3).
Elements with explicit WHERE coordinates are placed there; the rest
flow vertically in document order, the way an HTML-era browser laid
out a page.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    ImageElement,
    Paragraph,
    Separator,
    TextBlock,
    VideoElement,
)

__all__ = ["Region", "DisplayLayout", "LayoutEngine"]

DEFAULT_CANVAS_WIDTH = 800
DEFAULT_CANVAS_HEIGHT = 600
_HEADING_HEIGHTS = {1: 40, 2: 32, 3: 26}
_TEXT_LINE_HEIGHT = 18
_TEXT_CHARS_PER_LINE = 80
_DEFAULT_IMAGE = (320, 240)
_VIDEO_REGION = (320, 240)
_PARAGRAPH_GAP = 12
_SEPARATOR_GAP = 8


@dataclass(frozen=True, slots=True)
class Region:
    """A rectangle on the client's display, in pixels."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("region must have positive extent")

    @property
    def x2(self) -> int:
        return self.x + self.width

    @property
    def y2(self) -> int:
        return self.y + self.height

    def overlaps(self, other: "Region") -> bool:
        return not (
            self.x2 <= other.x or other.x2 <= self.x
            or self.y2 <= other.y or other.y2 <= self.y
        )


@dataclass(slots=True)
class DisplayLayout:
    """Resolved layout: element key → display region.

    Keys are media element ids; structural elements get synthetic
    keys ("heading:0", "text:1", ...) by document position.
    """

    canvas_width: int
    canvas_height: int
    regions: dict[str, Region]

    def region(self, key: str) -> Region:
        try:
            return self.regions[key]
        except KeyError:
            raise KeyError(f"no layout region for {key!r}") from None

    def visual_keys(self) -> list[str]:
        return sorted(self.regions)

    def overflows_canvas(self) -> bool:
        return any(
            r.x2 > self.canvas_width or r.y2 > self.canvas_height
            for r in self.regions.values()
        )


class LayoutEngine:
    """Computes a :class:`DisplayLayout` from a document."""

    def __init__(
        self,
        canvas_width: int = DEFAULT_CANVAS_WIDTH,
        canvas_height: int = DEFAULT_CANVAS_HEIGHT,
    ) -> None:
        if canvas_width <= 0 or canvas_height <= 0:
            raise ValueError("canvas must have positive extent")
        self.canvas_width = canvas_width
        self.canvas_height = canvas_height

    def layout(self, doc: HmlDocument) -> DisplayLayout:
        regions: dict[str, Region] = {}
        cursor_y = 0
        for idx, e in enumerate(doc.elements):
            if isinstance(e, Heading):
                h = _HEADING_HEIGHTS[e.level]
                regions[f"heading:{idx}"] = Region(0, cursor_y,
                                                   self.canvas_width, h)
                cursor_y += h
            elif isinstance(e, TextBlock):
                chars = len(e.plain_text)
                lines = max(1, -(-chars // _TEXT_CHARS_PER_LINE))
                h = lines * _TEXT_LINE_HEIGHT
                regions[f"text:{idx}"] = Region(0, cursor_y,
                                                self.canvas_width, h)
                cursor_y += h
            elif isinstance(e, Paragraph):
                cursor_y += _PARAGRAPH_GAP
            elif isinstance(e, Separator):
                cursor_y += _SEPARATOR_GAP
            elif isinstance(e, ImageElement):
                w = e.width or _DEFAULT_IMAGE[0]
                h = e.height or _DEFAULT_IMAGE[1]
                if e.where is not None:
                    regions[e.element_id] = Region(e.where[0], e.where[1], w, h)
                else:
                    regions[e.element_id] = Region(0, cursor_y, w, h)
                    cursor_y += h
            elif isinstance(e, VideoElement):
                w, h = _VIDEO_REGION
                regions[e.element_id] = Region(0, cursor_y, w, h)
                cursor_y += h
            elif isinstance(e, AudioVideoElement):
                w, h = _VIDEO_REGION
                regions[e.video_id] = Region(0, cursor_y, w, h)
                cursor_y += h
            elif isinstance(e, AudioElement):
                pass  # audio has no display region
        return DisplayLayout(
            canvas_width=self.canvas_width,
            canvas_height=self.canvas_height,
            regions=regions,
        )
