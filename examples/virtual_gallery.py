"""Remote access to a virtual gallery with cross-server navigation.

Another of the paper's motivating applications ("remote access to
virtual galleries"). Two museums run their own multimedia servers;
a visitor tours the first, follows a hyperlink to a painting hosted
by the second, and then returns — exercising the §5 suspend-
connection mechanism: the first museum keeps the connection alive for
a grace interval, so the return needs no re-authentication.

Run:  python examples/virtual_gallery.py
"""

from repro.core import EngineConfig, ServiceEngine
from repro.hml import DocumentBuilder, serialize
from repro.net import CoreNetworkLayer
from repro.server.accounts import SubscriptionForm
from repro.service import SessionState


#: both museums' documents are part of the scenario set
SCENARIO_CLOSED = True


def room(title: str, narration: str, n_paintings: int,
         remote_link: str | None = None) -> str:
    b = DocumentBuilder(title).heading(1, title).text(narration)
    t = 0.0
    for i in range(1, n_paintings + 1):
        b.image(f"imgsrv:/{title.replace(' ', '_')}/p{i}.gif",
                f"P{i}", startime=t, duration=6.0,
                width=400, height=300)
        b.audio(f"audsrv:/{title.replace(' ', '_')}/guide{i}.au",
                f"G{i}", startime=t, duration=6.0,
                note=f"audio guide for painting {i}")
        t += 6.0
    if remote_link:
        b.hyperlink(remote_link, note="see the companion piece")
    return serialize(b.build())


def scenario_documents() -> dict[str, str]:
    """Both museums' documents, for the scenario analyzer."""
    return {
        "room-a": room("Flemish room", "Works on loan from Bruges.", 2,
                       remote_link="museo-due:annex"),
        "annex": room("Annex", "The companion piece.", 1),
    }


def main() -> None:
    cfg = EngineConfig(suspend_grace_s=20.0)
    engine = ServiceEngine(cfg, layers=[CoreNetworkLayer()])
    docs = scenario_documents()
    engine.add_server("museo-uno", documents={
        "room-a": (docs["room-a"], "galleries"),
    }, description="Museo Uno — permanent collection")
    engine.add_server("museo-due", documents={
        "annex": (docs["annex"], "galleries"),
    }, description="Museo Due — special exhibitions")

    sim = engine.sim
    client1, handler1 = engine.open_session("museo-uno", "visitor", "pw")
    client2, handler2 = engine.open_session("museo-due", "visitor", "pw")
    log: list[str] = []

    def tour():
        resp = yield from client1.connect()
        if resp.msg_type == "subscribe-required":
            resp = yield from client1.subscribe(SubscriptionForm(
                real_name="A Visitor", address="via Roma 1",
                email="visitor@example.org"))
        log.append(f"t={sim.now:.2f} connected to museo-uno")

        resp = yield from client1.request_document("room-a")
        comp = engine.build_client_composition(resp.body["markup"],
                                               engine.servers["museo-uno"])
        ready = yield from client1.send_ready(comp.rtp_ports,
                                              comp.discrete_ports)
        comp.attach_feedback(ready.body["rtcp_port"],
                             engine.servers["museo-uno"].node_id)
        done = comp.start()
        yield done
        comp.close()
        log.append(f"t={sim.now:.2f} finished the Flemish room")

        # Follow the cross-server link (still in the VIEWING state):
        # suspend museo-uno, visit museo-due.
        yield from client1.suspend_for_remote_link()
        log.append(f"t={sim.now:.2f} museo-uno connection suspended "
                   f"(grace {cfg.suspend_grace_s:.0f}s)")

        resp = yield from client2.connect()
        yield from client2.request_document("annex")
        comp2 = engine.build_client_composition(
            client2.last_markup, engine.servers["museo-due"])
        ready2 = yield from client2.send_ready(comp2.rtp_ports,
                                               comp2.discrete_ports)
        comp2.attach_feedback(ready2.body["rtcp_port"],
                              engine.servers["museo-due"].node_id)
        done2 = comp2.start()
        yield done2
        comp2.close()
        log.append(f"t={sim.now:.2f} viewed the annex at museo-due")
        yield from client2.disconnect()

        # Return within the grace interval: the session is still alive.
        resp = yield from client1.resume_connection()
        log.append(f"t={sim.now:.2f} back at museo-uno: {resp.msg_type}")
        assert resp.msg_type == "resumed-conn"
        assert client1.fsm.state is SessionState.REQUESTING
        yield from client1.disconnect()
        log.append(f"t={sim.now:.2f} tour over")

    proc = sim.process(tour())
    sim.run(until=proc)
    sim.run(until=sim.now + 1.0)
    print("--- gallery tour ---")
    for line in log:
        print(" ", line)
    print("\nThe suspended museo-uno connection was reused without "
          "re-authentication — the paper's §5 grace-interval behaviour.")


if __name__ == "__main__":
    main()
