"""Unit + property tests for synthetic media traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import RngRegistry
from repro.media import (
    ContinuousMediaObject,
    FrameKind,
    MediaType,
    VideoTraceGenerator,
    AudioTraceGenerator,
    default_registry,
)
from repro.media.traces import FrameSource, GOP_PATTERN, trace_for_object

REG = default_registry()
MPEG = REG.get("MPEG")
PCM = REG.get("PCM-family")


def rng(name="t", seed=1):
    return RngRegistry(seed=seed).stream(name)


# ---------------------------------------------------------------- video bulk
def test_video_trace_frame_count_and_timing():
    tr = VideoTraceGenerator(MPEG, rng()).generate("v", duration_s=2.0)
    assert len(tr) == 50  # 25 fps * 2 s
    ticks = 90_000 // 25
    for i, f in enumerate(tr.frames):
        assert f.media_time == i * ticks
        assert f.duration == ticks
        assert f.seq == i
    assert tr.duration_s == pytest.approx(2.0)


def test_video_trace_gop_structure():
    tr = VideoTraceGenerator(MPEG, rng()).generate("v", duration_s=1.0)
    kinds = [f.kind for f in tr.frames[: len(GOP_PATTERN)]]
    assert tuple(kinds) == GOP_PATTERN
    # I frames are on average the largest, B the smallest.
    by_kind = {}
    tr_long = VideoTraceGenerator(MPEG, rng("long")).generate("v", duration_s=60.0)
    for f in tr_long.frames:
        by_kind.setdefault(f.kind, []).append(f.size_bytes)
    assert np.mean(by_kind[FrameKind.I]) > np.mean(by_kind[FrameKind.P])
    assert np.mean(by_kind[FrameKind.P]) > np.mean(by_kind[FrameKind.B])


def test_video_trace_mean_bitrate_on_target():
    tr = VideoTraceGenerator(MPEG, rng("rate")).generate("v", duration_s=120.0)
    assert tr.mean_bitrate_bps == pytest.approx(1_500_000, rel=0.10)


def test_video_trace_grade_scales_bitrate():
    g0 = VideoTraceGenerator(MPEG, rng("a")).generate("v", 60.0, grade_index=0)
    g3 = VideoTraceGenerator(MPEG, rng("a")).generate("v", 60.0, grade_index=3)
    assert g3.mean_bitrate_bps < 0.5 * g0.mean_bitrate_bps


def test_video_trace_suspended_grade_is_empty():
    tr = VideoTraceGenerator(MPEG, rng()).generate("v", 10.0, grade_index=99)
    assert len(tr) == 0
    assert tr.duration_s == 0.0
    assert tr.mean_bitrate_bps == 0.0


def test_video_trace_reproducible():
    a = VideoTraceGenerator(MPEG, rng("x", seed=5)).generate("v", 5.0)
    b = VideoTraceGenerator(MPEG, rng("x", seed=5)).generate("v", 5.0)
    assert [f.size_bytes for f in a.frames] == [f.size_bytes for f in b.frames]


def test_video_generator_rejects_audio_codec():
    with pytest.raises(ValueError):
        VideoTraceGenerator(PCM, rng())
    with pytest.raises(ValueError):
        VideoTraceGenerator(MPEG, rng(), rho=1.0)


# ---------------------------------------------------------------- audio bulk
def test_audio_trace_is_exact_cbr():
    tr = AudioTraceGenerator(PCM).generate("a", duration_s=4.0)
    assert len(tr) == 200  # 50 frames/s * 4 s
    sizes = {f.size_bytes for f in tr.frames}
    assert len(sizes) == 1
    assert tr.mean_bitrate_bps == pytest.approx(64_000, rel=0.01)
    assert all(f.kind is FrameKind.SAMPLE for f in tr.frames)


def test_audio_trace_grades_follow_ladder():
    for grade, rate in [(0, 64_000), (1, 32_000), (2, 16_000)]:
        tr = AudioTraceGenerator(PCM).generate("a", 10.0, grade_index=grade)
        assert tr.mean_bitrate_bps == pytest.approx(rate, rel=0.01)


def test_audio_generator_rejects_video_codec():
    with pytest.raises(ValueError):
        AudioTraceGenerator(MPEG)


# ---------------------------------------------------------------- FrameSource
def test_frame_source_matches_bulk_timing():
    src = FrameSource("v", MPEG, rng("fs"))
    frames = [src.next_frame() for _ in range(50)]
    ticks = 90_000 // 25
    for i, f in enumerate(frames):
        assert f is not None
        assert f.seq == i
        assert f.media_time == i * ticks


def test_frame_source_regrade_mid_stream():
    src = FrameSource("v", MPEG, rng("fs2"))
    for _ in range(10):
        src.next_frame()
    src.set_grade(3)
    f = src.next_frame()
    assert f.grade == 3
    # Lower grade -> smaller frames on average.
    sizes_low = [src.next_frame().size_bytes for _ in range(100)]
    src2 = FrameSource("v", MPEG, rng("fs2b"))
    sizes_full = [src2.next_frame().size_bytes for _ in range(100)]
    assert np.mean(sizes_low) < np.mean(sizes_full)


def test_frame_source_suspend_advances_media_time():
    src = FrameSource("v", MPEG, rng("fs3"))
    src.set_grade(len(MPEG.ladder))  # suspend
    t0 = src.media_time_s
    assert src.next_frame() is None
    assert src.media_time_s > t0
    # Upgrading resumes real frames at the advanced media time.
    src.set_grade(len(MPEG.ladder) - 1)
    f = src.next_frame()
    assert f is not None
    assert f.media_time / MPEG.clock_rate >= t0


def test_frame_source_rejects_negative_grade():
    src = FrameSource("v", MPEG, rng())
    with pytest.raises(ValueError):
        src.set_grade(-1)


def test_frame_source_half_rate_grade_spacing():
    src = FrameSource("v", MPEG, rng(), grade_index=4)  # 12.5 fps rung
    f0, f1 = src.next_frame(), src.next_frame()
    assert f1.media_time - f0.media_time == 7200  # 90 kHz / 12.5 fps


# ---------------------------------------------------------------- dispatch
def test_trace_for_object_dispatch():
    r = RngRegistry(seed=0)
    vid = ContinuousMediaObject("v", MediaType.VIDEO, "MPEG", duration_s=1.0)
    aud = ContinuousMediaObject("a", MediaType.AUDIO, "PCM-family", duration_s=1.0)
    tv = trace_for_object(vid, MPEG, r.stream("v"))
    ta = trace_for_object(aud, PCM, r.stream("a"))
    assert len(tv) == 25 and len(ta) == 50
    with pytest.raises(ValueError):
        trace_for_object(vid, PCM, r.stream("x"))


# ---------------------------------------------------------------- properties
@settings(max_examples=30, deadline=None)
@given(
    duration=st.floats(min_value=0.2, max_value=20.0),
    grade=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_video_frames_monotone_and_positive(duration, grade, seed):
    tr = VideoTraceGenerator(MPEG, rng("p", seed=seed)).generate(
        "v", duration, grade_index=grade
    )
    times = [f.media_time for f in tr.frames]
    assert times == sorted(times)
    assert len(set(times)) == len(times)
    assert all(f.size_bytes >= 1 for f in tr.frames)
    assert all(f.grade == grade for f in tr.frames)
    seqs = [f.seq for f in tr.frames]
    assert seqs == list(range(len(tr)))


@settings(max_examples=30, deadline=None)
@given(
    duration=st.floats(min_value=0.2, max_value=30.0),
    grade=st.integers(min_value=0, max_value=2),
)
def test_property_audio_rate_exact(duration, grade):
    tr = AudioTraceGenerator(PCM).generate("a", duration, grade_index=grade)
    expected = int(round(duration * 50.0))
    assert len(tr) == expected
    if expected:
        # Frames tile media time with no gaps.
        for prev, cur in zip(tr.frames, tr.frames[1:]):
            assert cur.media_time == prev.end_time


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=500), seed=st.integers(0, 2**31 - 1))
def test_property_frame_source_media_time_tiles(n, seed):
    src = FrameSource("v", MPEG, rng("fsrc", seed=seed))
    frames = [src.next_frame() for _ in range(n)]
    for prev, cur in zip(frames, frames[1:]):
        assert cur.media_time == prev.end_time
