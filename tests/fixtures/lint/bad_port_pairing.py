"""Fixture: allocates media ports that are never released."""


def bind_media(node) -> int:
    return node.ports.allocate("media")
