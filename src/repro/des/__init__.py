"""Deterministic discrete-event simulation kernel.

This package is the concurrency substrate of the reproduction: every
"process" of the 1996 service (media servers, playout threads, traffic
sources, QoS managers) runs as a cooperative generator on a single
event queue, giving bit-identical runs for identical seeds.

The design follows the classic process-interaction style (a minimal,
from-scratch SimPy-alike): generators yield :class:`Event` objects and
are resumed when those events trigger.
"""

from repro.des.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.des.resources import QueueFullError, Store
from repro.des.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "QueueFullError",
    "RngRegistry",
    "Simulator",
    "Store",
    "Timeout",
]
