"""Multimedia news-on-demand under network congestion.

One of the paper's motivating applications ("multimedia news
services"). A news bulletin — anchor video synchronized with audio,
plus still photographs — is delivered while cross traffic congests
the subscriber's access link mid-session. The run shows both recovery
mechanisms working together:

* short-term: the client's buffer monitor and skew controller keep
  the anchor's lips in sync through the epoch;
* long-term: RTCP feedback drives the server's quality grading —
  video rate drops during the epoch and recovers after it, while the
  audio ("users can tolerate lower video quality rather than 'not
  hear well'") stays at full quality.

Run:  python examples/adaptive_news_service.py
"""

from repro.analysis import render_series, render_table
from repro.core import EngineConfig, ServiceEngine, TrafficConfig
from repro.hml import DocumentBuilder, serialize
from repro.net import CoreNetworkLayer
from repro.server.qos_manager import GradingPolicy


#: the bulletin has no outgoing links; the set is self-contained
SCENARIO_CLOSED = True
#: the subscriber's access link, for the static bandwidth check
SCENARIO_CAPACITY_MBPS = 2.5


def scenario_documents() -> dict[str, str]:
    """The bulletin as markup, for the scenario analyzer."""
    return {"bulletin": news_bulletin()}


def news_bulletin(duration: float = 30.0) -> str:
    doc = (
        DocumentBuilder("Evening news bulletin")
        .heading(1, "The evening news")
        .text("Headlines: broadband networks reach the campus.")
        .image("imgsrv:/photo1.gif", "PHOTO1", startime=0.0,
               duration=duration / 2, note="lead photograph")
        .image("imgsrv:/photo2.gif", "PHOTO2", startime=duration / 2,
               duration=duration / 2)
        .audio_video("audsrv:/anchor.au", "vidsrv:/anchor.mpg",
                     "ANCHOR_A", "ANCHOR_V", startime=0.0,
                     duration=duration, note="news anchor")
        .build()
    )
    return serialize(doc)


def main() -> None:
    duration = 30.0
    cfg = EngineConfig(
        access_rate_bps=2.5e6,
        grading_policy=GradingPolicy(),  # paper defaults: video-first
        traffic=[TrafficConfig(kind="poisson", rate_bps=1.4e6,
                               start_at=8.0, stop_at=20.0)],
    )
    engine = ServiceEngine(cfg, layers=[CoreNetworkLayer()])
    engine.add_server("news-srv",
                      documents={"bulletin": (news_bulletin(duration),
                                              "news")})
    print("Delivering a 30 s news bulletin over a 2.5 Mb/s access link;")
    print("cross traffic congests it during [8, 20) s...\n")
    result = engine.orchestrator.run_full_session("news-srv", "bulletin",
                                     user_id="subscriber", contract="premium")
    assert result.completed

    print(render_table(
        "Per-stream outcome",
        ["stream", "frames", "gaps", "lost pkts", "mean grade"],
        [[sid, s.frames_played, s.gaps, s.packets_lost,
          f"{s.mean_grade:.2f}"]
         for sid, s in sorted(result.streams.items())],
    ))

    traj = result.grade_trajectories.get("ANCHOR_V", [])
    print("\n--- video grade trajectory (the long-term mechanism) ---")
    if traj:
        print(render_series("grade changes over time", "t (s)",
                            "grade (0=best)",
                            [(f"{t:.1f}", g) for t, g in traj]))
    decisions = result.grading_decisions
    degrades = sum(1 for d in decisions if d.action == "degrade")
    upgrades = sum(1 for d in decisions if d.action == "upgrade")
    print(f"\ngrading decisions: {degrades} degrades, {upgrades} upgrades")
    print(f"audio stayed at grade {result.mean_audio_grade():.1f} "
          "(video pays first)")
    print(f"worst lip-sync skew: {result.worst_skew_s() * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
