"""The ``python -m repro trace`` subcommand and the ``--json`` reporter."""

from __future__ import annotations

import io
import json

from repro.__main__ import main
from repro.analysis import Reporter
from repro.obs import read_jsonl


def test_reporter_text_mode_streams_tables():
    out = io.StringIO()
    rep = Reporter(json_mode=False, stream=out)
    rep.table("T", ["a", "b"], [[1, 2]])
    rep.value("k", 3)
    rep.close()
    text = out.getvalue()
    assert "T" in text and "a" in text and "k: 3" in text


def test_reporter_json_mode_single_document():
    out = io.StringIO()
    rep = Reporter(json_mode=True, stream=out)
    rep.table("T", ["a"], [[1]])
    rep.text("note", "body")
    rep.value("k", 3)
    rep.close()
    doc = json.loads(out.getvalue())
    assert doc["values"] == {"k": 3}
    assert doc["sections"][0] == {"title": "T", "headers": ["a"],
                                  "rows": [[1]]}
    assert doc["sections"][1] == {"title": "note", "text": "body"}


def test_cli_list_json(capsys):
    assert main(["list", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    titles = [s["title"] for s in doc["sections"]]
    assert titles == ["experiments", "figures"]


def test_cli_trace_record_then_summarize(tmp_path, capsys):
    jl = tmp_path / "t.jsonl"
    cj = tmp_path / "t.json"
    assert main(["trace", "--record", str(jl), "--chrome", str(cj),
                 "--clients", "2", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["values"]["sessions_completed"] == 2
    assert doc["values"]["jsonl_events"] > 0
    events = read_jsonl(jl)
    assert len(events) == doc["values"]["jsonl_events"]
    chrome = json.loads(cj.read_text())
    assert len(chrome["traceEvents"]) == doc["values"]["chrome_records"]

    assert main(["trace", str(jl)]) == 0
    text = capsys.readouterr().out
    assert "Top event kinds" in text
    assert "Session timelines" in text
    assert "sess-1" in text


def test_cli_trace_usage_without_args(capsys):
    assert main(["trace"]) == 2
    assert "usage" in capsys.readouterr().out


def test_cli_run_figure_still_works(capsys):
    assert main(["run", "table1"]) == 0
    assert "keywords" in capsys.readouterr().out
