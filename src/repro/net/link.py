"""Point-to-point links: finite rate, propagation delay, drop-tail queue.

Queueing delay and overflow loss — the "network's load conditions and
probabilistic behavior" the paper's buffering layer exists to absorb —
emerge here rather than being injected as closed-form noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.des import QueueFullError, Simulator, Store
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.impairments import GilbertElliottLoss

__all__ = ["Link", "LinkStats"]


@dataclass(slots=True)
class LinkStats:
    """Counters a link maintains for experiment reporting."""

    tx_packets: int = 0
    tx_bytes: int = 0
    queue_drops: int = 0
    loss_drops: int = 0
    #: packets discarded because the link was administratively down
    #: (fault injection), at ingress or while in flight
    fault_drops: int = 0
    busy_time: float = 0.0
    occupancy_samples: list[tuple[float, int]] = field(default_factory=list)

    def utilisation(self, elapsed: float) -> float:
        return 0.0 if elapsed <= 0 else self.busy_time / elapsed


class Link:
    """Unidirectional link ``src -> dst``.

    One transmitter process drains the drop-tail queue at
    ``rate_bps``; after serialisation each packet propagates for
    ``delay_s`` and is then handed to ``on_arrival`` (wired by the
    :class:`~repro.net.topology.Network` to the next hop). Random
    loss (e.g. a noisy last-mile) is modelled by an optional
    Gilbert–Elliott process applied after propagation.
    """

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        rate_bps: float,
        delay_s: float,
        queue_packets: int = 100,
        loss_model: "GilbertElliottLoss | None" = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.queue: Store = Store(sim, capacity=queue_packets)
        self.loss_model = loss_model
        #: administrative state; a downed link drops everything offered
        #: to it and everything still propagating when it went down
        self.up = True
        self.stats = LinkStats()
        self.on_arrival: Callable[[Packet], None] | None = None
        self.on_drop: Callable[[Packet, str], None] | None = None
        sim.process(self._transmitter(), name=f"link:{src}->{dst}")

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def serialization_delay(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    # -- fault injection ---------------------------------------------------
    def set_up(self, up: bool) -> None:
        """Administratively raise or cut the link (fault injection)."""
        if up == self.up:
            return
        self.up = up
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "fault.link", self.name,
                                  state="up" if up else "down")

    def _drop_down(self, pkt: Packet) -> None:
        self.stats.fault_drops += 1
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "link.drop", self.name,
                                  reason="down", seq=pkt.seq,
                                  flow=pkt.flow_id, session=pkt.session,
                                  frame=pkt.frame_seq)
        if self.on_drop is not None:
            self.on_drop(pkt, "drop-down")

    # -- ingress ---------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Offer a packet; returns False (and counts a drop) if full."""
        if not self.up:
            self._drop_down(pkt)
            return False
        try:
            self.queue.put_nowait(pkt)
            if self.sim._tracing_detail:
                self.sim._tracer.emit(self.sim.now, "link.enqueue",
                                      self.name, depth=self.queue.level,
                                      flow=pkt.flow_id, seq=pkt.seq,
                                      session=pkt.session,
                                      frame=pkt.frame_seq)
            return True
        except QueueFullError:
            self.stats.queue_drops += 1
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "link.drop", self.name,
                                      reason="queue", seq=pkt.seq,
                                      flow=pkt.flow_id,
                                      session=pkt.session,
                                      frame=pkt.frame_seq)
            if self.on_drop is not None:
                self.on_drop(pkt, "drop-queue")
            return False

    # -- transmitter process ----------------------------------------------
    def _transmitter(self):
        while True:
            pkt: Packet = yield self.queue.get()
            ser = self.serialization_delay(pkt.size_bytes)
            yield self.sim.timeout(ser)
            self.stats.busy_time += ser
            self.stats.tx_packets += 1
            self.stats.tx_bytes += pkt.size_bytes
            self.sim.call_later(self.delay_s, lambda p=pkt: self._propagated(p))

    def _propagated(self, pkt: Packet) -> None:
        if not self.up:
            self._drop_down(pkt)
            return
        if self.loss_model is not None and (
            self.loss_model.is_lost(flow=pkt.flow_id, seq=pkt.seq,
                                    session=pkt.session, frame=pkt.frame_seq)
            if self.sim._tracing_detail
            else self.loss_model.is_lost()
        ):
            self.stats.loss_drops += 1
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "link.drop", self.name,
                                      reason="loss", seq=pkt.seq,
                                      flow=pkt.flow_id,
                                      session=pkt.session,
                                      frame=pkt.frame_seq)
            if self.on_drop is not None:
                self.on_drop(pkt, "drop-loss")
            return
        if self.on_arrival is not None:
            pkt.hops += 1
            self.on_arrival(pkt)

    def sample_occupancy(self) -> None:
        """Record (now, queue length) for occupancy-trace experiments."""
        self.stats.occupancy_samples.append((self.sim.now, self.queue.level))
