"""Flight-recorder overhead benchmark.

The flight recorder's promise is "always on": attaching one to a
production-shaped population run must cost <5% wall time versus
running with tracing disabled entirely. The two-tier guard
(``sim._tracing_detail``) is what makes this possible — a
``detail=False`` tracer never sees the per-packet firehose, only the
~1% control-plane tier.

Run standalone for a timing table:

    PYTHONPATH=src python benchmarks/bench_perf_flightrec.py

or through pytest:

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_flightrec.py -q

Set ``OBS_BENCH_SMOKE=1`` (CI) to shrink the workload and relax the
threshold for noisy shared runners.
"""

from __future__ import annotations

import os
import time

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.obs import FlightRecorder

SMOKE = os.environ.get("OBS_BENCH_SMOKE", "") not in ("", "0")
#: max tolerated slowdown of flight-recorded vs tracing-disabled
THRESHOLD = 0.25 if SMOKE else 0.05
REPEATS = 3 if SMOKE else 9
N_CLIENTS = 2 if SMOKE else 3
DURATION_S = 2.0 if SMOKE else 4.0


def population_run(tracer=None) -> int:
    """One ``population_clean``-shaped run; returns completed count."""
    eng = ServiceEngine(EngineConfig(seed=11), tracer=tracer)
    eng.add_server(
        "srv1",
        documents={"doc": (av_markup(DURATION_S, True), "bench")},
    )
    pop = eng.orchestrator.run_population(
        N_CLIENTS, "srv1", "doc", stagger_s=0.4
    )
    return len(pop.completed())


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure() -> tuple[float, float]:
    """(tracing disabled, flight recorder attached) best-of wall times."""
    population_run()  # warm-up outside timing
    disabled = best_of(lambda: population_run(None))
    recorded = best_of(lambda: population_run(FlightRecorder()))
    return disabled, recorded


# -- pytest entry points ------------------------------------------------------

def test_flight_recorder_overhead_under_threshold():
    disabled, recorded = measure()
    overhead = recorded / disabled - 1.0
    assert overhead < THRESHOLD, (
        f"flight recorder costs {overhead:.1%} on a population run "
        f"(disabled {disabled * 1e3:.1f} ms, "
        f"recorded {recorded * 1e3:.1f} ms)"
    )


def test_flight_recorder_captures_control_plane_only():
    recorder = FlightRecorder(max_events=100_000)
    completed = population_run(recorder)
    assert completed == N_CLIENTS
    kinds = {e.kind for e in recorder.ring}
    # Control-plane lifecycle events are present...
    assert "session" in kinds
    assert "admission.accept" in kinds
    # ...while the detail-tier firehose never reached the recorder.
    assert "kernel.event" not in kinds
    assert "link.enqueue" not in kinds
    assert "rtp.recv" not in kinds


def test_flight_recorder_ring_is_bounded():
    recorder = FlightRecorder(max_events=16)
    population_run(recorder)
    assert len(recorder.ring) == 16
    assert recorder.dropped_events > 0


# -- standalone report --------------------------------------------------------

def main() -> int:
    from repro.analysis import render_table

    disabled, recorded = measure()
    recorder = FlightRecorder()
    population_run(recorder)
    print(render_table(
        f"Flight recorder overhead (threshold {THRESHOLD:.0%}, "
        f"{'smoke' if SMOKE else 'full'} mode)",
        ["workload", "disabled_ms", "recorded_ms", "overhead",
         "ring_events"],
        [[
            f"population x{N_CLIENTS}",
            f"{disabled * 1e3:.1f}",
            f"{recorded * 1e3:.1f}",
            f"{(recorded / disabled - 1.0) * 100:+.1f}%",
            len(recorder.ring),
        ]],
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
