"""Sharded population benchmarks: single points and scaling curves.

Backs ``python -m repro bench --clients N --shards K`` and
``--scale-curve``. A *point* runs one supervised sharded population
and reports the merged metrics, digest, completeness and per-shard
lifecycle; a *curve* sweeps N and emits the scaling artifact
(``BENCH_population_scale.json``: events/sec and wall_s vs N) for the
bench trajectory.

Per-cell admission: each cell is its own engine, so the admission
controller sees one cell's concurrency, not the population's. The
default config raises per-cell capacity so a full cell admits all its
viewers; population-level admission studies stay on the monolithic
path where one controller sees every session.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.shard.plan import ShardPlan, ShardWorkload
from repro.shard.result import ShardedRunResult
from repro.shard.supervisor import ShardSupervisor

__all__ = ["shard_workload", "run_sharded", "sharded_artifact",
           "run_scale_curve", "SCALE_POINTS", "SCALE_SMOKE_POINTS"]

BENCH_SCHEMA = "repro.bench"
BENCH_SCHEMA_VERSION = 1

#: default N sweep of the scaling curve (>= 10^4 at the top)
SCALE_POINTS = (64, 256, 1024, 10240)
SCALE_SMOKE_POINTS = (8, 16, 32)

#: default per-cell EngineConfig overrides (see module docstring)
DEFAULT_CELL_CONFIG = {"admission_capacity_bps": 400e6}


def shard_workload(duration_s: float = 6.0, stagger_s: float = 0.4,
                   with_images: bool = True,
                   config: dict[str, Any] | None = None,
                   **kwargs: Any) -> ShardWorkload:
    """The standard bench workload (population_clean's A/V document)."""
    from repro.core.experiments import av_markup

    cfg = dict(DEFAULT_CELL_CONFIG)
    if config:
        cfg.update(config)
    return ShardWorkload(
        markup=av_markup(duration_s, with_images),
        stagger_s=stagger_s, config=cfg, **kwargs,
    )


def run_sharded(
    n_clients: int,
    n_shards: int,
    *,
    seed: int = 11,
    cell_clients: int = 8,
    duration_s: float = 6.0,
    stagger_s: float = 0.4,
    with_images: bool = True,
    config: dict[str, Any] | None = None,
    workload: ShardWorkload | None = None,
    tolerate_failures: bool = False,
    tracer: Any | None = None,
    **supervisor_kwargs: Any,
) -> ShardedRunResult:
    """One supervised sharded population run.

    Raises :class:`~repro.shard.result.ShardFailure` when shards fail
    permanently and ``tolerate_failures`` is off.
    """
    plan = ShardPlan(n_clients=n_clients, n_shards=n_shards,
                     cell_clients=cell_clients, seed=seed)
    if workload is None:
        workload = shard_workload(duration_s, stagger_s, with_images,
                                  config)
    supervisor = ShardSupervisor(
        plan, workload, tolerate_failures=tolerate_failures,
        tracer=tracer, **supervisor_kwargs,
    )
    return supervisor.run()


def sharded_artifact(result: ShardedRunResult, *, smoke: bool = False,
                     duration_s: float = 6.0,
                     name: str = "population_shard") -> dict[str, Any]:
    """A ``repro.bench`` artifact for one sharded point.

    Carries the standard trajectory keys (wall_s, events,
    events_per_sec, sessions, completed, qoe, service, timeseries)
    plus the sharding extras: digest, completeness, shard lifecycle.
    """
    from repro.shard.merge import qoe_summary_of

    events_per_sec = (result.events / result.wall_s
                      if result.wall_s > 0 else 0.0)
    artifact: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "name": name,
        "scenario": name,
        "description": "supervised sharded population run",
        "smoke": smoke,
        "seed": result.seed,
        "clients": result.clients,
        "duration_s": duration_s,
        "topology": "star",
        "shards": result.n_shards,
        "cell_clients": result.cell_clients,
        "wall_s": result.wall_s,
        "cpu_wall_s": result.cpu_wall_s,
        "events": result.events,
        "events_per_sec": events_per_sec,
        "sessions": result.sessions(),
        "completed": result.completed_sessions(),
        "qoe": qoe_summary_of(result.merged),
        "digest": result.digest,
        "completeness": result.completeness,
        "cells_total": result.cells_total,
        "cells_merged": result.cells_merged,
        "missing_cells": list(result.missing_cells),
        "shard_lifecycle": [s.to_dict() for s in result.shards],
        "interrupted": result.interrupted,
    }
    if result.merged.get("service"):
        artifact["service"] = result.merged["service"]
    if result.merged.get("timeseries"):
        artifact["timeseries"] = result.merged["timeseries"]
    return artifact


def run_scale_curve(
    points: tuple[int, ...] | list[int] | None = None,
    *,
    n_shards: int = 4,
    seed: int = 11,
    cell_clients: int = 8,
    duration_s: float = 2.0,
    stagger_s: float = 0.25,
    smoke: bool = False,
    tolerate_failures: bool = False,
    progress: Callable[[dict[str, Any]], None] | None = None,
    **supervisor_kwargs: Any,
) -> dict[str, Any]:
    """Sweep population sizes; the scaling-curve artifact.

    The curve uses a lighter cell than the headline bench (short
    duration, no discrete images) so the 10^4-client point stays
    tractable on one machine; throughput comparisons hold within the
    curve, not against other scenarios. The artifact's top-level
    metrics mirror the largest point so trend tooling reads it like
    any bench artifact.
    """
    if points is None:
        points = SCALE_SMOKE_POINTS if smoke else SCALE_POINTS
    workload = shard_workload(duration_s, stagger_s, with_images=False)
    rows: list[dict[str, Any]] = []
    for n in points:
        result = run_sharded(
            n, n_shards, seed=seed, cell_clients=cell_clients,
            workload=workload, tolerate_failures=tolerate_failures,
            **supervisor_kwargs,
        )
        rows.append({
            "clients": n,
            "wall_s": result.wall_s,
            "cpu_wall_s": result.cpu_wall_s,
            "events": result.events,
            "events_per_sec": (result.events / result.wall_s
                               if result.wall_s > 0 else 0.0),
            "sessions": result.sessions(),
            "completed": result.completed_sessions(),
            "completeness": result.completeness,
            "digest": result.digest,
        })
        if progress is not None:
            progress(rows[-1])
    top = rows[-1]
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "name": "population_scale",
        "scenario": "population_scale",
        "description": "sharded population scaling curve "
                       "(events/sec and wall_s vs N)",
        "smoke": smoke,
        "seed": seed,
        "shards": n_shards,
        "cell_clients": cell_clients,
        "duration_s": duration_s,
        "topology": "star",
        "points": rows,
        # headline = the largest point, for trend/report tooling
        "clients": top["clients"],
        "wall_s": top["wall_s"],
        "events": top["events"],
        "events_per_sec": top["events_per_sec"],
        "sessions": top["sessions"],
        "completed": top["completed"],
        "completeness": top["completeness"],
    }
