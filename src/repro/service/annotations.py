"""User annotations on viewed documents (§5).

"The user may also annotate the selected document with his own
remarks." Annotations are the user's local remarks, attached to a
document and optionally to one of its media components, timestamped
in both wall time and presentation time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["Annotation", "AnnotationStore"]

_annotation_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Annotation:
    annotation_id: int
    document: str
    text: str
    author: str
    created_at: float  # simulation wall time
    element_id: str | None = None  # None: the whole document
    presentation_time_s: float | None = None  # where in the scenario

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError("annotation text must be non-empty")


class AnnotationStore:
    """The user's private annotation collection."""

    def __init__(self, author: str) -> None:
        self.author = author
        self._by_doc: dict[str, list[Annotation]] = {}

    def annotate(
        self,
        document: str,
        text: str,
        now: float,
        element_id: str | None = None,
        presentation_time_s: float | None = None,
    ) -> Annotation:
        ann = Annotation(
            annotation_id=next(_annotation_ids),
            document=document, text=text, author=self.author,
            created_at=now, element_id=element_id,
            presentation_time_s=presentation_time_s,
        )
        self._by_doc.setdefault(document, []).append(ann)
        return ann

    def remove(self, annotation_id: int) -> bool:
        for anns in self._by_doc.values():
            for i, a in enumerate(anns):
                if a.annotation_id == annotation_id:
                    del anns[i]
                    return True
        return False

    def for_document(self, document: str) -> list[Annotation]:
        return list(self._by_doc.get(document, []))

    def for_element(self, document: str, element_id: str) -> list[Annotation]:
        return [a for a in self._by_doc.get(document, [])
                if a.element_id == element_id]

    def documents(self) -> list[str]:
        return sorted(d for d, anns in self._by_doc.items() if anns)

    def __len__(self) -> int:
        return sum(len(a) for a in self._by_doc.values())
