"""ASCII table/series rendering — the benches' output format.

The paper's figures are regenerated as text artefacts; these helpers
keep every bench's output uniform and diff-able.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_series"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Aligned ASCII table with a title rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(title: str, xlabel: str, ylabel: str,
                  points: Sequence[tuple[Any, Any]],
                  width: int = 40) -> str:
    """A two-column series with a proportional ASCII bar per row."""
    if not points:
        return f"{title}\n(no data)"
    ys = [float(y) for _, y in points]
    ymax = max(max(ys), 1e-12)
    out = [title, "=" * len(title), f"{xlabel:>12} | {ylabel}"]
    for x, y in points:
        bar = "#" * int(round(float(y) / ymax * width))
        out.append(f"{_fmt(x):>12} | {_fmt(float(y)):>10} {bar}")
    return "\n".join(out)
