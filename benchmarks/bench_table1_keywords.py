"""Table 1 — the markup language's keyword table.

Regenerates the paper's Table 1 ("Description of basic keywords")
from the lexer's keyword registry (not from a hard-coded copy) and
benchmarks lexer throughput on realistic documents.
"""

from repro.analysis import render_table
from repro.hml import serialize, tokenize
from repro.hml.examples import figure2_document
from repro.hml.tokens import KEYWORDS, keyword_table_rows

#: The families the paper's Table 1 lists.
PAPER_FAMILIES = [
    "TITLE",
    "H1, H2, H3",
    "PAR, SEP",
    "SOURCE, ID",
    "STARTIME, DURATION, REPEAT",  # REPEAT is the §7 extension keyword
    "NOTE",
]


def test_table1_keyword_table(report, once):
    rows = once(keyword_table_rows)
    # Every family of the paper's table appears in the regenerated one.
    names = [r[0] for r in rows]
    for family in PAPER_FAMILIES:
        assert family in names, f"missing Table 1 family {family!r}"
    # Media-type indicators are present (paper lists TEXT IMG AU VI;
    # the grammar adds AU_VI).
    assert any("IMG" in n and "AU" in n for n in names)
    # All keywords in rows exist in the registry, and the registry has
    # no keyword missing from the table.
    listed = {k for n, _ in rows for k in n.replace(",", " ").split()}
    assert listed == set(KEYWORDS)
    report("table1_keywords",
           render_table("Table 1 — Description of basic keywords",
                        ["Keyword", "Description"], rows))


def test_lexer_throughput(benchmark):
    markup = serialize(figure2_document()) * 50
    tokens = benchmark(tokenize, markup)
    assert len(tokens) > 1000
