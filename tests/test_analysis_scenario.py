"""Scenario-analyzer rules: each fires on its known-bad fixture, every
shipped scenario lints clean, and the static bandwidth verdict agrees
with the runtime admission controller."""

import os

from repro.analysis import (
    SCENARIO_RULES,
    Severity,
    analyze_document,
    analyze_set,
    check_bandwidth,
)
from repro.analysis.corpus import shipped_scenario_sets
from repro.analysis.runner import lint_hml_paths
from repro.analysis.scenario_rules import ScenarioSet
from repro.core.experiments import av_markup
from repro.hml import parse
from repro.model import PresentationScenario
from repro.server.accounts import PricingContract
from repro.server.admission import AdmissionController, AdmissionRequest
from repro.server.flow_scheduler import FlowScheduler
from repro.media.encodings import default_registry

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "hml")

CONTRACT = PricingContract("basic", 1.0, 0.0, 0.0)


def fixture(name):
    return os.path.join(FIXTURES, name)


def rule_ids(diags):
    return {d.rule_id for d in diags}


def test_registry_lists_all_scenario_rules():
    assert set(SCENARIO_RULES.ids()) == {
        "scenario-sync-interval", "scenario-link-window",
        "scenario-link-dangling", "scenario-bandwidth",
    }


def test_sync_interval_rule_fires():
    diags = lint_hml_paths([fixture("bad_sync_interval.hml")])
    assert "scenario-sync-interval" in rule_ids(diags)
    bad = [d for d in diags if d.rule_id == "scenario-sync-interval"]
    assert all(d.is_error for d in bad)


def test_link_window_rule_fires():
    diags = lint_hml_paths([fixture("bad_link_window.hml")])
    window = [d for d in diags if d.rule_id == "scenario-link-window"]
    assert len(window) == 1 and window[0].is_error
    assert "outside" in window[0].message


def test_dangling_rule_errors_in_closed_set():
    diags = lint_hml_paths([fixture("dangling_set")], closed=True)
    dangling = [d for d in diags if d.rule_id == "scenario-link-dangling"]
    assert len(dangling) == 1
    assert dangling[0].is_error
    assert "missing-doc" in dangling[0].message


def test_dangling_rule_warns_in_open_set():
    diags = lint_hml_paths([fixture("dangling_set")], closed=False)
    dangling = [d for d in diags if d.rule_id == "scenario-link-dangling"]
    assert len(dangling) == 1
    assert dangling[0].severity is Severity.WARNING


def test_bandwidth_rule_degraded_feasible_is_warning():
    diags = lint_hml_paths([fixture("bad_bandwidth.hml")],
                           capacity_bps=2e6)
    bw = [d for d in diags if d.rule_id == "scenario-bandwidth"]
    assert len(bw) == 1
    assert bw[0].severity is Severity.WARNING
    assert "degradation" in bw[0].message


def test_bandwidth_rule_infeasible_is_error():
    diags = lint_hml_paths([fixture("bad_bandwidth.hml")],
                           capacity_bps=0.5e6)
    bw = [d for d in diags if d.rule_id == "scenario-bandwidth"]
    assert len(bw) == 1
    assert bw[0].is_error


def test_shipped_scenarios_lint_clean():
    sets = shipped_scenario_sets()
    # the builtin corpus plus every example module's hook
    assert {"figure2", "experiment-av", "hermes-routing"} <= set(sets)
    assert {"quickstart", "virtual_gallery", "adaptive_news_service",
            "service_operator", "distance_education"} <= set(sets)
    for sset in sets.values():
        errors = [d for d in analyze_set(sset) if d.is_error]
        assert errors == [], [d.format() for d in errors]


def test_analyze_document_defaults_to_open_singleton_set():
    doc = parse(av_markup(5.0, True))
    diags = analyze_document("solo", doc)
    assert not [d for d in diags if d.is_error]


# -- static verdict vs the runtime admission controller ----------------

def _peak_and_verdict(markup: str, capacity_bps: float):
    scenario = PresentationScenario.from_markup(markup)
    flows = FlowScheduler(default_registry()).compute(scenario)
    verdict = check_bandwidth(scenario.schedule, capacity_bps)
    return flows.peak_rate_bps(), verdict


def _runtime_admits(peak_bps: float, capacity_bps: float) -> bool:
    # open_fraction=1.0: the whole capacity admits any contract, so
    # the controller's limit equals the analyzer's declared capacity.
    ctrl = AdmissionController(capacity_bps, open_fraction=1.0)
    result = ctrl.decide(AdmissionRequest(
        session_id="s1", user_id="u", contract=CONTRACT,
        required_bw_bps=peak_bps))
    return result.admitted


def test_static_peak_matches_flow_scenario_peak():
    markup = av_markup(10.0, True)
    peak, verdict = _peak_and_verdict(markup, 10e6)
    assert abs(peak - verdict.peak_bps) < 1e-6


def test_bandwidth_verdict_agrees_with_admission_feasible():
    markup = av_markup(10.0, True)  # one A/V pair, ~1.564 Mb/s
    peak, verdict = _peak_and_verdict(markup, 10e6)
    assert verdict.feasible
    assert _runtime_admits(peak, 10e6)


def test_bandwidth_verdict_agrees_with_admission_infeasible():
    markup = av_markup(10.0, True)
    peak, verdict = _peak_and_verdict(markup, 1e6)  # below the pair's rate
    assert not verdict.feasible
    assert not _runtime_admits(peak, 1e6)


def test_degraded_verdict_matches_negotiated_admission():
    markup = av_markup(10.0, True)
    peak, verdict = _peak_and_verdict(markup, 1e6)
    # Statically: infeasible at best grades, feasible at bottom rungs.
    assert not verdict.feasible
    assert verdict.feasible_degraded
    # At runtime the same gap is bridged by negotiating the session
    # down toward its floor instead of rejecting it.
    ctrl = AdmissionController(1e6, open_fraction=1.0)
    result = ctrl.decide(AdmissionRequest(
        session_id="s1", user_id="u", contract=CONTRACT,
        required_bw_bps=peak, min_bw_bps=verdict.degraded_peak_bps))
    assert result.admitted and result.negotiated


def test_closed_set_resolution_across_documents():
    sset = ScenarioSet(
        name="pair",
        documents={
            "a": parse("<TITLE> A </TITLE>\n"
                       "<AU> STARTIME=0 DURATION=2 SOURCE=s:/a.au ID=X "
                       "</AU>\n<HLINK> AT 2 b </HLINK>\n"),
            "b": parse("<TITLE> B </TITLE>\n"
                       "<AU> STARTIME=0 DURATION=2 SOURCE=s:/b.au ID=Y "
                       "</AU>\n"),
        },
        closed=True,
    )
    assert not [d for d in analyze_set(sset) if d.is_error]
