"""Deterministic fault injection and recovery.

The paper's service is built to survive degraded delivery (skew
control, media-quality grading, suspend-grace navigation); this
package makes *component failure* a schedulable, reproducible workload
dimension on top of those mechanisms:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan`: link
  down/flap, media-server crash/restart, control-channel partition
  and impairment, all pinned to the DES clock;
* :mod:`repro.faults.injector` — installs a plan on a
  :class:`~repro.core.engine.ServiceEngine` before a run;
* :mod:`repro.faults.control` — control-path machinery: endpoint
  drop/delay state, RPC retry policy, heartbeat monitoring;
* :mod:`repro.faults.recovery` — media-server failure detection and
  stream failover to replicas (or the restarted primary);
* :mod:`repro.faults.digest` — canonical result hashing for
  determinism assertions;
* :mod:`repro.faults.scenarios` — ready-made chaos populations used
  by the CLI, CI and tests.

Everything is driven by the engine's seeded RNG registry: identical
seed + identical plan reproduces identical outcomes, and an empty
plan leaves a run byte-identical to one without the subsystem.
"""

from repro.faults.control import ControlFaultState, HeartbeatMonitor, RetryPolicy
from repro.faults.digest import population_digest
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ControlImpairFault,
    ControlPartitionFault,
    FaultPlan,
    LinkDownFault,
    LinkFlapFault,
    ServerCrashFault,
)
from repro.faults.recovery import MediaWatchdog

__all__ = [
    "FaultPlan",
    "LinkDownFault",
    "LinkFlapFault",
    "ServerCrashFault",
    "ControlPartitionFault",
    "ControlImpairFault",
    "FaultInjector",
    "ControlFaultState",
    "RetryPolicy",
    "HeartbeatMonitor",
    "MediaWatchdog",
    "population_digest",
]
