"""Unit tests for the media object store."""

import pytest

from repro.des import RngRegistry
from repro.media import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    MediaStore,
    MediaType,
    default_registry,
)


@pytest.fixture
def store():
    s = MediaStore(default_registry(), RngRegistry(seed=3))
    s.add(DiscreteMediaObject("img1", MediaType.IMAGE, "JPEG", size_bytes=40_000))
    s.add(DiscreteMediaObject("txt1", MediaType.TEXT, "plain", size_bytes=2_000))
    s.add(ContinuousMediaObject("vid1", MediaType.VIDEO, "MPEG", duration_s=3.0))
    s.add(ContinuousMediaObject("aud1", MediaType.AUDIO, "PCM-family", duration_s=3.0))
    return s


def test_catalogue_basics(store):
    assert len(store) == 4
    assert "vid1" in store and "nope" not in store
    assert store.ids() == ["aud1", "img1", "txt1", "vid1"]
    assert store.ids(MediaType.IMAGE) == ["img1"]
    with pytest.raises(KeyError):
        store.get("nope")


def test_duplicate_id_rejected(store):
    with pytest.raises(ValueError):
        store.add(DiscreteMediaObject("img1", MediaType.IMAGE, "GIF", size_bytes=1))


def test_unknown_codec_rejected(store):
    with pytest.raises(KeyError):
        store.add(ContinuousMediaObject("v9", MediaType.VIDEO, "H264", duration_s=1.0))


def test_trace_synthesis_deterministic(store):
    t1 = store.trace("vid1")
    # A fresh store with the same seed produces the identical trace.
    s2 = MediaStore(default_registry(), RngRegistry(seed=3))
    s2.add(ContinuousMediaObject("vid1", MediaType.VIDEO, "MPEG", duration_s=3.0))
    t2 = s2.trace("vid1")
    assert [f.size_bytes for f in t1.frames] == [f.size_bytes for f in t2.frames]
    assert len(t1) == 75


def test_trace_of_discrete_object_rejected(store):
    with pytest.raises(ValueError):
        store.trace("img1")
    with pytest.raises(ValueError):
        store.frame_source("txt1")


def test_blob_size(store):
    assert store.blob_size("img1") == 40_000
    with pytest.raises(ValueError):
        store.blob_size("vid1")


def test_codec_for(store):
    assert store.codec_for("vid1").name == "MPEG"
    assert store.codec_for("aud1").name == "PCM-family"
    with pytest.raises(ValueError):
        store.codec_for("img1")


def test_frame_source_delivery(store):
    src = store.frame_source("aud1")
    f = src.next_frame()
    assert f.stream_id == "aud1"
    assert f.size_bytes == 160  # 64 kb/s / 8 / 50 fps
