"""Unit tests for the quality converter and Server QoS Manager."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.media import MediaType, default_registry
from repro.media.traces import FrameSource
from repro.rtp.packets import RtcpReceiverReport
from repro.server import (
    GradingPolicy,
    MediaStreamQualityConverter,
    ServerQoSManager,
)

REG = default_registry()


def video_converter(floor=4, allow_suspend=True, seed=1):
    src = FrameSource("V", REG.get("MPEG"),
                      RngRegistry(seed=seed).stream("v"))
    return MediaStreamQualityConverter(src, floor_grade=floor,
                                       allow_suspend=allow_suspend)


def audio_converter(floor=2, seed=1):
    src = FrameSource("A", REG.get("PCM-family"),
                      RngRegistry(seed=seed).stream("a"))
    return MediaStreamQualityConverter(src, floor_grade=floor)


def report(stream_id, loss=0.0, jitter=0.0, t=0.0):
    return RtcpReceiverReport(
        ssrc=1, stream_id=stream_id, fraction_lost=loss, cumulative_lost=0,
        highest_seq=100, jitter_s=jitter, mean_delay_s=0.02,
        interval_received=25, sent_at=t,
    )


# ------------------------------------------------------------- converter
def test_converter_degrades_to_floor_then_suspends():
    conv = video_converter(floor=2)
    grades = [conv.grade_index]
    while conv.degrade(now=0.0):
        grades.append(conv.grade_index)
    assert grades == [0, 1, 2, 5]  # 5 = suspend sentinel index
    assert conv.suspended
    assert not conv.can_degrade


def test_converter_without_suspend_stops_at_floor():
    conv = video_converter(floor=2, allow_suspend=False)
    while conv.degrade(now=0.0):
        pass
    assert conv.grade_index == 2
    assert not conv.suspended


def test_converter_upgrade_reenters_from_suspend():
    conv = video_converter(floor=1)
    conv.degrade(0.0)
    conv.degrade(1.0)  # at floor 1 -> suspend
    assert conv.suspended
    assert conv.upgrade(2.0)
    assert conv.grade_index == 4  # worst real rung
    while conv.upgrade(3.0):
        pass
    assert conv.grade_index == 0


def test_converter_floor_clamped_to_ladder():
    conv = video_converter(floor=99)
    assert conv.floor_grade == 4  # deepest real rung


def test_converter_history_records_reasons():
    conv = video_converter()
    conv.degrade(1.5, reason="loss spike")
    assert conv.history[0].reason == "loss spike"
    assert conv.grade_trajectory() == [(1.5, 1)]


# ------------------------------------------------------------- manager
def manager(sim=None, **policy_kw):
    sim = sim or Simulator()
    mgr = ServerQoSManager(sim, GradingPolicy(**policy_kw))
    vconv = video_converter()
    aconv = audio_converter()
    mgr.register_stream("V", MediaType.VIDEO, vconv)
    mgr.register_stream("A", MediaType.AUDIO, aconv)
    return sim, mgr, vconv, aconv


def test_congestion_degrades_video_first():
    sim, mgr, vconv, aconv = manager()
    mgr.on_report(report("A", loss=0.2))  # audio suffering...
    assert vconv.grade_index == 1  # ...but video pays first
    assert aconv.grade_index == 0
    assert mgr.degrades()[0].target_stream == "V"


def test_audio_first_policy_for_ablation():
    sim, mgr, vconv, aconv = manager(order="audio-first")
    mgr.on_report(report("V", loss=0.2))
    assert aconv.grade_index == 1
    assert vconv.grade_index == 0


def test_degrade_cooldown_limits_rate():
    sim, mgr, vconv, aconv = manager(degrade_cooldown_s=10.0)
    mgr.on_report(report("V", loss=0.2))
    mgr.on_report(report("V", loss=0.2))  # within cooldown: ignored
    assert vconv.grade_index == 1
    sim._now = 11.0  # advance simulated clock directly
    mgr.on_report(report("V", loss=0.2))
    assert vconv.grade_index == 2


def test_video_exhausted_then_audio_degraded():
    sim, mgr, vconv, aconv = manager(degrade_cooldown_s=0.0)
    for _ in range(7):  # video: 0->4 then suspend; then audio
        mgr.on_report(report("V", loss=0.3))
    assert vconv.suspended
    assert aconv.grade_index > 0


def test_upgrade_requires_hysteresis_across_session():
    sim, mgr, vconv, aconv = manager(
        hysteresis_reports=3, upgrade_cooldown_s=0.0, degrade_cooldown_s=0.0,
    )
    vconv.degrade(0.0)
    sim._now = 100.0
    # Only V reports clear: no upgrade (A has no streak yet).
    mgr.on_report(report("V"))
    mgr.on_report(report("V"))
    mgr.on_report(report("V"))
    assert vconv.grade_index == 1
    # A also clears three times -> upgrade fires.
    mgr.on_report(report("A"))
    mgr.on_report(report("A"))
    mgr.on_report(report("A"))
    assert vconv.grade_index == 0
    assert mgr.upgrades()


def test_congestion_resets_clear_streak():
    sim, mgr, vconv, aconv = manager(
        hysteresis_reports=2, upgrade_cooldown_s=0.0, degrade_cooldown_s=0.0,
    )
    vconv.degrade(0.0)
    sim._now = 50.0
    mgr.on_report(report("A"))
    mgr.on_report(report("A"))
    mgr.on_report(report("V"))
    mgr.on_report(report("V", loss=0.5))  # congested: resets V streak
    sim._now = 60.0
    mgr.on_report(report("V"))
    assert vconv.grade_index >= 1  # no upgrade yet (streak broken)


def test_disabled_policy_never_acts():
    sim, mgr, vconv, aconv = manager(enabled=False)
    mgr.on_report(report("V", loss=0.5))
    assert vconv.grade_index == 0
    assert not mgr.decisions
    assert mgr.reports_seen == 1


def test_jitter_alone_triggers_degrade():
    sim, mgr, vconv, aconv = manager()
    mgr.on_report(report("V", jitter=0.1))
    assert vconv.grade_index == 1


def test_unknown_stream_report_ignored():
    sim, mgr, vconv, aconv = manager()
    mgr.on_report(report("ghost", loss=0.9))
    assert not mgr.decisions


def test_policy_validation():
    with pytest.raises(ValueError):
        GradingPolicy(order="sideways")
    with pytest.raises(ValueError):
        GradingPolicy(degrade_loss=0.01, upgrade_loss=0.05)
    with pytest.raises(ValueError):
        GradingPolicy(hysteresis_reports=0)
    sim = Simulator()
    mgr = ServerQoSManager(sim)
    conv = video_converter()
    mgr.register_stream("V", MediaType.VIDEO, conv)
    with pytest.raises(ValueError):
        mgr.register_stream("V", MediaType.VIDEO, conv)


def test_proportional_order_spreads_degrades():
    sim = Simulator()
    mgr = ServerQoSManager(sim, GradingPolicy(order="proportional",
                                              degrade_cooldown_s=0.0))
    v1 = video_converter(seed=1)
    v2 = video_converter(seed=2)
    mgr.register_stream("V1", MediaType.VIDEO, v1)
    mgr.register_stream("V2", MediaType.VIDEO, v2)
    mgr.on_report(report("V1", loss=0.3))
    mgr.on_report(report("V1", loss=0.3))
    # Least-degraded first: both videos get one rung each.
    assert {v1.grade_index, v2.grade_index} == {1}
