"""Export HML documents to (a subset of) SMIL 1.0.

The paper (§3) discusses the W3C's SMIL as the standard alternative
to its markup: "SMIL is based on XML and provides users with a lot of
functionality. On the other hand our approach aims at simplicity."
This exporter maps the HML model onto SMIL 1.0 structures and thereby
demonstrates the correspondence the paper argues:

* the document is one ``<par>`` group (everything shares the
  scenario's time axis, positioned by ``begin``/``dur``);
* AU_VI pairs become nested ``<par>`` groups (lip-sync);
* layout regions map to ``<region>`` entries in ``<layout>``;
* the AT-timed hyperlink becomes an ``<a>`` around the body with the
  target document as href (SMIL 1.0 has no timed document-level jump,
  noted in an XML comment).
"""

from __future__ import annotations

from xml.etree import ElementTree as ET

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    ImageElement,
    TextBlock,
    VideoElement,
)
from repro.model.layout import LayoutEngine

__all__ = ["to_smil"]


def _clock(seconds: float) -> str:
    return f"{seconds:g}s"


def to_smil(doc: HmlDocument) -> str:
    """Render the document as a SMIL 1.0 text (UTF-8 string)."""
    smil = ET.Element("smil")
    head = ET.SubElement(smil, "head")
    layout = (LayoutEngine()).layout(doc)
    layout_el = ET.SubElement(head, "layout")
    ET.SubElement(layout_el, "root-layout", {
        "width": str(layout.canvas_width),
        "height": str(layout.canvas_height),
        "title": doc.title,
    })
    for key in layout.visual_keys():
        region = layout.regions[key]
        ET.SubElement(layout_el, "region", {
            "id": f"r-{key.replace(':', '-')}",
            "left": str(region.x), "top": str(region.y),
            "width": str(region.width), "height": str(region.height),
        })

    body = ET.SubElement(smil, "body")
    timed_link = next(
        (l for l in doc.hyperlinks() if l.at_time is not None), None
    )
    container: ET.Element = body
    if timed_link is not None:
        container = ET.SubElement(body, "a", {
            "href": timed_link.target_document,
        })
        container.append(ET.Comment(
            f"HML timed link: auto-follow at {timed_link.at_time:g}s "
            "(no SMIL 1.0 equivalent for document-level timed jumps)"
        ))
    par = ET.SubElement(container, "par")

    def region_ref(key: str) -> dict[str, str]:
        if key in layout.regions:
            return {"region": f"r-{key.replace(':', '-')}"}
        return {}

    for idx, e in enumerate(doc.elements):
        if isinstance(e, (Heading, TextBlock)):
            key = (f"heading:{idx}" if isinstance(e, Heading)
                   else f"text:{idx}")
            text_el = ET.SubElement(par, "text", {
                "src": f"data:{key}", **region_ref(key),
            })
            text_el.set("begin", "0s")
        elif isinstance(e, ImageElement):
            attrs = {"src": e.source, "begin": _clock(e.startime),
                     **region_ref(e.element_id)}
            if e.duration is not None:
                attrs["dur"] = _clock(e.duration)
            ET.SubElement(par, "img", attrs)
        elif isinstance(e, AudioElement):
            attrs = {"src": e.source, "begin": _clock(e.startime)}
            if e.duration is not None:
                attrs["dur"] = _clock(e.duration)
            ET.SubElement(par, "audio", attrs)
        elif isinstance(e, VideoElement):
            attrs = {"src": e.source, "begin": _clock(e.startime),
                     **region_ref(e.element_id)}
            if e.duration is not None:
                attrs["dur"] = _clock(e.duration)
            ET.SubElement(par, "video", attrs)
        elif isinstance(e, AudioVideoElement):
            # Lip-synced pair: a nested <par> starting together.
            inner = ET.SubElement(par, "par",
                                  {"begin": _clock(e.audio_startime)})
            a_attrs = {"src": e.audio_source, "begin": "0s"}
            v_attrs = {"src": e.video_source, "begin": "0s",
                       **region_ref(e.video_id)}
            if e.duration is not None:
                a_attrs["dur"] = _clock(e.duration)
                v_attrs["dur"] = _clock(e.duration)
            ET.SubElement(inner, "audio", a_attrs)
            ET.SubElement(inner, "video", v_attrs)

    ET.indent(smil)
    return ET.tostring(smil, encoding="unicode")
