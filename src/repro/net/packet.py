"""Packets and the protocol tap (packet log).

The tap records every packet the network delivers, keyed by protocol
label — the raw evidence from which the Figure 5 (protocol stack)
reproduction derives which stream type traversed which stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet", "TapRecord", "PacketTap"]

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """A network-layer datagram.

    ``protocol`` is the stack label carried for accounting ("UDP",
    "TCP", "RTP", "RTCP", "SMTP", ...); ``flow_id`` identifies the
    application flow (one per media stream / control session);
    ``dst_port`` selects the handler bound at the destination node.
    """

    src: str
    dst: str
    size_bytes: int
    protocol: str
    flow_id: str
    dst_port: int
    payload: Any = None
    seq: int = 0
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    #: correlation keys for frame-lifecycle tracing: the session the
    #: packet belongs to ("" for anonymous traffic) and the media
    #: frame it carries a fragment of (-1 for non-frame packets)
    session: str = ""
    frame_seq: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {self.size_bytes}")


@dataclass(frozen=True, slots=True)
class TapRecord:
    """One delivered (or dropped) packet, as seen by the tap."""

    time: float
    event: str  # "deliver" | "drop-queue" | "drop-loss" | "rx-discard"
    protocol: str
    flow_id: str
    src: str
    dst: str
    size_bytes: int
    seq: int


class PacketTap:
    """Accumulates per-packet records and per-protocol aggregates."""

    def __init__(self) -> None:
        self.records: list[TapRecord] = []
        self.bytes_by_protocol: dict[str, int] = {}
        self.count_by_protocol: dict[str, int] = {}
        #: packets delivered to a node but addressed to an unbound port
        self.discards_by_node: dict[str, int] = {}
        self.enabled_detail = True

    def record(self, time: float, event: str, pkt: Packet) -> None:
        if self.enabled_detail:
            self.records.append(
                TapRecord(
                    time=time,
                    event=event,
                    protocol=pkt.protocol,
                    flow_id=pkt.flow_id,
                    src=pkt.src,
                    dst=pkt.dst,
                    size_bytes=pkt.size_bytes,
                    seq=pkt.seq,
                )
            )
        if event == "deliver":
            self.bytes_by_protocol[pkt.protocol] = (
                self.bytes_by_protocol.get(pkt.protocol, 0) + pkt.size_bytes
            )
            self.count_by_protocol[pkt.protocol] = (
                self.count_by_protocol.get(pkt.protocol, 0) + 1
            )

    def record_discard(self, time: float, node_id: str, pkt: Packet) -> None:
        """An endpoint dropped a delivered packet: no handler on its port."""
        self.discards_by_node[node_id] = \
            self.discards_by_node.get(node_id, 0) + 1
        if self.enabled_detail:
            self.records.append(
                TapRecord(
                    time=time,
                    event="rx-discard",
                    protocol=pkt.protocol,
                    flow_id=pkt.flow_id,
                    src=pkt.src,
                    dst=pkt.dst,
                    size_bytes=pkt.size_bytes,
                    seq=pkt.seq,
                )
            )

    def rx_discarded(self, node_id: str | None = None) -> int:
        """Total unbound-port discards (optionally for one node)."""
        if node_id is not None:
            return self.discards_by_node.get(node_id, 0)
        return sum(self.discards_by_node.values())

    def protocols_for_flow(self, flow_id: str) -> set[str]:
        return {r.protocol for r in self.records if r.flow_id == flow_id}

    def delivered(self, flow_id: str | None = None) -> list[TapRecord]:
        return [
            r
            for r in self.records
            if r.event == "deliver" and (flow_id is None or r.flow_id == flow_id)
        ]

    def drops(self) -> list[TapRecord]:
        return [r for r in self.records if r.event.startswith("drop")]
