"""Tests for QoS negotiation at admission (§4)."""

import pytest

from repro.des import Simulator
from repro.hml import DocumentBuilder
from repro.media import default_registry
from repro.net import Network
from repro.server import (
    AccountRegistry,
    AdmissionController,
    AdmissionRequest,
    CONTRACT_CLASSES,
    FlowScheduler,
    MultimediaDatabase,
    MultimediaServer,
)
from repro.server.accounts import SubscriptionForm
from repro.service import ClientSession, ControlChannel, ServerSessionHandler

BASIC = CONTRACT_CLASSES["basic"]


def req(sid, bw, min_bw=None):
    return AdmissionRequest(session_id=sid, user_id=f"u{sid}",
                            contract=BASIC, required_bw_bps=bw,
                            min_bw_bps=min_bw)


# ------------------------------------------------------------ controller
def test_partial_admission_when_floor_fits():
    c = AdmissionController(10e6, open_fraction=1.0)
    assert c.decide(req("s1", 8e6)).admitted
    r = c.decide(req("s2", 4e6, min_bw=1e6))
    assert r.admitted and r.negotiated
    assert r.reserved_bw_bps == pytest.approx(2e6)  # the headroom
    assert r.grant_ratio == pytest.approx(0.5)
    assert "negotiated" in r.reason
    assert c.utilisation == pytest.approx(1.0)


def test_rejection_when_floor_does_not_fit():
    c = AdmissionController(10e6, open_fraction=1.0)
    c.decide(req("s1", 9.5e6))
    r = c.decide(req("s2", 4e6, min_bw=1e6))
    assert not r.admitted
    assert not r.negotiated


def test_full_admission_not_marked_negotiated():
    c = AdmissionController(10e6, open_fraction=1.0)
    r = c.decide(req("s1", 2e6, min_bw=1e6))
    assert r.admitted and not r.negotiated
    assert r.grant_ratio == 1.0


def test_min_bw_validation():
    with pytest.raises(ValueError):
        req("s", 2e6, min_bw=3e6)  # floor above request
    with pytest.raises(ValueError):
        req("s", 2e6, min_bw=0.0)


def test_release_returns_negotiated_reservation():
    c = AdmissionController(10e6, open_fraction=1.0)
    c.decide(req("s1", 8e6))
    c.decide(req("s2", 4e6, min_bw=1e6))  # granted 2e6
    c.release("s2")
    assert c.reserved_bps == pytest.approx(8e6)


# ------------------------------------------------------ renegotiation
def test_shrinking_existing_sessions_admits_newcomer():
    """[KRI 94]: renegotiate live negotiable sessions down to their
    floors to fit a newcomer."""
    regrants = []
    c = AdmissionController(10e6, open_fraction=1.0,
                            on_regrant=lambda s, bw: regrants.append((s, bw)))
    # Two negotiable sessions fill the pipe at full quality.
    assert c.decide(req("s1", 5e6, min_bw=2e6)).admitted
    assert c.decide(req("s2", 5e6, min_bw=2e6)).admitted
    assert c.utilisation == pytest.approx(1.0)
    # A third (floor 2 Mb/s) fits only by shrinking the first two.
    r = c.decide(req("s3", 5e6, min_bw=2e6))
    assert r.admitted and r.negotiated
    assert r.reserved_bw_bps == pytest.approx(2e6)
    assert c.granted_bps("s1") + c.granted_bps("s2") == pytest.approx(8e6)
    assert c.granted_bps("s1") == pytest.approx(4e6)  # proportional
    assert c.utilisation == pytest.approx(1.0)
    assert regrants and all(bw < 5e6 for _, bw in regrants)
    assert c.renegotiations == 2


def test_fixed_sessions_never_shrunk():
    c = AdmissionController(10e6, open_fraction=1.0)
    c.decide(req("fixed", 8e6))  # no floor: not negotiable
    r = c.decide(req("new", 5e6, min_bw=3e6))
    assert not r.admitted  # only 2 Mb/s headroom, nothing shrinkable
    assert c.granted_bps("fixed") == pytest.approx(8e6)


def test_departure_reexpands_shrunk_sessions():
    regrants = []
    c = AdmissionController(10e6, open_fraction=1.0,
                            on_regrant=lambda s, bw: regrants.append((s, bw)))
    c.decide(req("s1", 5e6, min_bw=2e6))
    c.decide(req("s2", 5e6, min_bw=2e6))
    c.decide(req("s3", 5e6, min_bw=2e6))  # shrinks s1/s2 to 4e6
    regrants.clear()
    c.release("s3")  # frees 2e6: s1/s2 expand back toward 5e6
    assert c.granted_bps("s1") == pytest.approx(5e6)
    assert c.granted_bps("s2") == pytest.approx(5e6)
    assert {s for s, _ in regrants} == {"s1", "s2"}


def test_newcomer_floor_beyond_all_slack_rejected():
    c = AdmissionController(10e6, open_fraction=1.0)
    c.decide(req("s1", 5e6, min_bw=4e6))
    c.decide(req("s2", 5e6, min_bw=4e6))
    # Slack = 2e6, headroom 0; floor 3e6 cannot be met.
    r = c.decide(req("s3", 5e6, min_bw=3e6))
    assert not r.admitted
    assert c.granted_bps("s1") == pytest.approx(5e6)  # untouched


def test_granted_bps_unknown_session():
    c = AdmissionController(10e6)
    with pytest.raises(KeyError):
        c.granted_bps("nope")


# ------------------------------------------------------------ grade map
def test_grade_for_ratio_mapping():
    video = default_registry().get("MPEG")  # 1.5/1.0/0.75/0.5/0.25 Mb/s
    assert FlowScheduler.grade_for_ratio(video, 1.0) == 0
    assert FlowScheduler.grade_for_ratio(video, 0.70) == 1  # fits 1.0M
    assert FlowScheduler.grade_for_ratio(video, 0.5) == 2
    assert FlowScheduler.grade_for_ratio(video, 0.35) == 3
    assert FlowScheduler.grade_for_ratio(video, 0.05) == 4  # deepest rung


# ------------------------------------------------------------ protocol
def build_service(capacity):
    sim = Simulator()
    net = Network(sim)
    net.add_node("client")
    net.add_node("host:srv1")
    net.add_duplex_link("client", "host:srv1", 20e6, 0.005)
    db = MultimediaDatabase()
    doc = (DocumentBuilder("AV")
           .audio_video("audsrv:/a.au", "vidsrv:/v.mpg", "A", "V",
                        startime=0.0, duration=4.0)
           .build())
    db.add_document("doc", doc)
    server = MultimediaServer(
        sim, "srv1", "host:srv1", db, AccountRegistry(),
        default_registry(), {},
        admission=AdmissionController(capacity, open_fraction=1.0),
    )
    channel = ControlChannel(net, "client", "host:srv1", base_port=10_000)
    handler = ServerSessionHandler(server, channel.server, "sess-1", "client")
    client = ClientSession(sim, channel.client, "u", "pw")
    return sim, server, client, handler


def test_negotiated_connect_over_protocol():
    sim, server, client, handler = build_service(capacity=1e6)

    def script():
        resp = yield from client.connect(required_bw_bps=2e6,
                                         min_bw_bps=0.5e6)
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(
                SubscriptionForm(real_name="U", address="x",
                                 email="u@e.org"),
                required_bw_bps=2e6, min_bw_bps=0.5e6)
        return resp

    proc = sim.process(script())
    resp = sim.run(until=proc)
    assert resp.msg_type == "connect-ok"
    assert resp.body["negotiated"] is True
    assert resp.body["granted_bw_bps"] == pytest.approx(1e6)
    assert server.sessions["sess-1"].grant_ratio == pytest.approx(0.5)


def test_without_floor_same_load_is_rejected():
    sim, server, client, handler = build_service(capacity=1e6)

    def script():
        resp = yield from client.connect(required_bw_bps=2e6)
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(
                SubscriptionForm(real_name="U", address="x",
                                 email="u@e.org"), required_bw_bps=2e6)
        return resp

    proc = sim.process(script())
    resp = sim.run(until=proc)
    assert resp.msg_type == "connect-reject"


def test_negotiated_session_plans_degraded_flows():
    sim, server, client, handler = build_service(capacity=1e6)

    def script():
        resp = yield from client.connect(required_bw_bps=2e6,
                                         min_bw_bps=0.5e6)
        if resp.msg_type == "subscribe-required":
            resp = yield from client.subscribe(
                SubscriptionForm(real_name="U", address="x",
                                 email="u@e.org"),
                required_bw_bps=2e6, min_bw_bps=0.5e6)
        yield from client.request_document("doc")

    proc = sim.process(script())
    sim.run(until=proc)
    flow = server.plan_flows("sess-1", "doc")
    video = next(f for f in flow.continuous() if f.stream_id == "V")
    # grant_ratio 0.5 -> video starts at grade 2 (0.75 Mb/s).
    assert video.initial_grade == 2
    assert video.nominal_rate_bps == 750_000
