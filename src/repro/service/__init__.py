"""Application/service protocol layer (§5, Figure 4).

The state machine of the user's session (connect, authenticate,
subscribe, browse, view, pause, suspend on cross-server navigation,
disconnect), the typed control-message channel it runs over (the
"TCP" path of Figure 5), and the distributed search primitive.
"""

from repro.service.states import (
    SessionEvent,
    SessionState,
    SessionStateMachine,
    TRANSITIONS,
    transition_table_rows,
)
from repro.service.messages import ControlChannel, ControlEndpoint, ControlMessage
from repro.service.session import ClientSession, ServerSessionHandler
from repro.service.search import SearchClient
from repro.service.history import NavigationHistory
from repro.service.annotations import Annotation, AnnotationStore

__all__ = [
    "Annotation",
    "AnnotationStore",
    "ClientSession",
    "NavigationHistory",
    "ControlChannel",
    "ControlEndpoint",
    "ControlMessage",
    "SearchClient",
    "ServerSessionHandler",
    "SessionEvent",
    "SessionState",
    "SessionStateMachine",
    "TRANSITIONS",
    "transition_table_rows",
]
