"""The multimedia database: presentation scenarios and topics.

"The internal structural presentation of a hypermedia object is
stored in a multimedia server, while the inline data that compose the
document may reside on their own media servers" (§2) — so the
database stores *markup* (the scenario text file) plus the topic
catalogue and a full-text index over titles, headings and text blocks
for the §6.2.2 search primitive.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.hml.ast import Heading, HmlDocument, TextBlock
from repro.hml.parser import parse
from repro.hml.serializer import serialize

__all__ = ["StoredDocument", "MultimediaDatabase"]


@dataclass(slots=True)
class StoredDocument:
    name: str
    markup: str
    topic: str
    document: HmlDocument = field(repr=False, default=None)  # type: ignore

    @property
    def size_bytes(self) -> int:
        return len(self.markup.encode("utf-8"))


def _terms(text: str) -> set[str]:
    return {w.lower() for w in re.findall(r"[A-Za-z0-9]+", text) if len(w) > 1}


class MultimediaDatabase:
    """Document store with topic catalogue and full-text search."""

    def __init__(self) -> None:
        self._docs: dict[str, StoredDocument] = {}
        self._index: dict[str, set[str]] = {}  # term -> doc names

    # -- storage ---------------------------------------------------------
    def add_markup(self, name: str, markup: str, topic: str = "general") -> None:
        """Store a document from markup text (parsed for indexing)."""
        self._store(name, markup, parse(markup), topic)

    def add_document(self, name: str, doc: HmlDocument,
                     topic: str = "general") -> None:
        """Store a document from an AST (serialized for the wire)."""
        self._store(name, serialize(doc), doc, topic)

    def _store(self, name: str, markup: str, doc: HmlDocument,
               topic: str) -> None:
        if not name.strip():
            raise ValueError("document name must be non-empty")
        if name in self._docs:
            raise ValueError(f"document {name!r} already stored")
        self._docs[name] = StoredDocument(name=name, markup=markup,
                                          topic=topic, document=doc)
        for term in self._text_terms(doc):
            self._index.setdefault(term, set()).add(name)

    @staticmethod
    def _text_terms(doc: HmlDocument) -> set[str]:
        terms = _terms(doc.title)
        for e in doc.elements:
            if isinstance(e, TextBlock):
                terms |= _terms(e.plain_text)
            elif isinstance(e, Heading):
                terms |= _terms(e.text)
        return terms

    # -- retrieval -------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def get(self, name: str) -> StoredDocument:
        try:
            return self._docs[name]
        except KeyError:
            raise KeyError(f"no document {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._docs)

    def topics(self) -> list[str]:
        """The service's list of available topics (§5)."""
        return sorted({d.topic for d in self._docs.values()})

    def by_topic(self, topic: str) -> list[str]:
        return sorted(n for n, d in self._docs.items() if d.topic == topic)

    # -- search -----------------------------------------------------------
    def search(self, token: str) -> list[str]:
        """Documents whose title/headings/text contain the token.

        "All the text documents stored in that server are scanned ...
        only the lessons which contain the item of interest and the
        server location are transmitted" (§6.2.2).
        """
        token = token.strip().lower()
        if not token:
            return []
        exact = self._index.get(token, set())
        prefix = {
            name
            for term, names in self._index.items()
            if term.startswith(token)
            for name in names
        }
        return sorted(exact | prefix)
