"""Tests for concurrent multi-session delivery on one engine."""

import pytest

from repro.core import EngineConfig, ServiceEngine
from repro.core.experiments import av_markup


def engine(capacity_bps=50e6, access=20e6):
    eng = ServiceEngine(EngineConfig(
        access_rate_bps=access,
        admission_capacity_bps=capacity_bps,
    ))
    eng.add_server("srv1", documents={"doc": (av_markup(5.0), "x")})
    return eng


def test_three_concurrent_sessions_all_complete():
    eng = engine()
    results = eng.orchestrator.run_concurrent_sessions("srv1", "doc", n_sessions=3)
    assert len(results) == 3
    assert all(r.completed for r in results)
    for r in results:
        assert r.streams["A"].frames_played > 200
        assert r.streams["V"].frames_played > 100
        assert r.worst_skew_s() < 0.08


def test_sessions_isolated_one_disconnect_does_not_kill_others():
    """Staggered sessions end at different times; the first
    disconnect must not stop the later sessions' streams."""
    eng = engine()
    results = eng.orchestrator.run_concurrent_sessions("srv1", "doc", n_sessions=3,
                                          stagger_s=1.5)
    # The last session starts 3 s after the first ends ~2.8 s later;
    # overlap exists and everyone still plays to completion.
    assert all(r.completed for r in results)
    played = [r.streams["V"].frames_played for r in results]
    assert min(played) > 100


def test_admission_rejects_excess_sessions():
    # Basic contracts see 70% of capacity: 4.2 Mb/s = two 2 Mb/s sessions.
    eng = engine(capacity_bps=6e6)
    results = eng.orchestrator.run_concurrent_sessions("srv1", "doc", n_sessions=4,
                                          stagger_s=0.1)
    completed = [r for r in results if r.completed]
    rejected = [r for r in results if not r.completed]
    assert len(completed) == 2
    assert len(rejected) == 2
    assert all("exceeds" in r.events[0] for r in rejected)


def test_contention_degrades_quality_vs_solo():
    """Many sessions sharing a tight access link see worse QoP than a
    single session on the same link."""
    solo = engine(access=4e6).orchestrator.run_concurrent_sessions("srv1", "doc", 1)
    crowd = engine(access=4e6).orchestrator.run_concurrent_sessions("srv1", "doc", 4,
                                                       stagger_s=0.2)
    solo_gaps = solo[0].total_gaps()
    crowd_gaps = sum(r.total_gaps() for r in crowd if r.completed)
    assert solo_gaps < crowd_gaps


def test_n_sessions_validation():
    with pytest.raises(ValueError):
        engine().orchestrator.run_concurrent_sessions("srv1", "doc", 0)
