"""Media-server failure detection and stream failover.

A :class:`MediaWatchdog` guards one multimedia server's media servers
(primaries and replicas). Detection is event-driven with a modelled
latency: a crash schedules a detection ``detect_delay_s`` later —
standing in for the heartbeat round-trips a real monitor would need —
after which every interrupted stream is failed over to the first
healthy replica (or, if none exists, re-adopted when the primary
restarts).

Failover resumes each stream *realtime-aligned*: the replacement
source fast-forwards past the outage window, so the client sees a
bounded burst of playout gaps instead of a permanently late stream.
The replacement starts at the grade the stream had (optionally
degraded by ``failover_grade_penalty`` to model a weaker replica) and
is re-registered with the session's Server QoS Manager so the normal
grading path keeps working after the switch.
"""

from __future__ import annotations

from repro.server.media_server import MediaServer, StreamSnapshot
from repro.server.multimedia_server import MultimediaServer

__all__ = ["MediaWatchdog"]


class MediaWatchdog:
    """Detects media-server crashes and fails streams over."""

    def __init__(
        self,
        server: MultimediaServer,
        detect_delay_s: float = 0.5,
        failover_grade_penalty: int = 0,
    ) -> None:
        if detect_delay_s < 0:
            raise ValueError("detect_delay_s must be >= 0")
        self.server = server
        self.sim = server.sim
        self.detect_delay_s = detect_delay_s
        self.failover_grade_penalty = failover_grade_penalty
        self.detections = 0
        self.streams_failed_over = 0
        self.streams_lost = 0
        #: sessions that had at least one stream restored
        self.sessions_saved: set[str] = set()
        #: raw per-event latencies, kept unconditionally (bounded by
        #: the fault count) so service reports work on untraced runs
        self.detect_times: list[float] = []
        self.recover_times: list[float] = []
        for ms in server.all_media_servers():
            self.attach(ms)

    def attach(self, ms: MediaServer) -> None:
        """Start guarding one media server (idempotent)."""
        ms.on_crash = self._on_crash
        ms.on_restart = self._on_restart

    def _metrics(self):
        if not self.sim._tracing:
            return None
        return getattr(self.sim._tracer, "metrics", None)

    # -- crash / restart hooks ---------------------------------------------
    def _on_crash(self, ms: MediaServer) -> None:
        self.sim.call_later(self.detect_delay_s, lambda: self._detect(ms))

    def _on_restart(self, ms: MediaServer) -> None:
        # The restarted server adopts whatever wreckage nobody else
        # could take (no healthy replica at detection time).
        if ms.wreckage:
            self._recover(ms)

    def _detect(self, ms: MediaServer) -> None:
        self.detections += 1
        self.detect_times.append(self.detect_delay_s)
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "recovery.detect", ms.name,
                                  node=ms.node_id,
                                  t_detect_s=self.detect_delay_s,
                                  streams=len(ms.wreckage))
        metrics = self._metrics()
        if metrics is not None:
            metrics.histogram("fault_time_to_detect_s").observe(
                self.detect_delay_s
            )
        self._recover(ms)

    # -- failover ----------------------------------------------------------
    def _primary_name(self, ms: MediaServer) -> str:
        for name, primary in self.server.media_servers.items():
            if primary is ms:
                return name
        for name, standbys in self.server.replicas.items():
            if ms in standbys:
                return name
        return ms.name

    def _recover(self, ms: MediaServer) -> None:
        primary = self._primary_name(ms)
        wreck = list(ms.wreckage)
        ms.wreckage.clear()
        by_session: dict[str, list[StreamSnapshot]] = {}
        for snap in wreck:
            by_session.setdefault(snap.origin.session_id, []).append(snap)
        for session_id in sorted(by_session):
            snaps = by_session[session_id]
            if session_id not in self.server.sessions:
                # Session tore down during the outage; nothing to save.
                continue
            handler = self.server.session_handlers.get(session_id)
            if handler is not None:
                handler.notify_stream_fault(
                    [s.origin.stream_id for s in snaps], ms.name
                )
            for snap in snaps:
                # Replica-aware: prefer the client's regional edge,
                # falling back to the origin when that edge is down.
                target = self.server.healthy_media_server(
                    primary, client_node=snap.origin.client_node
                )
                if target is None:
                    # Nowhere to go yet — keep the snapshot so a later
                    # restart of this server can adopt it.
                    ms.wreckage.append(snap)
                    if self.sim._tracing:
                        self.sim._tracer.emit(
                            self.sim.now, "recovery.failed",
                            snap.origin.stream_id, session=session_id,
                            reason="no-healthy-server", server=primary)
                    continue
                self._failover(snap, target, handler)

    def _failover(self, snap: StreamSnapshot, target: MediaServer,
                  handler) -> None:
        origin = snap.origin
        now = self.sim.now
        if (origin.session_id, origin.stream_id) in target.streams:
            return  # already restored (duplicate detection)
        # Skip the outage: resume where the stream *would* be now, so
        # only the missed window turns into gaps.
        resume_pos = snap.position_s + (now - snap.crashed_at)
        if resume_pos >= origin.duration_s - 1e-9:
            # The outage swallowed the tail; nothing left to transmit.
            return
        grade = max(snap.grade, self.failover_grade_penalty)
        try:
            _handler, converter = target.start_stream(
                origin.session_id, origin.object_path,
                stream_id=origin.stream_id,
                client_node=origin.client_node,
                client_port=origin.client_port,
                duration_s=origin.duration_s,
                initial_grade=grade,
                floor_grade=origin.floor_grade,
                allow_suspend=origin.allow_suspend,
                ssrc=origin.ssrc,
                start_offset_media_s=resume_pos,
                first_seq=snap.next_seq,
            )
        except (RuntimeError, ValueError, KeyError) as exc:
            self.streams_lost += 1
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "recovery.failed",
                                      origin.stream_id,
                                      session=origin.session_id,
                                      reason=str(exc), server=target.name)
            return
        served = self.server.sessions.get(origin.session_id)
        if served is not None:
            media_type = target.store.codec_for(origin.object_path).media_type
            served.qos_manager.unregister_stream(origin.stream_id)
            served.qos_manager.register_stream(
                origin.stream_id, media_type, converter
            )
        t_recover = now - snap.crashed_at
        self.streams_failed_over += 1
        self.recover_times.append(t_recover)
        self.sessions_saved.add(origin.session_id)
        if self.sim._tracing:
            self.sim._tracer.emit(
                self.sim.now, "recovery.stream", origin.stream_id,
                session=origin.session_id, node=target.node_id,
                to=target.name, t_recover_s=t_recover,
                position_s=resume_pos, grade=grade)
        metrics = self._metrics()
        if metrics is not None:
            metrics.histogram("fault_time_to_recover_s").observe(t_recover)
            metrics.counter("streams_failed_over",
                            server=self.server.name).inc()
        if handler is not None:
            handler.notify_stream_recovered(origin.stream_id, target.name,
                                            t_recover)
