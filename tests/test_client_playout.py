"""Unit tests for playout processes (deadline-driven presentation)."""

import pytest

from repro.client import MediaBuffer, PlayoutEventLog, SkewController
from repro.client.metrics import PlayoutEventKind
from repro.client.playout import PauseGate, PlayoutProcess
from repro.des import Simulator
from repro.media.types import Frame, FrameKind
from repro.media import MediaType
from repro.model.sync import PlayoutEntry

CLOCK = 90_000
TICKS = 3600
INTERVAL = 0.04


def frame(seq):
    return Frame("v", seq=seq, media_time=seq * TICKS, duration=TICKS,
                 size_bytes=1000, kind=FrameKind.P)


def entry(duration=1.0, start=0.0, group=None, master=False, sid="v"):
    return PlayoutEntry(
        stream_id=sid, media_type=MediaType.VIDEO, source="s",
        start_time=start, duration=duration, sync_group=group,
        is_sync_master=master,
    )


def test_smooth_playout_all_frames():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    for i in range(25):
        buf.push(frame(i))
    p = PlayoutProcess(sim, entry(duration=1.0), buf, log, INTERVAL)
    sim.run(until=p.finished)
    assert log.count(PlayoutEventKind.FRAME, "v") == 25
    assert log.gap_count("v") == 0
    assert p.played_s == pytest.approx(1.0)
    assert sim.now == pytest.approx(1.0)


def test_start_offset_respected():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    for i in range(5):
        buf.push(frame(i))
    p = PlayoutProcess(sim, entry(duration=0.2), buf, log, INTERVAL,
                       start_offset_s=2.0)
    sim.run(until=p.finished)
    assert log.start_time("v") == pytest.approx(2.0)


def test_empty_buffer_produces_gaps():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    p = PlayoutProcess(sim, entry(duration=0.4), buf, log, INTERVAL)
    sim.run(until=p.finished)
    assert log.gap_count("v") == 10  # 0.4 s / 0.04 s
    assert log.count(PlayoutEventKind.FRAME, "v") == 0
    assert p.played_s == pytest.approx(0.4)


def test_late_frames_discarded_as_stale():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()

    def feeder():
        # First two frames arrive after their deadlines have passed.
        yield sim.timeout(0.30)
        for i in range(25):
            buf.push(frame(i))

    sim.process(feeder())
    p = PlayoutProcess(sim, entry(duration=1.0), buf, log, INTERVAL)
    sim.run(until=p.finished)
    assert log.gap_count("v") > 0
    assert log.count(PlayoutEventKind.DROP, "v") > 0  # stale discards
    played = log.count(PlayoutEventKind.FRAME, "v")
    assert 0 < played < 25


def test_max_consecutive_gaps_aborts():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    p = PlayoutProcess(sim, entry(duration=100.0), buf, log, INTERVAL,
                       max_consecutive_gaps=5)
    sim.run(until=p.finished)
    assert sim.now < 1.0
    assert log.count(PlayoutEventKind.STOP, "v") == 1


def test_pause_and_resume():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    gate = PauseGate(sim)
    for i in range(25):
        buf.push(frame(i))
    p = PlayoutProcess(sim, entry(duration=1.0), buf, log, INTERVAL, gate=gate)

    def controller():
        yield sim.timeout(0.2)
        gate.pause()
        yield sim.timeout(5.0)
        gate.resume()

    sim.process(controller())
    sim.run(until=p.finished)
    assert log.count(PlayoutEventKind.PAUSE, "v") == 1
    assert log.count(PlayoutEventKind.RESUME, "v") == 1
    assert sim.now == pytest.approx(6.0, abs=0.1)  # 1 s playout + 5 s pause
    assert log.gap_count("v") == 0


def test_interrupt_stops_playout():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=10.0)
    log = PlayoutEventLog()
    for i in range(250):
        buf.push(frame(i))
    p = PlayoutProcess(sim, entry(duration=10.0), buf, log, INTERVAL)

    def clicker():
        yield sim.timeout(1.0)
        p.process.interrupt("hyperlink")

    sim.process(clicker())
    sim.run()
    assert p.played_s < 10.0
    assert not p.finished.triggered  # interrupted, not finished


def test_requires_duration():
    sim = Simulator()
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4)
    with pytest.raises(ValueError, match="duration"):
        PlayoutProcess(sim, entry(duration=None), buf, PlayoutEventLog(),
                       INTERVAL)
    with pytest.raises(ValueError):
        PlayoutProcess(sim, entry(duration=1.0), buf, PlayoutEventLog(), 0.0)


def test_synchronized_pair_stays_locked_with_controller():
    """Slave starved briefly -> skew develops -> controller drops to
    re-lock; without the controller skew persists."""

    def run(enabled):
        sim = Simulator()
        log = PlayoutEventLog()
        ctrl = SkewController("g", master_id="a", enabled=enabled)
        buf_a = MediaBuffer("a", 8000, time_window_s=0.4, capacity_s=100.0)
        buf_v = MediaBuffer("v", CLOCK, time_window_s=0.4, capacity_s=100.0)
        # Master audio fully buffered: 250 frames of 20 ms.
        for i in range(250):
            buf_a.push(Frame("a", seq=i, media_time=i * 160, duration=160,
                             size_bytes=160, kind=FrameKind.SAMPLE))

        def video_feeder():
            # Video delivery stalls for 0.5 s then catches up.
            for i in range(125):
                buf_v.push(frame(i))
                if i == 10:
                    yield sim.timeout(0.5)
                else:
                    yield sim.timeout(0.0)

        sim.process(video_feeder())
        pa = PlayoutProcess(
            sim,
            entry(duration=5.0, group="g", master=True, sid="a"),
            buf_a, log, 0.02, skew=ctrl,
        )
        pv = PlayoutProcess(
            sim,
            entry(duration=5.0, group="g", sid="v"),
            buf_v, log, INTERVAL, skew=ctrl,
            gap_policy="stall", max_consecutive_gaps=1000,
        )
        sim.run(until=pa.finished)
        sim.run(until=pv.finished)
        return ctrl.series

    with_ctrl = run(enabled=True)
    without = run(enabled=False)
    assert with_ctrl.max_abs_s < without.max_abs_s
    assert with_ctrl.fraction_out_of_sync < without.fraction_out_of_sync
