"""Unit + property tests for the Allen interval algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hml.examples import Figure2Times, figure2_document
from repro.model import build_playout_schedule
from repro.model.intervals import (
    AllenRelation as R,
    inverse,
    relation,
    schedule_relations,
)


@pytest.mark.parametrize(
    "x,y,expected",
    [
        ((0, 1), (2, 3), R.BEFORE),
        ((2, 3), (0, 1), R.AFTER),
        ((0, 1), (1, 2), R.MEETS),
        ((1, 2), (0, 1), R.MET_BY),
        ((0, 2), (1, 3), R.OVERLAPS),
        ((1, 3), (0, 2), R.OVERLAPPED_BY),
        ((0, 1), (0, 2), R.STARTS),
        ((0, 2), (0, 1), R.STARTED_BY),
        ((1, 2), (0, 3), R.DURING),
        ((0, 3), (1, 2), R.CONTAINS),
        ((1, 2), (0, 2), R.FINISHES),
        ((0, 2), (1, 2), R.FINISHED_BY),
        ((0, 1), (0, 1), R.EQUAL),
    ],
)
def test_all_thirteen_relations(x, y, expected):
    assert relation(x[0], x[1], y[0], y[1]) is expected


def test_degenerate_interval_rejected():
    with pytest.raises(ValueError):
        relation(1, 1, 0, 2)


def test_inverse_table_complete():
    for rel in R:
        assert inverse(inverse(rel)) is rel
    assert inverse(R.EQUAL) is R.EQUAL
    assert inverse(R.BEFORE) is R.AFTER


@settings(max_examples=200, deadline=None)
@given(
    xs=st.floats(0, 100), xd=st.floats(0.01, 50),
    ys=st.floats(0, 100), yd=st.floats(0.01, 50),
)
def test_property_relation_and_inverse_consistent(xs, xd, ys, yd):
    fwd = relation(xs, xs + xd, ys, ys + yd)
    back = relation(ys, ys + yd, xs, xs + xd)
    assert back is inverse(fwd)


def test_figure2_schedule_relations():
    """Independent temporal oracle for the Figure 2 scenario."""
    t = Figure2Times()
    entries = build_playout_schedule(figure2_document(t))
    rels = schedule_relations(entries)
    assert rels[("A1", "V")] is R.EQUAL  # the synchronized pair
    assert rels[("I1", "I2")] is R.MEETS  # I2 right after I1
    assert rels[("A1", "A2")] is R.BEFORE  # A2 plays after A1 ends
    # A1/V (4..12) overlaps I2 (6..16).
    assert rels[("A1", "I2")] is R.OVERLAPS


def test_open_ended_entries_skipped():
    from repro.hml import DocumentBuilder

    doc = (
        DocumentBuilder("t")
        .audio("s", "A")  # open-ended
        .audio("s2", "B", startime=0.0, duration=2.0)
        .build()
    )
    rels = schedule_relations(build_playout_schedule(doc))
    assert rels == {}
