"""Installs a :class:`~repro.faults.plan.FaultPlan` on an engine.

All fault activations ride the DES clock via ``sim.call_later``, so a
plan's effects are totally ordered with everything else in the run.
An **empty plan schedules nothing and creates no RNG streams** —
installing it leaves the run byte-identical to one without the
subsystem (the inertness half of the determinism contract).
"""

from __future__ import annotations

from repro.faults.control import ControlFaultState, HeartbeatMonitor
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's faults and wires per-session fault state."""

    def __init__(self, engine, plan: FaultPlan, retry=None,
                 heartbeat: dict | None = None) -> None:
        self.engine = engine
        self.plan = plan
        #: RetryPolicy handed to every ClientSession (None = no retry)
        self.retry = retry
        #: HeartbeatMonitor kwargs per session (None = no heartbeats)
        self.heartbeat = dict(heartbeat) if heartbeat else None
        self.monitors: list[HeartbeatMonitor] = []
        self.control_state: ControlFaultState | None = None
        self._install()

    # -- installation ------------------------------------------------------
    def _ensure_control_state(self) -> ControlFaultState:
        if self.control_state is None:
            self.control_state = ControlFaultState(
                self.engine.rng.stream("faults:control")
            )
        return self.control_state

    def _install(self) -> None:
        sim = self.engine.sim
        for f in self.plan:
            if f.kind == "link-down":
                self._check_link(f.src, f.dst)
                self._schedule_outage(f.src, f.dst, f.at, f.duration_s)
            elif f.kind == "link-flap":
                self._check_link(f.src, f.dst)
                for i in range(f.count):
                    self._schedule_outage(f.src, f.dst,
                                          f.at + i * f.period_s, f.down_s)
            elif f.kind == "server-crash":
                ms = self._resolve_media_server(f.server, f.media_server)
                sim.call_later(f.at, ms.crash)
                if f.restart_after_s is not None:
                    sim.call_later(f.at + f.restart_after_s, ms.restart)
            elif f.kind == "control-partition":
                state = self._ensure_control_state()
                sim.call_later(f.at, lambda s=state: self._partition(s, True))
                sim.call_later(f.at + f.duration_s,
                               lambda s=state: self._partition(s, False))
            elif f.kind == "control-impair":
                state = self._ensure_control_state()
                sim.call_later(
                    f.at,
                    lambda s=state, f=f: s.impair(
                        drop_prob=f.drop_prob, delay_s=f.delay_s,
                        jitter_s=f.jitter_s),
                )
                sim.call_later(f.at + f.duration_s,
                               lambda s=state: s.clear_impair())
            else:  # pragma: no cover - plan validation catches this
                raise ValueError(f"unknown fault kind {f.kind!r}")

    def _resolve_media_server(self, server: str, media_server: str):
        """A crash target may be a primary or an edge replica
        (``media@region``) — anywhere the service can serve from."""
        try:
            srv = self.engine.servers[server]
        except KeyError:
            known = sorted(self.engine.servers)
            raise ValueError(
                f"server-crash targets unknown server {server!r}; "
                f"known servers: {known}") from None
        candidates = list(srv.all_media_servers())
        for ms in candidates:
            if ms.name == media_server:
                return ms
        known = sorted(ms.name for ms in candidates)
        raise ValueError(
            f"server-crash targets unknown media server "
            f"{media_server!r} on {server!r}; known media servers: "
            f"{known}")

    def _check_link(self, src: str, dst: str) -> None:
        links = self.engine.network.links
        if (src, dst) not in links and (dst, src) not in links:
            raise ValueError(f"no link between {src!r} and {dst!r}")

    def _schedule_outage(self, src: str, dst: str, at: float,
                         duration_s: float) -> None:
        sim = self.engine.sim
        sim.call_later(at, lambda: self._set_link(src, dst, False))
        sim.call_later(at + duration_s, lambda: self._set_link(src, dst, True))

    def _set_link(self, src: str, dst: str, up: bool) -> None:
        links = self.engine.network.links
        for key in ((src, dst), (dst, src)):
            link = links.get(key)
            if link is not None:
                link.set_up(up)

    def _partition(self, state: ControlFaultState, on: bool) -> None:
        state.partitioned = on
        sim = self.engine.sim
        if sim._tracing:
            sim._tracer.emit(sim.now, "fault.ctl_partition", "control",
                             state="on" if on else "off")

    # -- per-session wiring (called by engine.open_session) -----------------
    def on_session_opened(self, channel, client, handler) -> None:
        if self.control_state is not None:
            channel.client.fault = self.control_state
            channel.server.fault = self.control_state
        if self.retry is not None:
            client.retry = self.retry
            client.retry_rng = self.engine.rng.stream("faults:retry")
        if self.heartbeat is not None:
            self.monitors.append(HeartbeatMonitor(
                self.engine.sim, channel.client,
                name=handler.session_id, **self.heartbeat,
            ))

    def stop(self) -> None:
        """Stop all heartbeat monitors (lets the event queue drain)."""
        for monitor in self.monitors:
            monitor.stop()
