"""Topology construction: the paper's star over a broadband backbone.

The service topology (§6.1) is a population of client hosts, each on
its own access link, sharing a router and backbone with the server
hosts and cross-traffic sources:

    client1 ── access link ──┐
    client2 ── access link ──┼─ router ── backbone ── server hosts
        ...                  │      └───── cross-traffic sources
    clientN ── access link ──┘

:class:`TopologyBuilder` stamps these pieces out on a
:class:`~repro.net.topology.Network`. It carries no engine knowledge:
access-link parameters arrive as :class:`AccessLinkSpec` values (the
engine derives them from its config), and loss models arrive already
constructed so the builder stays free of RNG plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Network, Node

__all__ = ["AccessLinkSpec", "TopologyBuilder"]


@dataclass(frozen=True, slots=True)
class AccessLinkSpec:
    """Parameters of one client's access link (both directions).

    ``loss_model`` (e.g. Gilbert–Elliott) applies to the downstream
    router→client direction — the shared path all media arrive on.
    """

    rate_bps: float = 10e6
    delay_s: float = 0.010
    queue_packets: int = 60
    atm: bool = False
    loss_model: object | None = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("access rate must be positive")
        if self.queue_packets < 1:
            raise ValueError("access queue must hold at least one packet")


class TopologyBuilder:
    """Builds the client/router/server star on a network."""

    def __init__(
        self,
        network: Network,
        router: str = "router",
        *,
        backbone_rate_bps: float = 100e6,
        backbone_delay_s: float = 0.005,
        backbone_queue_packets: int = 500,
    ) -> None:
        self.network = network
        self.router = router
        self.backbone_rate_bps = backbone_rate_bps
        self.backbone_delay_s = backbone_delay_s
        self.backbone_queue_packets = backbone_queue_packets
        self.clients: list[str] = []
        self.server_hosts: list[str] = []
        self.traffic_hosts: list[str] = []
        if router not in network.nodes:
            network.add_node(router)

    # -- clients -----------------------------------------------------------
    def add_client(self, node_id: str,
                   spec: AccessLinkSpec | None = None) -> Node:
        """Add a client host with its own access link to the router.

        Downstream (router → client) carries the loss model: it is the
        bottleneck all of this viewer's media share.
        """
        spec = spec if spec is not None else AccessLinkSpec()
        node = self.network.add_node(node_id)
        self.network.add_link(
            self.router, node_id, spec.rate_bps, spec.delay_s,
            queue_packets=spec.queue_packets, loss_model=spec.loss_model,
            atm=spec.atm,
        )
        self.network.add_link(
            node_id, self.router, spec.rate_bps, spec.delay_s,
            queue_packets=spec.queue_packets, atm=spec.atm,
        )
        self.clients.append(node_id)
        return node

    # -- backbone hosts ----------------------------------------------------
    def _add_backbone_host(self, node_id: str, delay_s: float) -> Node:
        node = self.network.add_node(node_id)
        self.network.add_duplex_link(
            node_id, self.router, self.backbone_rate_bps, delay_s,
            queue_packets=self.backbone_queue_packets,
        )
        return node

    def add_server_host(self, node_id: str) -> Node:
        """Add a multimedia/media server host behind the router."""
        node = self._add_backbone_host(node_id, self.backbone_delay_s)
        self.server_hosts.append(node_id)
        return node

    def add_traffic_host(self, node_id: str,
                         delay_s: float = 0.001) -> Node:
        """Add a cross-traffic source host behind the router."""
        node = self._add_backbone_host(node_id, delay_s)
        self.traffic_hosts.append(node_id)
        return node
