"""Trace exporters: JSONL and Chrome trace-event format.

JSONL is the archival/interchange form (one event per line, stable
keys, trivially greppable); the Chrome trace-event form loads
directly in ``chrome://tracing`` and Perfetto, with one timeline row
per session (and per node for network-level events), so a population
run renders as parallel session lifelines with drops, grade changes
and watermark crossings as instants on top.

Both forms carry a schema stamp (``repro.trace`` + version) that
loaders validate, so a trace written by a future incompatible layout
fails loudly instead of silently mis-parsing. JSONL stamps it as a
header line (skipped — and not counted — by :func:`read_jsonl`;
headerless files load as legacy version-1 traces); the Chrome form
stamps it in the document's ``metadata`` object, which
``chrome://tracing``/Perfetto ignore.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.ioutil import atomic_open
from repro.obs.tracer import TraceEvent

__all__ = [
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "event_to_dict",
    "read_chrome_trace",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

#: schema identity stamped into every export
TRACE_SCHEMA = "repro.trace"
#: bumped on any incompatible change to the event dict layout.
#: v3: shared-delivery and admission kinds (``sflow.*``, ``bcast.*``,
#: ``admission.*``) join the stream; readers accept 1..current, so
#: v2 (and headerless v1) traces keep loading.
TRACE_SCHEMA_VERSION = 3


def _validate_schema(header: dict, where: str) -> int:
    """Check a schema stamp; returns the trace's version."""
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"{where}: unknown trace schema {schema!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    version = header.get("version")
    if not isinstance(version, int) or not 1 <= version <= \
            TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{where}: unsupported {TRACE_SCHEMA} version {version!r} "
            f"(this reader handles 1..{TRACE_SCHEMA_VERSION})"
        )
    return version


def event_to_dict(event: TraceEvent) -> dict:
    """Compact dict form: empty correlation fields are omitted."""
    out: dict = {"t": event.time, "kind": event.kind}
    if event.phase != "i":
        out["ph"] = event.phase
    if event.name:
        out["name"] = event.name
    if event.session:
        out["session"] = event.session
    if event.node:
        out["node"] = event.node
    if event.args:
        out["args"] = event.args
    return out


def event_from_dict(data: dict) -> TraceEvent:
    return TraceEvent(
        time=float(data["t"]),
        kind=str(data["kind"]),
        name=str(data.get("name", "")),
        phase=str(data.get("ph", "i")),
        session=str(data.get("session", "")),
        node=str(data.get("node", "")),
        args=dict(data.get("args", {})),
    )


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Write one JSON object per line after a schema header line;
    returns the number of *events* written (the header is free)."""
    n = 0
    with atomic_open(path) as fh:
        fh.write(json.dumps(
            {"schema": TRACE_SCHEMA, "version": TRACE_SCHEMA_VERSION},
            separators=(",", ":")) + "\n")
        for event in events:
            fh.write(json.dumps(event_to_dict(event),
                                separators=(",", ":")) + "\n")
            n += 1
    return n


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` records.

    The schema header (first line) is validated and skipped; files
    without one are accepted as legacy version-1 traces. A header for
    a different schema or a future version raises ``ValueError``.
    """
    events: list[TraceEvent] = []
    first = True
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if first:
                first = False
                if "schema" in data:
                    _validate_schema(data, where=str(path))
                    continue
            events.append(event_from_dict(data))
    return events


def _track_of(event: TraceEvent) -> str:
    """Timeline row: sessions get their own row, then nodes, then kernel."""
    if event.session:
        return event.session
    if event.node:
        return f"node:{event.node}"
    top = event.kind.split(".", 1)[0]
    return f"sim:{top}"


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Chrome trace-event JSON (the ``traceEvents`` array form).

    Simulated seconds map to trace microseconds. Spans use duration
    events ("B"/"E"); instants use "i" with thread scope. Thread-name
    metadata rows label each track.
    """
    trace: list[dict] = []
    tids: dict[str, int] = {}
    for event in events:
        track = _track_of(event)
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            trace.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": track},
            })
        record = {
            "name": event.name or event.kind,
            "cat": event.kind,
            "ph": event.phase,
            "ts": round(event.time * 1e6, 3),
            "pid": 1,
            "tid": tid,
        }
        if event.phase == "i":
            record["s"] = "t"
        args = dict(event.args)
        if event.session:
            args["session"] = event.session
        if event.node:
            args["node"] = event.node
        if args:
            record["args"] = args
        trace.append(record)
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "metadata": {"schema": TRACE_SCHEMA,
                     "version": TRACE_SCHEMA_VERSION},
    }


def write_chrome_trace(events: Iterable[TraceEvent],
                       path: str | Path) -> int:
    """Write the Chrome trace JSON; returns the trace-event count."""
    doc = to_chrome_trace(events)
    with atomic_open(path) as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return len(doc["traceEvents"])


def read_chrome_trace(path: str | Path) -> dict:
    """Load a Chrome trace document, validating its schema stamp.

    Documents without a ``metadata`` stamp (written by other tools)
    are accepted as-is; a stamp for a different schema or a future
    version raises ``ValueError``.
    """
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    metadata = doc.get("metadata")
    if isinstance(metadata, dict) and "schema" in metadata:
        _validate_schema(metadata, where=str(path))
    return doc
