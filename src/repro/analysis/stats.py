"""Small statistics helpers for experiment reporting."""

from __future__ import annotations

import numpy as np
from scipy import stats as sstats

__all__ = ["mean_ci", "summarize"]


def mean_ci(values, confidence: float = 0.95) -> tuple[float, float]:
    """Sample mean and half-width of its t confidence interval."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    mean = float(arr.mean())
    if arr.size < 2 or np.allclose(arr, arr[0]):
        return mean, 0.0
    sem = sstats.sem(arr)
    half = float(sem * sstats.t.ppf((1 + confidence) / 2.0, arr.size - 1))
    return mean, half


def summarize(values) -> dict[str, float]:
    """Mean / median / p95 / max of a sample (0s when empty)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {"mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
