"""Benchmark-trajectory harness behind ``python -m repro bench``.

Each scenario runs a traced population, measures wall time and event
throughput, rolls up the per-session QoE summaries and emits one
``BENCH_<name>.json`` artifact — the repo's persisted perf/quality
trajectory. Artifacts compare against checked-in baselines
(``benchmarks/baseline/``) with configurable regression thresholds:

* deterministic metrics (sessions completed, QoE score p50, trace
  event count) use ``threshold`` (default 10%) — same seed, same
  code, so any drift is a real behaviour change;
* ``events_per_sec`` uses the looser ``perf_threshold`` (default
  50%), because wall-clock throughput is machine-dependent and the
  committed baseline was recorded on different hardware than a CI
  runner. Tighten it when comparing runs from one machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BenchScenario", "SCENARIOS", "run_scenario",
           "run_benchmarks", "compare_to_baseline"]

BENCH_SCHEMA = "repro.bench"
BENCH_SCHEMA_VERSION = 1

#: default regression thresholds (fraction of the baseline value)
DEFAULT_THRESHOLD = 0.10
DEFAULT_PERF_THRESHOLD = 0.50


@dataclass(slots=True)
class BenchScenario:
    """One benchmarked configuration of the service."""

    name: str
    description: str
    n_clients: int = 4
    duration_s: float = 6.0
    stagger_s: float = 0.4
    seed: int = 11
    #: EngineConfig keyword overrides (loss model, RTCP mode, ...)
    config: dict[str, Any] = field(default_factory=dict)
    #: smoke mode scales the scenario down for CI gate runs
    smoke_clients: int = 2
    smoke_duration_s: float = 3.0
    #: "star" = the classic single-router shape; "cdn" = two regions
    #: with POPs and edge replicas, benched shared-flow off *and* on
    topology: str = "star"


SCENARIOS: dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            name="population_clean",
            description="synchronized A/V population, impairment-free",
        ),
        BenchScenario(
            name="population_lossy",
            description="same population over a bursty-loss access link",
            config={"loss_p_gb": 0.05, "loss_bad": 0.3},
        ),
        BenchScenario(
            name="cdn_hot",
            description="2-region CDN, one hot document, shared-flow "
                        "batching A/B (origin egress + QoE parity)",
            topology="cdn",
            n_clients=32,
            stagger_s=0.0,
            smoke_clients=8,
            # admission must clear 32 concurrent viewers (batching
            # shares delivery, not per-session contract reservations)
            config={"admission_capacity_bps": 400e6},
        ),
    )
}


def _media_egress_bytes(eng: Any) -> int:
    """Bytes transmitted off every serving media host (origin+replicas)."""
    hosts = {
        ms.node_id
        for server in eng.servers.values()
        for ms in server.all_media_servers()
    }
    return sum(
        link.stats.tx_bytes
        for (src, _dst), link in eng.network.links.items()
        if src in hosts
    )


def _run_once(scenario: BenchScenario, n_clients: int, duration_s: float,
              shared_flows: bool,
              profiler: "Any | None" = None) -> dict:
    """One traced population run; the raw measurements.

    Passing a :class:`~repro.obs.profile.KernelProfiler` installs it
    on the run's simulator (``bench --profile``); the caller reads
    attribution off the profiler afterwards.
    """
    from repro.core.config import EngineConfig
    from repro.core.engine import ServiceEngine
    from repro.core.experiments import av_markup
    from repro.obs.tracer import RecordingTracer

    tracer = RecordingTracer()
    layers = None
    config = dict(scenario.config)
    with_images = True
    if scenario.topology == "cdn":
        from repro.net import cdn_stack

        layers = cdn_stack(clients_per_region=max(1, n_clients // 2))
        config["shared_flows"] = shared_flows
        with_images = False  # one hot continuous A/V document
    eng = ServiceEngine(
        EngineConfig(seed=scenario.seed, **config),
        tracer=tracer, layers=layers,
    )
    eng.add_server(
        "srv1",
        documents={"doc": (av_markup(duration_s, with_images), "bench")},
    )
    eng.attach_service_monitor()
    eng.attach_timeseries()
    if profiler is not None:
        profiler.install(eng.sim)
    t0 = time.perf_counter()  # lint: allow(det-wall-clock)
    pop = eng.orchestrator.run_population(
        n_clients, "srv1", "doc", stagger_s=scenario.stagger_s
    )
    wall_s = time.perf_counter() - t0  # lint: allow(det-wall-clock)
    if profiler is not None:
        profiler.uninstall()
    events = sum(tracer.kind_counts().values())
    return {
        "wall_s": wall_s,
        "sim_time_s": eng.sim.now,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "sessions": len(pop),
        "completed": len(pop.completed()),
        "qoe": pop.qoe_summary(),
        "origin_egress_bytes": _media_egress_bytes(eng),
        "service": pop.service,
        "timeseries": pop.timeseries,
    }


def run_scenario(scenario: BenchScenario, smoke: bool = False,
                 profile: bool = False) -> dict:
    """Run one scenario and return its trajectory artifact dict.

    A ``topology="cdn"`` scenario runs its population twice — shared
    flows off, then on — and reports the standard keys from the
    shared run plus the egress A/B (``egress_reduction`` is the
    headline: independent-flow bytes over shared-flow bytes off the
    serving media hosts).

    ``profile=True`` installs a kernel profiler on the headline run
    (the shared one, for cdn scenarios) and adds its attribution
    under the artifact's ``profile`` key.
    """
    profiler = None
    if profile:
        from repro.obs.profile import KernelProfiler

        profiler = KernelProfiler()
    n_clients = scenario.smoke_clients if smoke else scenario.n_clients
    duration_s = scenario.smoke_duration_s if smoke \
        else scenario.duration_s
    artifact = {
        "schema": BENCH_SCHEMA,
        "version": BENCH_SCHEMA_VERSION,
        "name": scenario.name,
        "scenario": scenario.name,
        "description": scenario.description,
        "smoke": smoke,
        "seed": scenario.seed,
        "clients": n_clients,
        "duration_s": duration_s,
        "topology": scenario.topology,
    }
    if scenario.topology == "cdn":
        unshared = _run_once(scenario, n_clients, duration_s,
                             shared_flows=False)
        shared = _run_once(scenario, n_clients, duration_s,
                           shared_flows=True, profiler=profiler)
        artifact.update(shared)
        artifact["origin_egress_bytes_unshared"] = \
            unshared["origin_egress_bytes"]
        artifact["qoe_unshared"] = unshared["qoe"]
        egress = shared["origin_egress_bytes"]
        artifact["egress_reduction"] = (
            unshared["origin_egress_bytes"] / egress if egress else 0.0
        )
    else:
        artifact.update(_run_once(scenario, n_clients, duration_s,
                                  shared_flows=False, profiler=profiler))
    if profiler is not None:
        artifact["profile"] = profiler.to_artifact(
            scenario.name,
            extra={"scenario": scenario.name, "seed": scenario.seed,
                   "smoke": smoke},
        )
    return artifact


def run_benchmarks(names: list[str] | None = None,
                   smoke: bool = False,
                   profile: bool = False) -> dict[str, dict]:
    """Run the named scenarios (default: all); {name: artifact}."""
    selected = list(SCENARIOS) if not names else names
    out: dict[str, dict] = {}
    for name in selected:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            raise KeyError(
                f"unknown bench scenario {name!r}; "
                f"available: {sorted(SCENARIOS)}"
            )
        out[name] = run_scenario(scenario, smoke=smoke, profile=profile)
    return out


def _relative_drop(current: float, baseline: float) -> float:
    """Fractional regression of a higher-is-better metric (>= 0)."""
    if baseline <= 0:
        return 0.0
    return max(0.0, (baseline - current) / baseline)


def compare_to_baseline(
    artifact: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    perf_threshold: float = DEFAULT_PERF_THRESHOLD,
) -> list[str]:
    """Regression messages (empty list = within thresholds).

    Both dicts are ``run_scenario`` artifacts. Only higher-is-better
    metrics are gated; new metrics absent from an old baseline are
    ignored, so baselines age gracefully across schema additions.
    """
    if baseline.get("schema") not in (None, BENCH_SCHEMA):
        raise ValueError(
            f"baseline is not a {BENCH_SCHEMA} artifact: "
            f"{baseline.get('schema')!r}"
        )
    if baseline.get("smoke") != artifact.get("smoke"):
        return [
            f"{artifact.get('name')}: baseline smoke="
            f"{baseline.get('smoke')} does not match run smoke="
            f"{artifact.get('smoke')}; regenerate the baseline"
        ]
    problems: list[str] = []
    name = artifact.get("name", "?")

    def gate(metric: str, current: float | None,
             base: float | None, limit: float) -> None:
        if current is None or base is None:
            return
        drop = _relative_drop(float(current), float(base))
        if drop > limit:
            problems.append(
                f"{name}: {metric} regressed {drop:.1%} "
                f"({base:g} -> {current:g}, threshold {limit:.0%})"
            )

    gate("completed", artifact.get("completed"),
         baseline.get("completed"), threshold)
    gate("qoe.score.p50",
         (artifact.get("qoe") or {}).get("score", {}).get("p50"),
         (baseline.get("qoe") or {}).get("score", {}).get("p50"),
         threshold)
    gate("events", artifact.get("events"),
         baseline.get("events"), threshold)
    gate("events_per_sec", artifact.get("events_per_sec"),
         baseline.get("events_per_sec"), perf_threshold)
    # cdn scenarios only; absent from star artifacts and old baselines
    gate("egress_reduction", artifact.get("egress_reduction"),
         baseline.get("egress_reduction"), threshold)
    return problems
