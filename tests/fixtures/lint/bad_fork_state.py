"""Known-bad: worker entry point mutates module-level state."""

import multiprocessing as mp

completed = 0


def worker(n):
    global completed  # line 9: fork-module-state
    completed += n


def launch():
    proc = mp.Process(target=worker, args=(3,))
    proc.start()
    return proc
