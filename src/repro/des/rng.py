"""Seeded per-component random streams.

Every stochastic component (traffic source, loss channel, media trace
generator, user think-time model) draws from its *own* named
:class:`numpy.random.Generator`, spawned deterministically from one
root :class:`numpy.random.SeedSequence`. Adding a new component never
perturbs the draws of existing ones, so experiments stay comparable
across code revisions — the standard reproducibility discipline for
simulation studies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent, reproducible RNG streams by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream's seed derives from ``hash-independent`` stable
        material: the root seed plus the UTF-8 bytes of the name, so
        the mapping name → stream is identical across processes and
        Python versions.
        """
        gen = self._streams.get(name)
        if gen is None:
            material = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=tuple(int(b) for b in material)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
