"""Abstract syntax tree for HML documents.

The node set mirrors the paper's Figure 1 grammar: a document has a
TITLE and a sequence of sentences built from headings, paragraph and
separator marks, text blocks (with bold/italic/underline spans),
timed media elements (image/audio/video and the synchronized
audio+video pair) and hyperlinks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "HmlDocument",
    "HmlElement",
    "Heading",
    "Paragraph",
    "Separator",
    "TextSpan",
    "TextBlock",
    "ImageElement",
    "AudioElement",
    "VideoElement",
    "AudioVideoElement",
    "LinkKind",
    "HyperLink",
]


class HmlElement:
    """Marker base class for document body elements."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Heading(HmlElement):
    level: int  # 1..3
    text: str

    def __post_init__(self) -> None:
        if self.level not in (1, 2, 3):
            raise ValueError(f"heading level must be 1..3, got {self.level}")


@dataclass(frozen=True, slots=True)
class Paragraph(HmlElement):
    """Paragraph break (PAR)."""


@dataclass(frozen=True, slots=True)
class Separator(HmlElement):
    """Horizontal separator (SEP)."""


@dataclass(frozen=True, slots=True)
class TextSpan:
    text: str
    bold: bool = False
    italic: bool = False
    underline: bool = False


@dataclass(frozen=True, slots=True)
class TextBlock(HmlElement):
    spans: tuple[TextSpan, ...]

    @property
    def plain_text(self) -> str:
        return "".join(s.text for s in self.spans)


@dataclass(frozen=True, slots=True)
class ImageElement(HmlElement):
    source: str
    element_id: str
    startime: float = 0.0
    duration: float | None = None  # None: shown until scenario end
    width: int | None = None
    height: int | None = None
    where: tuple[int, int] | None = None  # display coordinates
    note: str = ""
    #: play the media this many times back-to-back (§7 extension)
    repeat: int = 1


@dataclass(frozen=True, slots=True)
class AudioElement(HmlElement):
    source: str
    element_id: str
    startime: float = 0.0
    duration: float | None = None
    note: str = ""
    #: play the media this many times back-to-back (§7 extension)
    repeat: int = 1


@dataclass(frozen=True, slots=True)
class VideoElement(HmlElement):
    source: str
    element_id: str
    startime: float = 0.0
    duration: float | None = None
    note: str = ""
    #: play the media this many times back-to-back (§7 extension)
    repeat: int = 1


@dataclass(frozen=True, slots=True)
class AudioVideoElement(HmlElement):
    """Synchronized audio+video pair.

    "The two media should start and stop playing at the same time"
    (§3.1): the pair carries two sources/ids and two STARTIMEs (the
    grammar's SyncOption), which the validator requires to be equal.
    """

    audio_source: str
    video_source: str
    audio_id: str
    video_id: str
    audio_startime: float = 0.0
    video_startime: float = 0.0
    duration: float | None = None
    note: str = ""

    @property
    def startime(self) -> float:
        return self.audio_startime


class LinkKind(enum.Enum):
    """Paper §3: sequential links preserve the author's order;
    explorational links branch to related material."""

    SEQUENTIAL = "sequential"
    EXPLORATIONAL = "explorational"


@dataclass(frozen=True, slots=True)
class HyperLink(HmlElement):
    target: str  # document name, optionally "host:doc" for other hosts
    kind: LinkKind = LinkKind.EXPLORATIONAL
    at_time: float | None = None  # auto-follow time (AT keyword)
    note: str = ""

    @property
    def target_host(self) -> str | None:
        """Host part for cross-server links ("host:document")."""
        if ":" in self.target:
            return self.target.split(":", 1)[0]
        return None

    @property
    def target_document(self) -> str:
        if ":" in self.target:
            return self.target.split(":", 1)[1]
        return self.target


@dataclass(slots=True)
class HmlDocument:
    """A parsed hypermedia document."""

    title: str
    elements: list[HmlElement] = field(default_factory=list)

    def media_elements(self) -> list[HmlElement]:
        return [
            e
            for e in self.elements
            if isinstance(
                e, (ImageElement, AudioElement, VideoElement, AudioVideoElement)
            )
        ]

    def hyperlinks(self) -> list[HyperLink]:
        return [e for e in self.elements if isinstance(e, HyperLink)]

    def text_blocks(self) -> list[TextBlock]:
        return [e for e in self.elements if isinstance(e, TextBlock)]

    def element_ids(self) -> list[str]:
        ids: list[str] = []
        for e in self.media_elements():
            if isinstance(e, AudioVideoElement):
                ids.extend([e.audio_id, e.video_id])
            else:
                ids.append(e.element_id)  # type: ignore[union-attr]
        return ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HmlDocument):
            return NotImplemented
        return self.title == other.title and self.elements == other.elements
