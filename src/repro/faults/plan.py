"""Declarative, schedulable fault plans.

A :class:`FaultPlan` is a list of frozen fault records, each pinned to
an absolute simulation time. Plans are pure data — they carry no
behaviour — so they serialise to/from dicts for CLI flags, CI jobs and
golden files, and two runs given the same seed and plan replay
identically.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

__all__ = [
    "LinkDownFault",
    "LinkFlapFault",
    "ServerCrashFault",
    "ControlPartitionFault",
    "ControlImpairFault",
    "FaultPlan",
]


@dataclass(frozen=True, slots=True)
class LinkDownFault:
    """Cut the ``src``→``dst`` link (both directions) for a while."""

    src: str
    dst: str
    at: float
    duration_s: float
    kind: str = "link-down"


@dataclass(frozen=True, slots=True)
class LinkFlapFault:
    """Repeatedly cut and restore a link: ``count`` outages of
    ``down_s`` seconds, one every ``period_s`` starting at ``at``."""

    src: str
    dst: str
    at: float
    period_s: float
    down_s: float
    count: int
    kind: str = "link-flap"


@dataclass(frozen=True, slots=True)
class ServerCrashFault:
    """Fail-stop one media server; optionally restart it later."""

    server: str
    media_server: str
    at: float
    #: None = never restarts
    restart_after_s: float | None = None
    kind: str = "server-crash"


@dataclass(frozen=True, slots=True)
class ControlPartitionFault:
    """Total control-plane partition: every control message delivered
    during the window is lost (the transport keeps retransmitting, but
    endpoint-level drops defeat it — this is what RPC retry is for)."""

    at: float
    duration_s: float
    kind: str = "control-partition"


@dataclass(frozen=True, slots=True)
class ControlImpairFault:
    """Lossy/slow control plane: messages are independently dropped
    with ``drop_prob`` and the survivors delayed by ``delay_s`` plus
    uniform jitter in ``[0, jitter_s)``."""

    at: float
    duration_s: float
    drop_prob: float = 0.0
    delay_s: float = 0.0
    jitter_s: float = 0.0
    kind: str = "control-impair"


_FAULT_TYPES = {
    "link-down": LinkDownFault,
    "link-flap": LinkFlapFault,
    "server-crash": ServerCrashFault,
    "control-partition": ControlPartitionFault,
    "control-impair": ControlImpairFault,
}

Fault = (LinkDownFault | LinkFlapFault | ServerCrashFault
         | ControlPartitionFault | ControlImpairFault)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An ordered set of scheduled faults for one run."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            self._validate(f)

    @staticmethod
    def _validate(f: Fault) -> None:
        """Reject malformed faults at construction, not mid-run.

        A NaN activation time or a zero-length flap window would not
        crash the injector — it would silently schedule nonsense (a
        NaN comparison is always false; a zero-period flap fires all
        its outages at once) — so the plan refuses them up front with
        a clear error. Target existence (links, servers) is checked
        at ``install_faults`` where the topology is known.
        """

        def positive(name: str, value: float) -> None:
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"{f.kind}: {name} must be a positive finite "
                    f"number, got {value!r}: {f}")

        def non_negative(name: str, value: float) -> None:
            if not math.isfinite(value) or value < 0:
                raise ValueError(
                    f"{f.kind}: {name} must be a finite number >= 0, "
                    f"got {value!r}: {f}")

        non_negative("at", f.at)
        if isinstance(f, LinkFlapFault):
            positive("period_s", f.period_s)
            positive("down_s", f.down_s)
            if f.count < 1:
                raise ValueError(
                    f"{f.kind}: count must be >= 1, got {f.count}: {f}")
        elif isinstance(f, (LinkDownFault, ControlPartitionFault)):
            positive("duration_s", f.duration_s)
        elif isinstance(f, ControlImpairFault):
            positive("duration_s", f.duration_s)
            non_negative("delay_s", f.delay_s)
            non_negative("jitter_s", f.jitter_s)
            if not 0.0 <= f.drop_prob <= 1.0 or math.isnan(f.drop_prob):
                raise ValueError(
                    f"{f.kind}: drop_prob must be in [0, 1], "
                    f"got {f.drop_prob!r}: {f}")
        elif isinstance(f, ServerCrashFault):
            if f.restart_after_s is not None:
                positive("restart_after_s", f.restart_after_s)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def empty(self) -> bool:
        return not self.faults

    def needs_control_state(self) -> bool:
        """Does this plan ever touch the control plane?"""
        return any(f.kind in ("control-partition", "control-impair")
                   for f in self.faults)

    def to_dict(self) -> dict:
        return {"faults": [asdict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        faults = []
        for item in data.get("faults", []):
            item = dict(item)
            kind = item.pop("kind")
            try:
                ftype = _FAULT_TYPES[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            faults.append(ftype(**item))
        return cls(faults=tuple(faults))
