"""Control-path fault machinery: drop/delay state, retry, heartbeats.

The reliable control transport (go-back-N) retransmits forever, so a
*network* outage only delays control RPCs. What it cannot survive is
endpoint-level loss — a partitioned or crashed peer — which is what
:class:`ControlFaultState` models and :class:`RetryPolicy` plus
:class:`HeartbeatMonitor` defend against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.des import Interrupt, Simulator
from repro.service.messages import ControlEndpoint

__all__ = ["ControlFaultState", "RetryPolicy", "HeartbeatMonitor"]


class ControlFaultState:
    """Shared drop/delay switch applied to control endpoints.

    The injector flips ``partitioned``/``impaired`` at the scheduled
    fault times; every endpoint carrying ``fault = state`` consults
    :meth:`decide` per delivered message. The RNG is drawn **only
    while a fault window is open**, so installing the state with an
    empty plan perturbs nothing.
    """

    def __init__(self, rng) -> None:
        self.rng = rng
        self.partitioned = False
        self.impaired = False
        self.drop_prob = 0.0
        self.delay_s = 0.0
        self.jitter_s = 0.0

    def impair(self, drop_prob: float = 0.0, delay_s: float = 0.0,
               jitter_s: float = 0.0) -> None:
        self.impaired = True
        self.drop_prob = drop_prob
        self.delay_s = delay_s
        self.jitter_s = jitter_s

    def clear_impair(self) -> None:
        self.impaired = False
        self.drop_prob = 0.0
        self.delay_s = 0.0
        self.jitter_s = 0.0

    def decide(self, now: float) -> tuple[str, float]:
        """("pass" | "drop" | "delay", delay_s) for one message."""
        if self.partitioned:
            return "drop", 0.0
        if not self.impaired:
            return "pass", 0.0
        if self.drop_prob > 0 and self.rng.random() < self.drop_prob:
            return "drop", 0.0
        delay = self.delay_s
        if self.jitter_s > 0:
            delay += self.jitter_s * float(self.rng.random())
        if delay > 0:
            return "delay", delay
        return "pass", 0.0


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout + exponential backoff + deterministic jitter for RPCs."""

    timeout_s: float = 2.0
    max_attempts: int = 4
    backoff: float = 2.0
    max_timeout_s: float = 15.0
    #: each backoff step is scaled by ``1 ± jitter_frac * u``, u drawn
    #: from the session's seeded retry stream — desynchronises client
    #: herds without breaking replay
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def next_timeout(self, current_s: float, rng=None) -> float:
        nxt = min(current_s * self.backoff, self.max_timeout_s)
        if rng is not None and self.jitter_frac > 0:
            nxt *= 1.0 + self.jitter_frac * (2.0 * float(rng.random()) - 1.0)
        return nxt


class HeartbeatMonitor:
    """Periodic liveness probing over a control endpoint.

    Sends an ``hb`` request every ``interval_s``; the remote endpoint
    acks at the transport layer (see ControlEndpoint), so a missing
    ack within ``timeout_s`` means the path or peer is gone, not just
    busy. ``miss_limit`` consecutive misses declare failure and invoke
    ``on_failure`` once per outage; a later ack clears the state.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: ControlEndpoint,
        interval_s: float = 1.0,
        timeout_s: float = 0.5,
        miss_limit: int = 3,
        on_failure: Callable[[], None] | None = None,
        on_recovery: Callable[[], None] | None = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.miss_limit = miss_limit
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self.name = name or endpoint.name
        self.misses = 0
        self.consecutive_misses = 0
        self.failed = False
        self.probes = 0
        self._stopped = False
        self.process = sim.process(self._run(), name=f"hb:{self.name}")

    def stop(self) -> None:
        self._stopped = True
        if self.process.is_alive:
            self.process.interrupt("monitor stopped")

    def _run(self):
        sim = self.sim
        try:
            while not self._stopped:
                yield sim.timeout(self.interval_s)
                if self._stopped:
                    return
                self.probes += 1
                _, ev = self.endpoint.request("hb", {})
                yield sim.any_of([ev, sim.timeout(self.timeout_s)])
                if ev.triggered:
                    if self.failed:
                        self.failed = False
                        if sim._tracing:
                            sim._tracer.emit(sim.now, "hb.ok", self.name)
                        if self.on_recovery is not None:
                            self.on_recovery()
                    self.consecutive_misses = 0
                else:
                    self.misses += 1
                    self.consecutive_misses += 1
                    if sim._tracing:
                        sim._tracer.emit(sim.now, "hb.miss", self.name,
                                         consecutive=self.consecutive_misses)
                    if (self.consecutive_misses >= self.miss_limit
                            and not self.failed):
                        self.failed = True
                        if sim._tracing:
                            sim._tracer.emit(sim.now, "hb.fail", self.name,
                                             misses=self.consecutive_misses)
                        if self.on_failure is not None:
                            self.on_failure()
        except Interrupt:
            return
