"""Merge laws for sharded population results.

Two layers, with different algebraic strength:

* **Population documents** (outcome lists + integer metric counts)
  merge exactly: outcomes concatenate and re-sort by global session
  index, counts add. Integer addition and sorted union are
  associative and commutative with :func:`empty_population_doc` as
  identity — property-tested over arbitrary splits and orders.

* **Telemetry** (ServiceReport, TimeSeries) merges are mathematically
  associative but sum floats, and float addition is not bit-exact
  under re-association. The final merge therefore always folds cell
  documents in **canonical order** (sorted by cell index), never
  incrementally per shard — so any permutation of any partition of
  the cells produces byte-identical merged telemetry, which is what
  makes the population digest shard-count-invariant.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "empty_population_doc",
    "session_index",
    "merge_population_docs",
    "merge_cell_docs",
    "merged_digest",
    "qoe_summary_of",
]


def empty_population_doc() -> dict[str, Any]:
    """The merge identity: no outcomes, no counts."""
    return {"outcomes": [], "metrics": {}}


def session_index(outcome: dict[str, Any]) -> int:
    """Global session index from an outcome doc (``sess-17`` -> 17)."""
    sid = str(outcome.get("session_id", ""))
    try:
        return int(sid.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        raise ValueError(f"outcome has no global session id: {sid!r}") \
            from None


def merge_population_docs(a: dict[str, Any],
                          b: dict[str, Any]) -> dict[str, Any]:
    """Exact merge of two population docs (see module docstring)."""
    from repro.obs.metrics import MetricsRegistry

    outcomes = sorted(
        list(a.get("outcomes", [])) + list(b.get("outcomes", [])),
        key=session_index,
    )
    seen: set[int] = set()
    for o in outcomes:
        idx = session_index(o)
        if idx in seen:
            raise ValueError(
                f"duplicate session index {idx} in population merge")
        seen.add(idx)
    return {
        "outcomes": outcomes,
        "metrics": MetricsRegistry.merge_counts(
            [a.get("metrics", {}), b.get("metrics", {})]),
    }


def merge_cell_docs(cell_docs: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold cell documents into one population doc, canonically.

    Cells are sorted by index before folding, so the result is
    invariant under any permutation (or shard-partitioning) of the
    input — including the float-summing telemetry merges.
    """
    if not cell_docs:
        raise ValueError("merge needs at least one cell document")
    docs = sorted(cell_docs, key=lambda d: int(d["cell"]))
    seen_cells: set[int] = set()
    for d in docs:
        c = int(d["cell"])
        if c in seen_cells:
            raise ValueError(f"duplicate cell {c} in merge")
        seen_cells.add(c)

    pop = empty_population_doc()
    for d in docs:
        pop = merge_population_docs(pop, d["population"])

    merged: dict[str, Any] = dict(pop)
    service_docs = [d["service"] for d in docs if d.get("service")]
    if service_docs:
        from repro.obs.service_metrics import ServiceReport

        report = ServiceReport.from_dict(service_docs[0])
        for doc in service_docs[1:]:
            report = report.merge(ServiceReport.from_dict(doc))
        merged["service"] = report.to_dict()
    ts_docs = [d["timeseries"] for d in docs if d.get("timeseries")]
    if ts_docs:
        from repro.obs.timeseries import TimeSeries

        merged["timeseries"] = TimeSeries.merge_all(
            TimeSeries.from_dict(doc) for doc in ts_docs
        ).to_dict()
    return merged


def merged_digest(merged: dict[str, Any]) -> str:
    """Digest of a merged population doc (wall-clock-free fields)."""
    from repro.faults.digest import population_digest

    return population_digest({
        key: merged[key]
        for key in ("outcomes", "metrics", "service", "timeseries")
        if key in merged
    })


def qoe_summary_of(merged: dict[str, Any]) -> dict[str, Any]:
    """Population QoE rollup over a merged doc's outcome QoE dicts.

    Mirrors :meth:`PopulationResult.qoe_summary` field for field, so
    a sharded run reports the same percentiles a monolithic run
    would. Empty when the outcomes carry no QoE (untraced cells).
    """
    from repro.obs.qoe import SessionQoE, qoe_summary

    qoes = []
    for outcome in merged.get("outcomes", []):
        q = outcome.get("result", {}).get("qoe")
        if not q:
            continue
        qoe = SessionQoE(session=q.get("session",
                                       outcome.get("session_id", "")))
        for key in ("score", "duration_s", "startup_s", "stall_count",
                    "stall_time_s", "skew_violations", "degraded_time_s",
                    "frames_sent", "frames_played", "frames_dropped",
                    "frames_lost"):
            if key in q:
                setattr(qoe, key, q[key])
        qoe.latency = dict(q.get("latency", {}))
        qoes.append(qoe)
    if not qoes:
        return {}
    return qoe_summary(qoes)
