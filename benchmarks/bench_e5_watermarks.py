"""E5 — buffer watermark monitoring (the [LIT 92] mechanism).

Claim (§4): "when the buffer monitoring mechanism experiences buffer
underflow, the presentation scheduler may lead to frame duplication
in order to avoid noticeable gaps in presentation. Correspondingly,
when buffer's occupancy exceeds some upper threshold, the scheduler
should drop frames to decrease the buffer's data."
"""

from repro.analysis import render_table
from repro.core.experiments import run_watermark_comparison


def test_e5_watermarks(report, once):
    headers, rows = once(run_watermark_comparison)
    report("e5_watermarks",
           render_table("E5 — watermark monitoring under a rate-deficit "
                        "phase followed by a 2x delivery burst",
                        headers, rows))
    on = next(r for r in rows if r[0] == "on")
    off = next(r for r in rows if r[0] == "off")
    # Underflow side: duplication eliminates (or sharply cuts) gaps.
    assert on[1] < off[1] / 4, "monitor should cut gaps by >4x"
    assert on[2] > 0, "monitor should have duplicated frames"
    # Overflow side: controlled dropping prevents forced overflow drops.
    assert on[4] < off[4], "monitor should avoid forced overflow drops"
    assert off[4] > 0, "without monitoring the burst must overflow"
