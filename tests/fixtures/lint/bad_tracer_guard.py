"""Fixture: tracer call without the enabled-guard boolean."""


class Stage:
    def __init__(self, sim) -> None:
        self.sim = sim

    def fire(self) -> None:
        self.sim._tracer.emit(self.sim.now, "stage.fire", "x")
