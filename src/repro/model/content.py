"""Content abstraction: where each inline media entity lives.

A SOURCE string in the markup ("imgsrv:/I1.gif") resolves to a
:class:`MediaLocator` — the media server that stores the object and
the object's path/id on that server. The :class:`ContentIndex`
collects the locators of a document, giving the flow scheduler the
set of media servers to activate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    HmlDocument,
    ImageElement,
    VideoElement,
)
from repro.media.types import MediaType

__all__ = ["MediaLocator", "ContentIndex"]


@dataclass(frozen=True, slots=True)
class MediaLocator:
    """Resolved storage location of one inline media entity."""

    element_id: str
    media_type: MediaType
    server: str  # media server name ("" = same host as the scenario)
    path: str

    @property
    def source(self) -> str:
        return f"{self.server}:{self.path}" if self.server else self.path


def _split_source(source: str) -> tuple[str, str]:
    if ":" in source:
        server, path = source.split(":", 1)
        return server, path
    return "", source


class ContentIndex:
    """Locators of every media element in a document, by id."""

    def __init__(self, locators: dict[str, MediaLocator]) -> None:
        self._locators = dict(locators)

    @classmethod
    def from_document(cls, doc: HmlDocument) -> "ContentIndex":
        locators: dict[str, MediaLocator] = {}

        def add(element_id: str, media_type: MediaType, source: str) -> None:
            server, path = _split_source(source)
            locators[element_id] = MediaLocator(
                element_id=element_id, media_type=media_type,
                server=server, path=path,
            )

        for e in doc.media_elements():
            if isinstance(e, ImageElement):
                add(e.element_id, MediaType.IMAGE, e.source)
            elif isinstance(e, AudioElement):
                add(e.element_id, MediaType.AUDIO, e.source)
            elif isinstance(e, VideoElement):
                add(e.element_id, MediaType.VIDEO, e.source)
            elif isinstance(e, AudioVideoElement):
                add(e.audio_id, MediaType.AUDIO, e.audio_source)
                add(e.video_id, MediaType.VIDEO, e.video_source)
        return cls(locators)

    def __len__(self) -> int:
        return len(self._locators)

    def __contains__(self, element_id: str) -> bool:
        return element_id in self._locators

    def get(self, element_id: str) -> MediaLocator:
        try:
            return self._locators[element_id]
        except KeyError:
            raise KeyError(f"no media element {element_id!r}") from None

    def ids(self) -> list[str]:
        return sorted(self._locators)

    def servers(self) -> set[str]:
        """The distinct media servers this document draws from."""
        return {loc.server for loc in self._locators.values() if loc.server}

    def by_server(self) -> dict[str, list[MediaLocator]]:
        out: dict[str, list[MediaLocator]] = {}
        for loc in self._locators.values():
            out.setdefault(loc.server, []).append(loc)
        for locs in out.values():
            locs.sort(key=lambda l: l.element_id)
        return out

    def continuous_ids(self) -> list[str]:
        return sorted(
            eid for eid, loc in self._locators.items()
            if loc.media_type.is_continuous
        )
