"""E11 — the service over an ATM access link (§7 future work).

"Future work will focus on ... the implementation of a testbed
application on an ATM network." The cell layer introduces two
effects the service must survive: the ~10% cell-header tax and
cell-loss amplification (one lost cell destroys the whole AAL5
frame).
"""

from repro.analysis import render_table
from repro.core.experiments import run_atm_comparison
from repro.net.atm import CELL_BYTES, CELL_PAYLOAD_BYTES


def test_e11_atm_access(report, once):
    headers, rows = once(run_atm_comparison)
    report("e11_atm",
           render_table("E11 — plain vs ATM access link "
                        f"(53-byte cells, {CELL_PAYLOAD_BYTES}B payload; "
                        "same nominal rate and cell-loss process)",
                        headers, rows))
    table = {(r[0], r[1]): r for r in rows}
    # Clean networks: the service runs identically over ATM (the cell
    # tax fits inside the provisioned headroom).
    assert table[("atm", "no")][3] == 0
    assert table[("plain", "no")][3] == 0
    # Loss amplification: the same cell-level loss process costs ATM
    # several times the frame loss of the plain link.
    plain_loss = table[("plain", "yes")][4]
    atm_loss = table[("atm", "yes")][4]
    assert atm_loss > 3 * plain_loss, \
        "one lost cell must kill a whole multi-cell frame"
    # And the presentation feels it (gaps appear under ATM loss).
    assert table[("atm", "yes")][3] > table[("plain", "yes")][3]
