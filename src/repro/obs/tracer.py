"""Structured tracing: the hook-point API and the in-memory recorder.

Instrumented components never import this module on their hot paths;
they hold a tracer reference (``None`` by default) and guard every
emit with a boolean, so disabled tracing costs one attribute check.

Event model
-----------

A :class:`TraceEvent` is an instant ("i") or a span edge ("B"/"E")
with a dotted ``kind`` (``kernel.event``, ``link.drop``,
``qos.grade`` ...), an optional human ``name`` (process name, stream
id), optional ``session``/``node`` correlation keys, and free-form
``args``. Kinds in use across the stack:

========================  =====================================================
kind                      emitted by
========================  =====================================================
``kernel.event``          :meth:`Simulator.step` — one per fired event
``process.spawn``         :class:`~repro.des.kernel.Process` creation
``process.finish``        process completion (``args["outcome"]``)
``process.interrupt``     :meth:`Process.interrupt`
``link.enqueue``          :meth:`~repro.net.link.Link.enqueue`
``link.drop``             queue overflow / Gilbert–Elliott loss
``net.deliver``           packet delivered to its destination node
``net.rx_discard``        delivered, but no handler bound on the port
``channel.message``       reliable-channel message reassembled
``channel.retransmit``    go-back-N window resend
``flow.plan`` / ``.schedule``  flow-scheduler output (per session / per flow)
``impair.state``          Gilbert–Elliott good/bad state transition
``impair.loss``           Gilbert–Elliott loss decision (per lost packet)
``rtp.send``              sender packetized one frame (frame/seq0/packets)
``rtp.recv``              receiver accepted one RTP packet (delay, jitter)
``rtp.frame``             receiver reassembled a complete frame
``rtp.frame_drop``        reassembly gave up on a frame (missing fragments)
``rtcp.report``           client reporter sent a receiver report
``rtcp.recv``             server sink received a receiver report
``qos.grade``             server QoS manager grade transition
``qos.stream``            client QoS manager feedback-loop registration
``skew.correct``          skew controller drop/duplicate decision
``buffer.watermark``      buffer monitor LOW/NORMAL/HIGH crossing
``buffer.push``/``.drop``  media buffer accepted / overflow-dropped a frame
``playout.*``             playout event log (frame, gap, drop, duplicate, ...)
``session`` (B/E)         orchestrator per-session lifecycle span
``workload``/``population`` (B/E)  orchestrator run-level spans
``fault.link``            :meth:`~repro.net.link.Link.set_up` transition
``fault.crash``/``.restart``  media-server crash / restart
``fault.ctl_partition``   control partition opened / closed
``fault.ctl_drop``/``.ctl_delay``  control message dropped / delayed
``ctl.retry``             client RPC timed out; retry scheduled
``hb.miss``/``.fail``/``.ok``  heartbeat miss / failure declared / recovery
``recovery.detect``       watchdog noticed a crash (after detect delay)
``recovery.stream``       stream failed over (``t_recover_s``, target)
``recovery.failed``       stream could not be restored (``reason``)
``admission.accept``      connection admitted (contract, reserved bps)
``admission.block``       connection refused by admission control
``sflow.open``/``.join``  shared-flow batch opened / viewer joined
``sflow.start``           batch closed; master transmission begins
``sflow.carrier``         one origin→fan-out carrier frame shipped
``sflow.finish``          master transmission completed (frame count)
``bcast.start``           periodic broadcast channels spawned
``bcast.carrier``         one broadcast carrier packet shipped
``bcast.join``            viewer tuned in (``wait_s`` startup wait)
``bcast.stop``            broadcaster stopped (viewers, carrier bytes)
========================  =====================================================

This table is informal documentation; the machine-checked source of
truth is the trace-v3 catalogue in :mod:`repro.obs.schema`
(``TRACE_CATALOGUE``), which declares every kind's phase, tier and
field schema. ``python -m repro lint --self`` verifies each emit site
in the tree against it.

Frame-lifecycle correlation: data-path events carry ``session`` and a
``frame`` arg (the frame's per-stream seq), letting
:mod:`repro.obs.lifecycle` join a frame's journey across layers.

Detail vs control tier
----------------------

Emit sites are split into two volume tiers. The *detail* tier is the
per-packet/per-frame firehose — ``kernel.event``, ``link.enqueue``,
``net.deliver``, ``rtp.send``/``.recv``/``.frame``, ``buffer.push``,
``playout.frame``, ``impair.loss``, ``sflow.carrier`` and
``bcast.carrier`` — together ~99% of all events on a population run.
Those sites guard on ``sim._tracing_detail``, which is True only when
the installed tracer declares ``detail = True`` (the
:class:`RecordingTracer` default). Everything else — faults,
admission, QoS grades, drops, recovery, spans — is the *control*
tier, guarded on ``sim._tracing`` alone. A low-overhead tracer such
as the flight recorder sets ``detail = False`` and receives only the
control tier, so the hot path stays dark while incident-relevant
events still flow.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceEvent", "Tracer", "RecordingTracer"]


@dataclass(slots=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    kind: str
    name: str = ""
    phase: str = "i"  # "i" instant | "B" span begin | "E" span end
    session: str = ""
    node: str = ""
    args: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Hook-point API. The base class records nothing.

    ``enabled`` is the contract with instrumentation sites: they may
    skip argument construction entirely when it is False, so a
    subclass that wants events must set it True.

    ``detail`` opts a tracer in to the per-packet/per-frame tier (see
    the module docstring). Tracers that only need control-plane
    events set it False and pay near-zero overhead on hot paths.
    """

    enabled: bool = False
    detail: bool = True

    def emit(self, time: float, kind: str, name: str = "", *,
             session: str = "", node: str = "",
             **args: Any) -> None:
        """Record an instant event."""

    def span_begin(self, time: float, kind: str, name: str = "", *,
                   session: str = "", node: str = "",
                   **args: Any) -> None:
        """Open a span (matched by kind+name in :meth:`span_end`)."""

    def span_end(self, time: float, kind: str, name: str = "", *,
                 session: str = "", node: str = "",
                 **args: Any) -> None:
        """Close the innermost span opened with the same kind+name."""


class RecordingTracer(Tracer):
    """Collects events in memory and counts them in a registry.

    Every emit increments ``trace_events{kind=...}`` in ``metrics``
    (and ``session_events{session=...,kind=...}`` when the event
    carries a session id), so an exported JSONL stream always
    reconciles with the registry snapshot — the invariant the
    observability tests assert.

    ``max_events`` bounds memory on very long runs: past the cap the
    tracer warns once and degrades to ring-buffer retention — the
    *oldest* events are shed so the tail of the run stays inspectable
    (``dropped_events`` says how many were evicted). Events always
    count in the registry regardless of retention.
    """

    enabled = True

    def __init__(self, metrics: "MetricsRegistry | None" = None,
                 max_events: int | None = None) -> None:
        from repro.obs.metrics import MetricsRegistry

        # A plain list until max_events is hit, then a bounded deque
        # (ring) of the same capacity.
        self.events: "list[TraceEvent] | deque[TraceEvent]" = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.max_events = max_events
        self.dropped_events = 0
        self._cap_warned = False

    def _record(self, event: TraceEvent) -> None:
        self.metrics.counter("trace_events", kind=event.kind).inc()
        if event.session:
            self.metrics.counter("session_events", session=event.session,
                                 kind=event.kind).inc()
        if self.max_events is not None and len(self.events) >= self.max_events:
            if not self._cap_warned:
                self._cap_warned = True
                warnings.warn(
                    f"RecordingTracer hit max_events={self.max_events}; "
                    "degrading to ring-buffer retention (oldest events "
                    "dropped). Use FlightRecorder for always-on capture.",
                    RuntimeWarning, stacklevel=4)
                # Swap the unbounded list for a ring of the same
                # capacity; from here on appends evict the oldest.
                self.events = deque(self.events, maxlen=self.max_events)
            self.dropped_events += 1
        self.events.append(event)

    def emit(self, time: float, kind: str, name: str = "", *,
             session: str = "", node: str = "", **args: Any) -> None:
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="i",
                                session=session, node=node, args=args))

    def span_begin(self, time: float, kind: str, name: str = "", *,
                   session: str = "", node: str = "", **args: Any) -> None:
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="B",
                                session=session, node=node, args=args))

    def span_end(self, time: float, kind: str, name: str = "", *,
                 session: str = "", node: str = "", **args: Any) -> None:
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="E",
                                session=session, node=node, args=args))

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def kind_counts(self) -> dict[str, int]:
        """Event count per kind, from the registry (includes shed events)."""
        return {
            labels["kind"]: int(counter.value)
            for labels, counter in self.metrics.series("trace_events")
        }

    def session_snapshot(self, session_id: str) -> dict[str, int]:
        """Per-kind event counts attributed to one session."""
        return {
            labels["kind"]: int(counter.value)
            for labels, counter in self.metrics.series("session_events")
            if labels.get("session") == session_id
        }

    def select(self, kind: str | None = None,
               session: str | None = None) -> list[TraceEvent]:
        return [
            e for e in self.events
            if (kind is None or e.kind == kind)
            and (session is None or e.session == session)
        ]
