"""The flow scheduler (§4).

"At the server's site, the flow scheduler uses the retrieved from the
multimedia database presentation scenario to compute a *flow
scenario* for each participating media stream. This flow scenario
specifies the sending start time instances of the corresponding media
streams, as well as other transmission properties (e.g. transmission
rates). Furthermore, it activates the appropriate media servers."

Each continuous stream is sent ahead of its playout deadline by a
*lead* matched to the client's media time window (so the buffer
prefills during the intentional startup delay); discrete objects are
fetched immediately, ordered by their presentation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.media.encodings import CodecRegistry
from repro.media.types import MediaType
from repro.model.scenario import PresentationScenario, StreamSpec
from repro.server.accounts import QoSPreferences

__all__ = ["FlowSpec", "FlowScenario", "FlowScheduler"]


@dataclass(frozen=True, slots=True)
class FlowSpec:
    """Transmission plan for one media stream."""

    stream_id: str
    media_type: MediaType
    server: str
    path: str
    send_offset_s: float  # when to start sending, from session start
    duration_s: float | None
    initial_grade: int
    nominal_rate_bps: float
    clock_rate: int
    frame_interval_s: float

    @property
    def is_continuous(self) -> bool:
        return self.media_type.is_continuous


@dataclass(slots=True)
class FlowScenario:
    """The full per-session transmission plan."""

    flows: list[FlowSpec] = field(default_factory=list)
    lead_s: float = 0.0

    def continuous(self) -> list[FlowSpec]:
        return [f for f in self.flows if f.is_continuous]

    def discrete(self) -> list[FlowSpec]:
        return [f for f in self.flows if not f.is_continuous]

    def by_server(self) -> dict[str, list[FlowSpec]]:
        out: dict[str, list[FlowSpec]] = {}
        for f in self.flows:
            out.setdefault(f.server, []).append(f)
        return out

    def peak_rate_bps(self) -> float:
        """Worst-case concurrent sending rate (continuous streams).

        Computed over send intervals, the bandwidth figure admission
        control charges for the session.
        """
        events: list[tuple[float, float]] = []
        for f in self.continuous():
            if f.duration_s is None:
                continue
            events.append((f.send_offset_s, f.nominal_rate_bps))
            events.append((f.send_offset_s + f.duration_s, -f.nominal_rate_bps))
        events.sort()
        peak = current = 0.0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak


class FlowScheduler:
    """Computes flow scenarios from presentation scenarios."""

    def __init__(self, codecs: CodecRegistry) -> None:
        self.codecs = codecs

    @staticmethod
    def grade_for_ratio(codec, ratio: float) -> int:
        """Deepest grade whose rate fits ``ratio`` of full quality.

        Used to translate a negotiated bandwidth grant into the
        initial quality grade of the session's streams.
        """
        if ratio >= 1.0:
            return 0
        target = ratio * codec.best.bitrate_bps
        for grade in codec.ladder:
            if grade.bitrate_bps <= target:
                return grade.index
        return codec.ladder[-1].index

    def _grade_for(self, spec: StreamSpec, prefs: QoSPreferences | None,
                   initial_grade: int) -> int:
        if prefs is None:
            return initial_grade
        # Never start deeper than the user's floor.
        floor = (
            prefs.video_floor_grade
            if spec.media_type is MediaType.VIDEO
            else prefs.audio_floor_grade
        )
        return min(initial_grade, floor)

    def compute(
        self,
        scenario: PresentationScenario,
        lead_s: float = 1.0,
        prefs: QoSPreferences | None = None,
        initial_grade: int = 0,
    ) -> FlowScenario:
        """Build the flow scenario.

        ``lead_s`` is how far ahead of each playout deadline the
        stream starts transmitting (matched to the client buffer's
        media time window; the client also delays presentation start
        by this much, so sending "t_i - lead" in client presentation
        time is "t_i" in session time).
        """
        if lead_s < 0:
            raise ValueError("lead_s must be >= 0")
        flows: list[FlowSpec] = []
        for spec in scenario.streams:
            entry = spec.entry
            if spec.is_continuous:
                codec = self.codecs.default_for(spec.media_type)
                grade_idx = self._grade_for(spec, prefs, initial_grade)
                grade = codec.grade(grade_idx)
                flows.append(
                    FlowSpec(
                        stream_id=spec.stream_id,
                        media_type=spec.media_type,
                        server=spec.locator.server,
                        path=spec.locator.path,
                        # The client delays presentation by its time
                        # window, so sending at t_i (session time) gives
                        # the buffer `lead` seconds of prefill.
                        send_offset_s=max(0.0, entry.start_time),
                        duration_s=entry.duration,
                        initial_grade=grade_idx,
                        nominal_rate_bps=float(grade.bitrate_bps),
                        clock_rate=codec.clock_rate,
                        frame_interval_s=grade.frame_interval_s,
                    )
                )
            else:
                flows.append(
                    FlowSpec(
                        stream_id=spec.stream_id,
                        media_type=spec.media_type,
                        server=spec.locator.server,
                        path=spec.locator.path,
                        send_offset_s=0.0,  # fetch discrete media eagerly
                        duration_s=entry.duration,
                        initial_grade=0,
                        nominal_rate_bps=0.0,
                        clock_rate=1,
                        frame_interval_s=0.0,
                    )
                )
        # Discrete objects fetch in presentation order.
        flows.sort(key=lambda f: (f.send_offset_s, f.stream_id))
        return FlowScenario(flows=flows, lead_s=lead_s)
