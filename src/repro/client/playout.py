"""Concurrent playout processes — one per media stream.

The paper's playout algorithm (§3.1):

    for i = 0 to number of structures E_i
        create a playout thread
        wait until current relative time = t_i
        play incoming stream S_i in nominal rate for duration d_i

Each tick the process consults the buffer monitor (underflow →
duplicate, overflow → drop) and, for sync-group slaves, the skew
controller; a missing frame at its deadline is a *gap* (an intramedia
synchronization failure), after which media time advances at nominal
rate so late frames are discarded as stale.
"""

from __future__ import annotations

from repro.client.buffers import MediaBuffer
from repro.client.metrics import PlayoutEventKind, PlayoutEventLog
from repro.client.monitor import BufferAction, BufferMonitor
from repro.client.skew import SkewController
from repro.des import Event, Simulator
from repro.media.types import Frame
from repro.model.sync import PlayoutEntry

__all__ = ["PauseGate", "PlayoutProcess"]


class PauseGate:
    """Shared pause/resume switch for all playout processes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._paused = False
        self._resume_event: Event | None = None

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        if not self._paused:
            self._paused = True
            self._resume_event = self.sim.event()

    def resume(self) -> None:
        if self._paused:
            self._paused = False
            event, self._resume_event = self._resume_event, None
            assert event is not None
            event.succeed()

    def wait(self):
        """Yieldable event that triggers on resume (None if running)."""
        return self._resume_event


class PlayoutProcess:
    """Deadline-driven playout of one continuous stream."""

    def __init__(
        self,
        sim: Simulator,
        entry: PlayoutEntry,
        buffer: MediaBuffer,
        log: PlayoutEventLog,
        nominal_frame_interval_s: float,
        monitor: BufferMonitor | None = None,
        skew: SkewController | None = None,
        gate: PauseGate | None = None,
        start_offset_s: float = 0.0,
        max_consecutive_gaps: int | None = None,
        gap_policy: str = "advance",
    ) -> None:
        """``gap_policy`` selects what a missed deadline does:

        * ``"advance"`` — media time moves on at nominal rate; frames
          arriving late are stale and get discarded (deadline-driven,
          keeps total playout time nominal);
        * ``"stall"`` — media time holds until data arrives, so a
          starved stream falls behind its sync group and the skew
          controller's drop/duplicate actions (the paper's short-term
          recovery) are what re-locks the pair.
        """
        if nominal_frame_interval_s <= 0:
            raise ValueError("nominal_frame_interval_s must be positive")
        if gap_policy not in ("advance", "stall"):
            raise ValueError(f"unknown gap_policy {gap_policy!r}")
        if entry.duration is None:
            raise ValueError(
                f"stream {entry.stream_id}: playout requires a known duration"
            )
        self.sim = sim
        self.entry = entry
        self.buffer = buffer
        self.log = log
        self.interval_s = nominal_frame_interval_s
        self.monitor = monitor
        self.skew = skew
        self.gate = gate
        self.start_offset_s = start_offset_s
        self.max_consecutive_gaps = max_consecutive_gaps
        self.gap_policy = gap_policy
        self.played_s = 0.0  # presented media time within the stream
        self.finished = sim.event()
        self._is_slave = (
            skew is not None and entry.sync_group is not None
            and not entry.is_sync_master
        )
        self._is_master = (
            skew is not None and entry.sync_group is not None
            and entry.is_sync_master
        )
        self.process = sim.process(self._run(), name=f"playout:{entry.stream_id}")

    # -- helpers ----------------------------------------------------------
    def _record(self, kind: PlayoutEventKind, grade: int = 0,
                frame_seq: int | None = None, reason: str = "") -> None:
        self.log.record(self.sim.now, self.entry.stream_id, kind,
                        media_time_s=self.played_s, grade=grade,
                        frame_seq=frame_seq, reason=reason)

    def _report_position(self, active: bool = True) -> None:
        if self.skew is not None:
            self.skew.report_position(self.entry.stream_id, self.played_s,
                                      active=active)

    def _pop_fresh(self, next_ticks: int) -> Frame | None:
        """Pop the next non-stale frame; stale frames are discarded."""
        while True:
            head = self.buffer.peek()
            if head is None:
                return None
            if head.media_time < next_ticks:
                stale = self.buffer.drop_head()
                self._record(PlayoutEventKind.DROP,
                             frame_seq=stale.seq if stale else None,
                             reason="stale")
                continue
            return self.buffer.pop()

    # -- the playout loop ---------------------------------------------------
    def _run(self):
        sim = self.sim
        if self.start_offset_s > 0:
            yield sim.timeout(self.start_offset_s)
        duration = self.entry.duration
        assert duration is not None
        clock = self.buffer.clock_rate
        self._record(PlayoutEventKind.START)
        self._report_position()
        next_ticks = 0
        consecutive_gaps = 0
        while self.played_s < duration - 1e-9:
            if self.gate is not None and self.gate.paused:
                self._record(PlayoutEventKind.PAUSE)
                self._report_position(active=False)
                yield self.gate.wait()
                self._record(PlayoutEventKind.RESUME)
                self._report_position(active=True)

            action = BufferAction.NONE
            if self.monitor is not None:
                action = self.monitor.check(sim.now)
                # Near the end of the stream a draining buffer is
                # expected, not an anomaly: don't stretch the tail.
                if (action is BufferAction.DUPLICATE
                        and duration - self.played_s
                        <= self.buffer.time_window_s):
                    action = BufferAction.NONE
            if self._is_slave:
                decision = self.skew.decide(
                    self.entry.stream_id, sim.now, self.interval_s
                )
                if decision.action == "duplicate":
                    action = BufferAction.DUPLICATE
                elif decision.action == "drop":
                    # Catching up overrides any monitor stretching —
                    # the two mechanisms must not fight.
                    action = BufferAction.NONE
                    dropped = 0
                    for _ in range(decision.drop_count):
                        # Never shed the last buffered frame: playing
                        # it snaps the position to its timestamp, which
                        # realigns faster than a drop credit of one
                        # interval. When delivery is arrival-limited
                        # (one frame per tick, e.g. a failover resume),
                        # shedding the head would eat every fresh frame
                        # while the slave gains nothing on the master.
                        if len(self.buffer) <= 1:
                            break
                        shed = self.buffer.drop_head()
                        if shed is None:
                            break
                        dropped += 1
                        self._record(PlayoutEventKind.DROP,
                                     frame_seq=shed.seq, reason="skew")
                    next_ticks += dropped * int(round(self.interval_s * clock))
                    self.played_s = min(
                        duration, self.played_s + dropped * self.interval_s
                    )
                    self._report_position()
            elif action is BufferAction.DROP:
                # Overflow: shed one buffered frame this tick.
                shed = self.buffer.drop_head()
                if shed is not None:
                    self._record(PlayoutEventKind.DROP,
                                 frame_seq=shed.seq, reason="overflow")
                    next_ticks += int(round(self.interval_s * clock))
                    self.played_s = min(duration,
                                        self.played_s + self.interval_s)

            if action is BufferAction.DUPLICATE:
                # Hold position: replay the previous frame interval.
                self._record(PlayoutEventKind.DUPLICATE)
                self._report_position()
                yield sim.timeout(self.interval_s)
                continue

            frame = self._pop_fresh(next_ticks)
            if frame is None:
                self._record(PlayoutEventKind.GAP)
                consecutive_gaps += 1
                if (self.max_consecutive_gaps is not None
                        and consecutive_gaps > self.max_consecutive_gaps):
                    break
                advance = self.gap_policy == "advance"
                if not advance and self._is_slave:
                    # A slave already lagging its master must not hold
                    # position on missing data — skip the gap so the
                    # skew stays bounded (late frames become stale and
                    # are dropped, the paper's "drop frames" action).
                    skew = self.skew.skew_of(self.entry.stream_id)
                    if skew is not None and skew < -self.skew.threshold_s:
                        advance = True
                if advance:
                    self.played_s = min(duration,
                                        self.played_s + self.interval_s)
                    next_ticks += int(round(self.interval_s * clock))
                self._report_position()
                yield sim.timeout(self.interval_s)
                continue
            consecutive_gaps = 0
            self._record(PlayoutEventKind.FRAME, grade=frame.grade,
                         frame_seq=frame.seq)
            frame_time = frame.duration / clock
            self.played_s = min(duration,
                                (frame.end_time) / clock)
            next_ticks = frame.end_time
            self._report_position()
            yield sim.timeout(frame_time)
        self._record(PlayoutEventKind.STOP)
        self._report_position(active=False)
        if not self.finished.triggered:
            self.finished.succeed(self.played_s)

    def cancel(self, cause: str = "disabled") -> None:
        """Stop this playout (user disabled the media, §5) and mark it
        finished so the presentation as a whole can still complete."""
        if self.process.is_alive:
            self.process.interrupt(cause)
        self._report_position(active=False)
        if not self.finished.triggered:
            self.finished.succeed(self.played_s)
