"""Client and server session logic over the control channel (§5).

:class:`ServerSessionHandler` is the server half: it authenticates,
admits, serves scenarios, activates media servers per the flow
scenario, and manages the suspend-connection grace interval for
cross-server navigation. :class:`ClientSession` is the browser half:
a set of coroutine methods (``yield from`` them inside a simulation
process) that drive the Figure 4 state machine.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.des import Simulator
from repro.server.accounts import AuthenticationError, SubscriptionForm
from repro.server.multimedia_server import MultimediaServer
from repro.service.messages import ControlEndpoint, ControlMessage
from repro.service.states import SessionEvent as E
from repro.service.states import SessionState, SessionStateMachine

__all__ = ["ServerSessionHandler", "ClientSession"]


class ServerSessionHandler:
    """Server-side protocol handler for one client connection."""

    def __init__(
        self,
        server: MultimediaServer,
        endpoint: ControlEndpoint,
        session_id: str,
        client_node: str,
        suspend_grace_s: float = 30.0,
        flow_lead_s: float = 1.0,
    ) -> None:
        self.server = server
        self.sim: Simulator = server.sim
        self.endpoint = endpoint
        self.session_id = session_id
        self.client_node = client_node
        self.suspend_grace_s = suspend_grace_s
        self.flow_lead_s = flow_lead_s
        self.session = None  # ServedSession after admission
        self.rtcp_sink = None
        self._rtcp_port: int | None = None
        self._suspend_token = 0
        self.suspended = False
        # Retry support: clients may resend a request whose reply was
        # lost, so replies must be reproducible without redoing side
        # effects (re-admitting, re-starting streams, double-charging).
        self._connect_ok_body: dict | None = None
        self._ready_served: str | None = None
        self._bye_charge: float | None = None
        endpoint.on_message = self._on_message
        # Let the server reach this handler for recovery notifications.
        server.session_handlers[session_id] = self

    def _next_port(self) -> int:
        """An RTCP sink port from the server host's own allocator.

        Per-node (not process-global), so two engines in one process —
        and several handlers sharing one host — stay deterministic and
        conflict-free.
        """
        network = _network_of(self.server)
        return network.node(self.server.node_id).ports.allocate("rtcp")

    # -- dispatch ----------------------------------------------------------
    def _on_message(self, msg: ControlMessage) -> None:
        handler = getattr(self, f"_handle_{msg.msg_type.replace('-', '_')}", None)
        if handler is None:
            self.endpoint.reply(msg, "protocol-error",
                                {"reason": f"unknown message {msg.msg_type!r}"})
            return
        handler(msg)

    # -- connection establishment ------------------------------------------
    def _admit(self, msg: ControlMessage, user) -> None:
        result, session = self.server.connect(
            self.session_id, user,
            msg.body.get("required_bw_bps", 2e6),
            min_bw_bps=msg.body.get("min_bw_bps"),
        )
        if not result.admitted:
            self.endpoint.reply(msg, "connect-reject", {"reason": result.reason})
            return
        self.session = session
        self._connect_ok_body = {
            "server": self.server.name,
            "description": self.server.description,
            "topics": self.server.topics(),
            "documents": self.server.list_documents(),
            "granted_bw_bps": result.reserved_bw_bps,
            "negotiated": result.negotiated,
        }
        self.endpoint.reply(msg, "connect-ok", self._connect_ok_body)

    def _handle_connect(self, msg: ControlMessage) -> None:
        if self.session is not None and self._connect_ok_body is not None:
            # Duplicate (client retry after a lost reply): re-reply
            # without re-admitting.
            self.endpoint.reply(msg, "connect-ok", self._connect_ok_body)
            return
        user_id = msg.body.get("user_id", "")
        try:
            user = self.server.accounts.authenticate(
                user_id, msg.body.get("secret", "")
            )
        except AuthenticationError as exc:
            if user_id not in self.server.accounts:
                self.endpoint.reply(msg, "subscribe-required",
                                    {"reason": str(exc)})
            else:
                self.endpoint.reply(msg, "connect-reject", {"reason": str(exc)})
            return
        self._admit(msg, user)

    def _handle_subscribe(self, msg: ControlMessage) -> None:
        if self.session is not None and self._connect_ok_body is not None:
            self.endpoint.reply(msg, "connect-ok", self._connect_ok_body)
            return
        body = msg.body
        try:
            form = SubscriptionForm(
                real_name=body.get("real_name", ""),
                address=body.get("address", ""),
                email=body.get("email", ""),
                telephone=body.get("telephone", ""),
            )
            user = self.server.accounts.subscribe(
                body.get("user_id", ""), form, body.get("secret", ""),
                contract=body.get("contract", "basic"),
            )
        except (ValueError, KeyError) as exc:
            self.endpoint.reply(msg, "connect-reject", {"reason": str(exc)})
            return
        self._admit(msg, user)

    # -- document service -------------------------------------------------------
    def _handle_request_doc(self, msg: ControlMessage) -> None:
        if self.session is None:
            self.endpoint.reply(msg, "request-reject",
                                {"reason": "not connected"})
            return
        name = msg.body.get("name", "")
        # A fresh document request re-arms `ready` (reload included);
        # only an unchanged ready for the same served document is
        # treated as a retry duplicate.
        self._ready_served = None
        try:
            stored = self.server.fetch_document(self.session_id, name)
        except KeyError as exc:
            # Not here — maybe a peer stores it: tell the client where
            # to go so it can suspend this connection and switch (§5).
            location = self.server.locate_document(name)
            if location is not None and location != self.server.name:
                self.endpoint.reply(msg, "redirect",
                                    {"name": name, "server": location})
                return
            self.endpoint.reply(msg, "request-reject", {"reason": str(exc)})
            return
        # The scenario is the markup text file; its wire size is the
        # real document size.
        self.endpoint.reply(
            msg, "scenario", {"name": name, "markup": stored.markup},
            size_bytes=stored.size_bytes + 200,
        )

    def _handle_ready(self, msg: ControlMessage) -> None:
        """Client allocated its ports; activate the media servers."""
        if self.session is None or self.session.active_document is None:
            self.endpoint.reply(msg, "request-reject",
                                {"reason": "no active document"})
            return
        name = self.session.active_document
        if self._ready_served == name:
            # Duplicate ready (retry): streams are already running.
            self.endpoint.reply(msg, "streams-started",
                                {"rtcp_port": self._rtcp_port})
            return
        flow = self.server.plan_flows(
            self.session_id, name, lead_s=msg.body.get("lead_s", self.flow_lead_s)
        )
        rtp_ports: dict[str, int] = msg.body.get("rtp_ports", {})
        discrete_ports: dict[str, int] = msg.body.get("discrete_ports", {})
        # Resolve every media server up front so a crashed one (with no
        # healthy replica) rejects the request instead of leaving the
        # presentation half-activated.
        needed = {spec.server for spec in flow.continuous()
                  if spec.stream_id in rtp_ports}
        needed |= {spec.server for spec in flow.discrete()
                   if spec.stream_id in discrete_ports}
        targets = {}
        for ms_name in sorted(needed):
            ms = self.server.healthy_media_server(
                ms_name, client_node=self.client_node
            )
            if ms is None:
                self.endpoint.reply(msg, "request-reject",
                                    {"reason": "media-unavailable",
                                     "server": ms_name})
                return
            targets[ms_name] = ms
        if self._rtcp_port is None:
            self._rtcp_port = self._next_port()
            from repro.rtp.rtcp import RtcpSink  # local import avoids cycle

            self.rtcp_sink = RtcpSink(
                _network_of(self.server), self.server.node_id, self._rtcp_port,
                on_report=self.session.qos_manager.on_report,
            )
        prefs = self.session.user.qos
        ssrc = 0
        for spec in flow.continuous():
            if spec.stream_id not in rtp_ports:
                continue
            ms = targets[spec.server]
            ssrc += 1
            from repro.media.types import MediaType

            floor = (
                prefs.video_floor_grade
                if spec.media_type is MediaType.VIDEO
                else prefs.audio_floor_grade
            )
            duration_s = (spec.duration_s if spec.duration_s is not None
                          else 3600.0)
            if self.server.shared_flows is not None:
                # Hot-content batching: ride (or open) the shared
                # egress flow for this object instead of a per-session
                # unicast stream. Per-client RTP sequencing is applied
                # at the fan-out point, so everything client-side is
                # unchanged.
                converter = self.server.shared_flows.subscribe(
                    ms,
                    session_id=self.session_id,
                    stream_id=spec.stream_id,
                    object_path=spec.path,
                    client_node=self.client_node,
                    client_port=rtp_ports[spec.stream_id],
                    duration_s=duration_s,
                    send_offset_s=spec.send_offset_s,
                    initial_grade=spec.initial_grade,
                    floor_grade=floor,
                    allow_suspend=prefs.allow_suspend,
                    ssrc=ssrc,
                )
            else:
                handler, converter = ms.start_stream(
                    self.session_id, spec.path, stream_id=spec.stream_id,
                    client_node=self.client_node,
                    client_port=rtp_ports[spec.stream_id],
                    duration_s=duration_s,
                    send_offset_s=spec.send_offset_s,
                    initial_grade=spec.initial_grade,
                    floor_grade=floor,
                    allow_suspend=prefs.allow_suspend,
                    ssrc=ssrc,
                )
            # A later document may reuse element ids: replace any
            # stale registration from an already-finished stream.
            self.session.qos_manager.unregister_stream(spec.stream_id)
            self.session.qos_manager.register_stream(
                spec.stream_id, spec.media_type, converter
            )
        for spec in flow.discrete():
            if spec.stream_id not in discrete_ports:
                continue
            ms = targets[spec.server]
            ms.send_discrete(
                spec.stream_id, spec.path, self.client_node,
                discrete_ports[spec.stream_id],
                flow_id=f"{self.session_id}:{spec.stream_id}",
            )
        self._ready_served = name
        self.endpoint.reply(msg, "streams-started",
                            {"rtcp_port": self._rtcp_port})

    # -- interactive operations ----------------------------------------------
    def _pause_all(self) -> None:
        for ms in self.server.all_media_servers():
            ms.pause_session(self.session_id)

    def _resume_all(self) -> None:
        for ms in self.server.all_media_servers():
            ms.resume_session(self.session_id)

    def _stop_all_streams(self) -> None:
        for ms in self.server.all_media_servers():
            ms.stop_session(self.session_id)
        if self.server.shared_flows is not None:
            self.server.shared_flows.stop_session(self.session_id)
        if self.session is not None:
            for sid in list(self.session.qos_manager.streams()):
                self.session.qos_manager.unregister_stream(sid)

    def _handle_pause(self, msg: ControlMessage) -> None:
        self._pause_all()
        self.endpoint.reply(msg, "paused")

    def _handle_resume(self, msg: ControlMessage) -> None:
        self._resume_all()
        self.endpoint.reply(msg, "resumed")

    def _handle_stop_streams(self, msg: ControlMessage) -> None:
        self._stop_all_streams()
        self.endpoint.reply(msg, "streams-stopped")

    def _handle_disable_stream(self, msg: ControlMessage) -> None:
        """§5: the user disabled one media of the presentation — stop
        transmitting that stream."""
        stream_id = msg.body.get("stream_id", "")
        found = False
        for ms in self.server.all_media_servers():
            if (self.session_id, stream_id) in ms.streams:
                ms.stop_stream(self.session_id, stream_id)
                found = True
        if self.session is not None:
            self.session.qos_manager.unregister_stream(stream_id)
        self.endpoint.reply(msg, "stream-disabled",
                            {"stream_id": stream_id, "was_active": found})

    def _handle_search(self, msg: ControlMessage) -> None:
        results = self.server.search(msg.body.get("token", ""))
        self.endpoint.reply(msg, "search-results", {"results": results})

    # -- suspend / cross-server navigation -------------------------------------
    def _handle_suspend(self, msg: ControlMessage) -> None:
        """Cross-server navigation: keep the session alive for the
        grace interval in case the user returns (§5)."""
        self._stop_all_streams()
        self.suspended = True
        self._suspend_token += 1
        token = self._suspend_token
        self.sim.call_later(self.suspend_grace_s,
                            lambda: self._suspend_expire(token))
        self.endpoint.reply(msg, "suspended", {"grace_s": self.suspend_grace_s})

    def _release_rtcp(self) -> None:
        """Close the feedback sink and return its port to the node."""
        if self.rtcp_sink is not None:
            self.rtcp_sink.close()
            self.rtcp_sink = None
        if self._rtcp_port is not None:
            network = _network_of(self.server)
            network.node(self.server.node_id).ports.release(
                self._rtcp_port, "rtcp"
            )
            self._rtcp_port = None
        self._ready_served = None

    def _suspend_expire(self, token: int) -> None:
        if token != self._suspend_token or not self.suspended:
            return
        self.suspended = False
        self.server.disconnect(self.session_id)
        self.session = None
        self._release_rtcp()
        self.server.session_handlers.pop(self.session_id, None)
        # "When this interval is passed the connection closes and the
        # attached client is informed about the event."
        self.endpoint.send("suspend-expired", {})

    def _handle_resume_conn(self, msg: ControlMessage) -> None:
        if self.suspended and self.session is not None:
            self.suspended = False
            self._suspend_token += 1
            self.endpoint.reply(msg, "resumed-conn", {})
        else:
            self.endpoint.reply(msg, "expired", {})

    def _handle_disconnect(self, msg: ControlMessage) -> None:
        if self._bye_charge is not None:
            # Duplicate disconnect (retry): the session is already torn
            # down and charged; just repeat the answer.
            self.endpoint.reply(msg, "bye", {"charge": self._bye_charge})
            return
        self._stop_all_streams()
        charge = self.server.disconnect(self.session_id)
        self.session = None
        self._release_rtcp()
        self.server.session_handlers.pop(self.session_id, None)
        self._bye_charge = charge
        self.endpoint.reply(msg, "bye", {"charge": charge})

    # -- recovery notifications (watchdog -> client) ---------------------------
    def notify_stream_fault(self, stream_ids: list[str], server: str) -> None:
        """Tell the client its delivery path failed (detection)."""
        self.endpoint.send("stream-fault",
                           {"streams": sorted(stream_ids), "server": server})

    def notify_stream_recovered(self, stream_id: str, server: str,
                                t_recover_s: float) -> None:
        """Tell the client one stream was failed over."""
        self.endpoint.send("stream-recovered",
                           {"stream_id": stream_id, "server": server,
                            "t_recover_s": t_recover_s})


def _network_of(server: MultimediaServer):
    """The network any of the server's media servers is attached to."""
    for ms in server.media_servers.values():
        return ms.network
    raise RuntimeError(f"server {server.name!r} has no media servers")


class ClientSession:
    """Browser-side protocol driver (coroutine methods)."""

    def __init__(self, sim: Simulator, endpoint: ControlEndpoint,
                 user_id: str, secret: str) -> None:
        self.sim = sim
        self.endpoint = endpoint
        self.user_id = user_id
        self.secret = secret
        self.fsm = SessionStateMachine()
        self.topics: list[str] = []
        self.documents: list[str] = []
        self.last_markup: str | None = None
        self.suspend_expired = False
        #: retry policy for control RPCs (duck-typed, see
        #: repro.faults.control.RetryPolicy); None = wait forever, the
        #: pre-fault behaviour
        self.retry = None
        #: RNG for retry jitter (required when ``retry`` is set)
        self.retry_rng = None
        #: control requests resent after a timeout
        self.retries = 0
        #: streams restored by server-side failover
        self.recoveries = 0
        #: stream ids currently known faulted (drives the RECOVERING
        #: state: entered on first fault, left when the set empties)
        self._faulted: set[str] = set()
        endpoint.on_message = self._on_unsolicited

    def _on_unsolicited(self, msg: ControlMessage) -> None:
        if msg.msg_type == "suspend-expired":
            self.suspend_expired = True
            if self.fsm.state is SessionState.SUSPENDING:
                self.fsm.fire(E.SUSPEND_EXPIRED, self.sim.now)
        elif msg.msg_type == "stream-fault":
            self._faulted.update(msg.body.get("streams", []))
            if self.fsm.can_fire(E.STREAM_FAULT):
                self.fsm.fire(E.STREAM_FAULT, self.sim.now)
        elif msg.msg_type == "stream-recovered":
            self._faulted.discard(msg.body.get("stream_id", ""))
            self.recoveries += 1
            if not self._faulted and self.fsm.can_fire(E.STREAM_RECOVERED):
                self.fsm.fire(E.STREAM_RECOVERED, self.sim.now)

    # -- control RPC with optional retry --------------------------------------
    def _rpc(self, msg_type: str, body: dict | None = None,
             size_bytes: int | None = None) \
            -> Generator[Any, Any, ControlMessage]:
        """Send a request and wait for its reply.

        With no retry policy this waits forever (the transport
        retransmits, so on a merely slow path the reply eventually
        arrives). With a policy, each attempt races a timeout; lost
        messages (endpoint-level drops, crashed peers) are retried with
        exponential backoff and deterministic jitter, and exhaustion
        returns a synthetic ``rpc-timeout`` message so callers degrade
        instead of hanging.
        """
        if self.retry is None:
            _, ev = self.endpoint.request(msg_type, body,
                                          size_bytes=size_bytes)
            resp: ControlMessage = yield ev
            return resp
        timeout_s = self.retry.timeout_s
        for attempt in range(self.retry.max_attempts):
            _, ev = self.endpoint.request(msg_type, body,
                                          size_bytes=size_bytes)
            yield self.sim.any_of([ev, self.sim.timeout(timeout_s)])
            if ev.triggered:
                return ev.value
            if self.sim._tracing:
                self.sim._tracer.emit(self.sim.now, "ctl.retry", msg_type,
                                      attempt=attempt + 1,
                                      timeout_s=timeout_s)
            if attempt + 1 < self.retry.max_attempts:
                self.retries += 1
                timeout_s = self.retry.next_timeout(timeout_s, self.retry_rng)
        return ControlMessage(msg_type="rpc-timeout",
                              body={"request": msg_type})

    # -- coroutines (use with `yield from`) ---------------------------------
    def connect(self, required_bw_bps: float = 2e6,
                min_bw_bps: float | None = None) \
            -> Generator[Any, Any, ControlMessage]:
        """Connect; ``min_bw_bps`` enables QoS negotiation — the
        lowest-quality bandwidth the user accepts instead of a
        rejection (§4)."""
        self.fsm.fire(E.CONNECT, self.sim.now)
        body = {"user_id": self.user_id, "secret": self.secret,
                "required_bw_bps": required_bw_bps}
        if min_bw_bps is not None:
            body["min_bw_bps"] = min_bw_bps
        resp: ControlMessage = yield from self._rpc("connect", body)
        if resp.msg_type == "connect-ok":
            self.fsm.fire(E.AUTH_OK, self.sim.now)
            self.topics = resp.body["topics"]
            self.documents = resp.body["documents"]
        elif resp.msg_type == "subscribe-required":
            self.fsm.fire(E.NOT_MEMBER, self.sim.now)
        else:
            self.fsm.fire(E.AUTH_FAIL, self.sim.now)
        return resp

    def subscribe(self, form: SubscriptionForm, contract: str = "basic",
                  required_bw_bps: float = 2e6,
                  min_bw_bps: float | None = None) \
            -> Generator[Any, Any, ControlMessage]:
        body = {
            "user_id": self.user_id, "secret": self.secret,
            "real_name": form.real_name, "address": form.address,
            "email": form.email, "telephone": form.telephone,
            "contract": contract, "required_bw_bps": required_bw_bps,
        }
        if min_bw_bps is not None:
            body["min_bw_bps"] = min_bw_bps
        resp: ControlMessage = yield from self._rpc("subscribe", body)
        if resp.msg_type == "connect-ok":
            self.fsm.fire(E.SUBSCRIBED, self.sim.now)
            self.topics = resp.body["topics"]
            self.documents = resp.body["documents"]
        else:
            self.fsm.fire(E.AUTH_FAIL, self.sim.now)
        return resp

    def request_document(self, name: str, via_link: bool = False) \
            -> Generator[Any, Any, ControlMessage]:
        """Request a document. ``via_link=True`` when the session is
        already in REQUESTING because a hyperlink (or reload) was just
        followed — the FSM edge was consumed by that action."""
        if not via_link:
            self.fsm.fire(E.REQUEST_DOCUMENT, self.sim.now)
        resp: ControlMessage = yield from self._rpc("request-doc",
                                                    {"name": name})
        if resp.msg_type == "scenario":
            self.fsm.fire(E.SCENARIO_RECEIVED, self.sim.now)
            self.last_markup = resp.body["markup"]
        else:
            # Both hard rejection and a cross-server redirect return
            # the session to browsing; on a redirect the caller uses
            # resp.body["server"] to open the new connection (§5).
            self.fsm.fire(E.REQUEST_REJECTED, self.sim.now)
        return resp

    def send_ready(self, rtp_ports: dict[str, int],
                   discrete_ports: dict[str, int],
                   lead_s: float = 1.0) -> Generator[Any, Any, ControlMessage]:
        resp: ControlMessage = yield from self._rpc(
            "ready",
            {"rtp_ports": rtp_ports, "discrete_ports": discrete_ports,
             "lead_s": lead_s},
        )
        return resp

    def pause(self) -> Generator[Any, Any, ControlMessage]:
        self.fsm.fire(E.PAUSE, self.sim.now)
        resp = yield from self._rpc("pause")
        return resp

    def resume(self) -> Generator[Any, Any, ControlMessage]:
        self.fsm.fire(E.RESUME, self.sim.now)
        resp = yield from self._rpc("resume")
        return resp

    def disable_stream(self, stream_id: str) \
            -> Generator[Any, Any, ControlMessage]:
        """Ask the server to stop transmitting one media stream (§5)."""
        resp = yield from self._rpc("disable-stream",
                                    {"stream_id": stream_id})
        return resp

    def search(self, token: str) -> Generator[Any, Any, dict[str, list[str]]]:
        resp: ControlMessage = yield from self._rpc("search", {"token": token})
        return resp.body.get("results", {})

    def end_presentation(self) -> None:
        self.fsm.fire(E.PRESENTATION_END, self.sim.now)

    def reload(self) -> None:
        self.fsm.fire(E.RELOAD, self.sim.now)

    def follow_link_local(self) -> None:
        self.fsm.fire(E.FOLLOW_LINK_LOCAL, self.sim.now)

    def suspend_for_remote_link(self) -> Generator[Any, Any, ControlMessage]:
        self.fsm.fire(E.FOLLOW_LINK_REMOTE, self.sim.now)
        resp = yield from self._rpc("suspend")
        return resp

    def resume_connection(self) -> Generator[Any, Any, ControlMessage]:
        resp: ControlMessage = yield from self._rpc("resume-conn")
        if resp.msg_type == "resumed-conn":
            self.fsm.fire(E.RECONNECTED, self.sim.now)
        elif self.fsm.state is SessionState.SUSPENDING:
            self.fsm.fire(E.SUSPEND_EXPIRED, self.sim.now)
        return resp

    def stop_streams(self) -> Generator[Any, Any, ControlMessage]:
        resp = yield from self._rpc("stop-streams")
        return resp

    def disconnect(self) -> Generator[Any, Any, float]:
        resp: ControlMessage = yield from self._rpc("disconnect")
        self.fsm.fire(E.DISCONNECT, self.sim.now)
        return resp.body.get("charge", 0.0)
