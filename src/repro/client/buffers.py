"""Per-stream media buffers and the media time window.

"One basic concept of the buffering layer is that after the
establishment of the parallel media connections, there is a relative
delay in the presentation start time ... inserted on purpose in order
to feed each involved media buffer with a quantity of data. This
quantity is statistically calculated at the buffer's setup time ...
This length of each media buffer corresponds to a playback time, and
we call this time interval, *media time window*." (§4)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.media.types import Frame

__all__ = ["MediaBuffer", "compute_time_window", "BufferStats"]


def compute_time_window(
    frame_interval_s: float,
    expected_jitter_s: float = 0.02,
    expected_loss: float = 0.01,
    safety_factor: float = 4.0,
    min_window_s: float = 0.2,
    max_window_s: float = 8.0,
) -> float:
    """Statistically size the media time window at buffer setup.

    The window must absorb (a) delay variation — ``safety_factor``
    standard deviations of jitter — and (b) the re-fill slack lost to
    packet loss, plus always at least a few frame intervals so a
    single late frame cannot starve playout.
    """
    if frame_interval_s <= 0:
        raise ValueError("frame_interval_s must be positive")
    if not (0.0 <= expected_loss < 1.0):
        raise ValueError("expected_loss must be in [0, 1)")
    jitter_term = safety_factor * expected_jitter_s
    loss_term = frame_interval_s * (expected_loss / (1.0 - expected_loss)) * 10.0
    floor_term = 3.0 * frame_interval_s
    window = max(min_window_s, floor_term, jitter_term + loss_term)
    return min(window, max_window_s)


@dataclass(slots=True)
class BufferStats:
    pushed: int = 0
    popped: int = 0
    overflow_drops: int = 0
    underflow_events: int = 0
    occupancy_trace: list[tuple[float, float]] = field(default_factory=list)


class MediaBuffer:
    """FIFO frame buffer with playback-time accounting.

    ``capacity_s`` bounds the buffer in *playback seconds* (the
    natural unit for the time-window design); frames beyond it are
    dropped at push (overflow), which the monitor observes. The
    buffer is the "multiple thread queue" thread of one stream.
    """

    def __init__(
        self,
        stream_id: str,
        clock_rate: int,
        time_window_s: float,
        capacity_s: float | None = None,
    ) -> None:
        if clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        if time_window_s <= 0:
            raise ValueError("time_window_s must be positive")
        self.stream_id = stream_id
        self.clock_rate = clock_rate
        self.time_window_s = time_window_s
        self.capacity_s = capacity_s if capacity_s is not None \
            else 2.0 * time_window_s
        if self.capacity_s < time_window_s:
            raise ValueError("capacity_s must be >= time_window_s")
        self._frames: deque[Frame] = deque()
        self._ticks_buffered = 0
        self.stats = BufferStats()

    # -- state ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    @property
    def occupancy_s(self) -> float:
        """Buffered playback time in seconds."""
        return self._ticks_buffered / self.clock_rate

    @property
    def occupancy_ratio(self) -> float:
        """Occupancy relative to the target time window."""
        return self.occupancy_s / self.time_window_s

    @property
    def is_empty(self) -> bool:
        return not self._frames

    @property
    def prefilled(self) -> bool:
        """Has the initial time window been accumulated?"""
        return self.occupancy_s >= self.time_window_s

    # -- operations -----------------------------------------------------------
    def push(self, frame: Frame) -> bool:
        """Append an arriving frame; False if dropped on overflow."""
        if (self._ticks_buffered + frame.duration) / self.clock_rate \
                > self.capacity_s:
            self.stats.overflow_drops += 1
            return False
        self._frames.append(frame)
        self._ticks_buffered += frame.duration
        self.stats.pushed += 1
        return True

    def pop(self) -> Frame | None:
        """Remove and return the head frame; None on underflow."""
        if not self._frames:
            self.stats.underflow_events += 1
            return None
        frame = self._frames.popleft()
        self._ticks_buffered -= frame.duration
        self.stats.popped += 1
        return frame

    def peek(self) -> Frame | None:
        return self._frames[0] if self._frames else None

    def drop_head(self) -> Frame | None:
        """Discard the head frame (skew-controller drop action)."""
        if not self._frames:
            return None
        frame = self._frames.popleft()
        self._ticks_buffered -= frame.duration
        return frame

    def clear(self) -> int:
        n = len(self._frames)
        self._frames.clear()
        self._ticks_buffered = 0
        return n

    def sample_occupancy(self, now: float) -> None:
        self.stats.occupancy_trace.append((now, self.occupancy_s))
