"""Hermes distance education (paper §6): a two-server deployment with
a networking course and an art-history course, exercising the §6.2
workflows — server choice, subscription, distributed search, viewing
a lesson along the tutor's sequential path, and the asynchronous
tutor↔student e-mail interaction.

Run:  python examples/distance_education.py
"""

from repro.analysis import render_table
from repro.hermes import Attachment, HermesService, MailMessage, make_course
from repro.hml import serialize
from repro.net import CoreNetworkLayer

#: each course links only within itself; both are fully authored here
SCENARIO_CLOSED = True


def scenario_documents() -> dict[str, str]:
    """Every lesson of both courses, for the scenario analyzer."""
    lessons = (
        make_course("routing", "networking", n_lessons=3, segment_s=5.0,
                    tutor="dr-net")
        + make_course("fresco", "painting", n_lessons=2, segment_s=5.0,
                      tutor="prof-arte")
    )
    return {lesson.name: serialize(lesson.document) for lesson in lessons}


def main() -> None:
    svc = HermesService(layers=[CoreNetworkLayer()])
    svc.add_hermes_server(
        "hermes-nets",
        "Lessons on computer networking and the Internet",
        ["networking", "internet"],
        make_course("routing", "networking", n_lessons=3, segment_s=5.0,
                    tutor="dr-net"),
    )
    svc.add_hermes_server(
        "hermes-arts",
        "Lessons on Renaissance painting",
        ["painting"],
        make_course("fresco", "painting", n_lessons=2, segment_s=5.0,
                    tutor="prof-arte"),
    )

    # The connect-time server list (§6.2.1).
    print("--- available Hermes servers ---")
    for d in svc.catalog.listing():
        print(f"  {d.name}: {d.description} "
              f"(units: {', '.join(d.thematic_units)})")
    server = svc.pick_server_for("networking")
    print(f"\nstudent picks {server!r} for the 'networking' unit")

    # Distributed search (§6.2.2): forwarded to every server.
    results = svc.search_all(server, "lesson")
    print("\n--- search 'lesson' across the whole service ---")
    for srv, docs in sorted(results.items()):
        print(f"  {srv}: {', '.join(docs)}")

    # The tutor's way (sequential links).
    path = svc.tutors_way("routing-1")
    print(f"\ntutor's sequential path: {' -> '.join(path)}")

    # View the first two lessons (§6.2.3).
    rows = []
    for lesson in path[:2]:
        r = svc.view_lesson(server, lesson, user_id="alice")
        assert r.completed
        rows.append([
            lesson,
            sum(s.frames_played for s in r.streams.values()),
            r.total_gaps(),
            f"{r.worst_skew_s() * 1e3:.1f}",
            f"{r.startup_latency_s:.2f}",
        ])
    print()
    print(render_table("Lessons viewed",
                       ["lesson", "frames", "gaps", "max skew ms",
                        "startup s"], rows))

    # Ask the tutor (§6.2.4) and get pointed at the next lesson.
    svc.mail.register("alice", svc.engine.CLIENT)
    svc.mail.register("dr-net", "host:hermes-nets")
    question = svc.ask_tutor(
        "alice", "dr-net", "routing-2",
        "I did not understand distance-vector convergence — help?",
    )
    svc.tutor_reply("dr-net", "alice", question,
                    suggested_lessons=["routing-3"])
    svc.run()
    reply = svc.mail.mailbox("alice").thread(question.message_id)[0]
    print(f"\ntutor replied: {reply.subject!r} -> {reply.body!r}")


if __name__ == "__main__":
    main()
