"""Declarative SLO gates over run artifacts.

The paper's operator sells QoS *contracts*; an SLO spec is the
operator-side mirror — the service levels a run must hold. A spec is
a list of plain-text rules::

    qoe_p50 >= 70
    blocking_prob <= 0.05
    time_to_recover_p95 <= 2.0
    origin_egress_bps <= 40e6

evaluated against the flattened metrics of a live run or a saved
``BENCH_*.json`` / ``CHAOS_*.json`` artifact. Well-known aliases
(:data:`METRIC_ALIASES`) cover the headline service metrics; any
other metric name is resolved as a dotted path into the artifact
(``service.admission.requests``). ``python -m repro slo`` exits 1 on
any violated rule, which is what lets CI gate chaos and CDN smoke
jobs on service levels instead of ad-hoc thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["SloRule", "SloCheck", "parse_rule", "parse_spec",
           "flatten_metrics", "timeseries_metrics", "evaluate",
           "DEFAULT_SLOS", "METRIC_ALIASES"]

#: comparison operators, longest first so ``<=`` wins over ``<``
_OPS: tuple[tuple[str, Any], ...] = (
    ("<=", lambda a, b: a <= b),
    (">=", lambda a, b: a >= b),
    ("==", lambda a, b: a == b),
    ("!=", lambda a, b: a != b),
    ("<", lambda a, b: a < b),
    (">", lambda a, b: a > b),
)

#: alias -> dotted artifact paths tried in order (first hit wins)
METRIC_ALIASES: dict[str, tuple[str, ...]] = {
    "qoe_p50": ("qoe.score.p50",),
    "qoe_p95": ("qoe.score.p95",),
    "startup_p95": ("qoe.startup_s.p95",),
    "blocking_prob": ("service.admission.blocking_prob",),
    "admission_requests": ("service.admission.requests",),
    "time_to_detect_p95": ("service.recovery.time_to_detect_s.p95",),
    "time_to_recover_p95": ("service.recovery.time_to_recover_s.p95",),
    "recoveries": ("service.recovery.streams_failed_over",),
    "streams_lost": ("service.recovery.streams_lost",),
    "origin_egress_bytes": ("service.egress.origin_bytes",
                            "origin_egress_bytes"),
    "origin_egress_bps": ("service.egress.origin_egress_bps",),
    "egress_reduction": ("egress_reduction",),
    "events": ("events",),
    "events_per_sec": ("events_per_sec",),
}

#: shipped default specs, keyed by bench/chaos scenario name
DEFAULT_SLOS: dict[str, tuple[str, ...]] = {
    "population_clean": (
        "qoe_p50 >= 70",
        "completed_ratio >= 0.95",
        "blocking_prob <= 0.05",
        "time_to_recover_p95 <= 2.0",
        "peak_link_utilization <= 0.9",  # transient saturation guard
    ),
    "population_lossy": (
        "qoe_p50 >= 40",
        "completed_ratio >= 0.95",
        "blocking_prob <= 0.05",
    ),
    "cdn_hot": (
        "qoe_p50 >= 60",
        "completed_ratio >= 0.95",
        "blocking_prob <= 0.05",
        "egress_reduction >= 2.0",
        "peak_link_utilization <= 0.9",
        "max_queue_depth <= 10000",  # event-queue blow-up guard
    ),
    "chaos": (
        "delivered_ratio >= 0.75",
        "blocking_prob <= 0.05",
        "time_to_recover_p95 <= 2.0",
        "streams_lost <= 0",
        "peak_link_utilization <= 0.9",
        "max_queue_depth <= 10000",
    ),
}


@dataclass(slots=True, frozen=True)
class SloRule:
    """One parsed rule: ``metric op threshold``."""

    metric: str
    op: str
    threshold: float

    @property
    def text(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"


@dataclass(slots=True)
class SloCheck:
    """The outcome of one rule against one artifact."""

    rule: SloRule
    value: float | None
    ok: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.text,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "value": self.value,
            "ok": self.ok,
        }


def parse_rule(text: str) -> SloRule:
    """Parse ``"qoe_p50 >= 70"`` into an :class:`SloRule`."""
    stripped = text.split("#", 1)[0].strip()
    for op, _fn in _OPS:
        if op in stripped:
            left, _, right = stripped.partition(op)
            metric = left.strip()
            try:
                threshold = float(right.strip())
            except ValueError:
                raise ValueError(
                    f"bad SLO threshold in {text!r}: {right.strip()!r}"
                ) from None
            if not metric:
                raise ValueError(f"bad SLO rule (no metric): {text!r}")
            return SloRule(metric=metric, op=op, threshold=threshold)
    raise ValueError(
        f"bad SLO rule {text!r}: expected '<metric> <op> <number>' "
        f"with op one of {[op for op, _ in _OPS]}"
    )


def parse_spec(lines: list[str] | tuple[str, ...]) -> list[SloRule]:
    """Parse a spec: one rule per line; blanks and ``#`` comments skip."""
    rules = []
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            rules.append(parse_rule(stripped))
    return rules


def _dig(doc: Any, path: str) -> float | None:
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def flatten_metrics(artifact: dict[str, Any]) -> dict[str, float]:
    """Metric name -> value view of one artifact.

    Includes every alias that resolves, plus derived ratios
    (``completed_ratio``, ``delivered_ratio``) when the artifact
    carries session counts. Rule evaluation falls back to dotted
    paths for anything not precomputed here.
    """
    out: dict[str, float] = {}
    for alias in sorted(METRIC_ALIASES):
        for path in METRIC_ALIASES[alias]:
            value = _dig(artifact, path)
            if value is not None:
                out[alias] = value
                break
    sessions = _dig(artifact, "sessions")
    if sessions:
        completed = _dig(artifact, "completed")
        if completed is not None:
            out["completed_ratio"] = completed / sessions
        delivered = _dig(artifact, "delivered")
        if delivered is not None:
            out["delivered_ratio"] = delivered / sessions
    out.update(timeseries_metrics(artifact))
    return out


def timeseries_metrics(artifact: dict[str, Any]) -> dict[str, float]:
    """Peaks derived from the artifact's ``timeseries`` trajectory.

    End-of-run means hide transient saturation; these read the
    sampled series so a rule like ``peak_link_utilization <= 0.9``
    catches a brief hot interval. Empty when the artifact carries no
    time series (pre-PR-8 baselines age gracefully; rules naming
    these metrics then fail closed, as always).
    """
    ts = artifact.get("timeseries")
    if not isinstance(ts, dict):
        return {}
    columns = ts.get("columns", {})

    def _values(name: str) -> list[float]:
        # canonical_json (digest serialization) stringifies floats,
        # so coerce on the way in.
        raw = (columns.get(name) or {}).get("values") or ()
        return [float(v) for v in raw]

    def peak(name: str) -> float | None:
        values = _values(name)
        return max(values) if values else None

    out: dict[str, float] = {}
    util = peak("link_utilization")
    if util is not None:
        out["peak_link_utilization"] = util
    depth = peak("event_queue_depth")
    if depth is not None:
        out["max_queue_depth"] = depth
    # Population-wide concurrency: sum the per-server stream levels
    # tick-wise, then take the peak tick.
    stream_cols = [_values(name) for name in columns
                   if name.startswith("streams.")]
    if stream_cols:
        ticks = max(len(v) for v in stream_cols)
        out["peak_concurrent_streams"] = max(
            (sum(v[i] for v in stream_cols if i < len(v))
             for i in range(ticks)), default=0.0)
    return out


def _resolve(metric: str, flat: dict[str, float],
             artifact: dict[str, Any]) -> float | None:
    if metric in flat:
        return flat[metric]
    return _dig(artifact, metric)


def evaluate(rules: list[SloRule],
             artifact: dict[str, Any]) -> list[SloCheck]:
    """Check every rule; a missing metric fails its rule.

    Failing closed on absent metrics is deliberate: an SLO that
    silently passes because the run stopped reporting the metric is
    worse than a red gate.
    """
    flat = flatten_metrics(artifact)
    checks = []
    for rule in rules:
        value = _resolve(rule.metric, flat, artifact)
        if value is None:
            checks.append(SloCheck(rule=rule, value=None, ok=False))
            continue
        fn = dict(_OPS)[rule.op]
        checks.append(SloCheck(rule=rule, value=value,
                               ok=bool(fn(value, rule.threshold))))
    return checks
