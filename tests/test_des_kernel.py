"""Unit tests for the discrete-event kernel."""

import pytest

from repro.des import AllOf, AnyOf, Interrupt, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-0.1)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_past_deadline_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_process_sequencing_and_return_value():
    sim = Simulator()
    log = []

    def proc():
        log.append(("start", sim.now))
        yield sim.timeout(1.0)
        log.append(("mid", sim.now))
        yield sim.timeout(2.0)
        log.append(("end", sim.now))
        return 42

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == 42
    assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(tag):
        def proc():
            yield sim.timeout(1.0)
            order.append(tag)

        return proc

    for tag in "abcde":
        sim.process(make(tag)())
    sim.run()
    assert order == list("abcde")


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return "done"

    def parent():
        value = yield sim.process(child())
        return (value, sim.now)

    p = sim.process(parent())
    assert sim.run(until=p) == ("done", 3.0)


def test_wait_on_already_completed_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 7

    c = sim.process(child())

    def parent():
        yield sim.timeout(5.0)
        value = yield c  # already processed by now
        return value

    p = sim.process(parent())
    assert sim.run(until=p) == 7
    assert sim.now == 5.0


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        value = yield ev
        return value

    def trigger():
        yield sim.timeout(2.0)
        ev.succeed("payload")

    p = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(until=p) == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    p = sim.process(waiter())
    sim.process(trigger())
    assert sim.run(until=p) == "caught boom"


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_process_exception_propagates_through_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("kaput")

    p = sim.process(bad())
    with pytest.raises(RuntimeError, match="kaput"):
        sim.run(until=p)


def test_yield_none_is_cooperative_same_time_yield():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield None
        trace.append(sim.now)

    p = sim.process(proc())
    sim.run(until=p)
    assert trace == [0.0, 0.0]


def test_interrupt_terminates_uncatching_process():
    sim = Simulator()
    log = []

    def victim():
        log.append("started")
        yield sim.timeout(100.0)
        log.append("unreachable")

    def attacker(v):
        yield sim.timeout(5.0)
        v.interrupt("hyperlink")

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run(until=v)
    assert log == ["started"]
    assert sim.now == pytest.approx(5.0)
    assert v.triggered
    # The orphaned 100 s timeout still drains from the queue afterwards.
    sim.run()
    assert log == ["started"]


def test_interrupt_catchable_with_cause():
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)

    def attacker(v):
        yield sim.timeout(2.0)
        v.interrupt("user-click")

    v = sim.process(victim())
    sim.process(attacker(v))
    assert sim.run(until=v) == ("interrupted", "user-click", 2.0)


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_anyof_triggers_on_first():
    sim = Simulator()

    def waiter():
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(1.0, "fast")
        values = yield AnyOf(sim, [t1, t2])
        return (sim.now, sorted(values.values()))

    p = sim.process(waiter())
    assert sim.run(until=p) == (1.0, ["fast"])


def test_allof_waits_for_all():
    sim = Simulator()

    def waiter():
        t1 = sim.timeout(5.0, "a")
        t2 = sim.timeout(1.0, "b")
        values = yield AllOf(sim, [t1, t2])
        return (sim.now, sorted(values.values()))

    p = sim.process(waiter())
    assert sim.run(until=p) == (5.0, ["a", "b"])


def test_allof_empty_triggers_immediately():
    sim = Simulator()

    def waiter():
        values = yield AllOf(sim, [])
        return values

    p = sim.process(waiter())
    assert sim.run(until=p) == {}


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    p = sim.process(bad())
    with pytest.raises(TypeError):
        sim.run(until=p)


def test_run_until_event_with_drained_queue_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError, match="drained"):
        sim.run(until=ev)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    sim.timeout(1.0)
    assert sim.peek() == 1.0  # timeouts enqueue at their fire time
    sim.run()
    assert sim.peek() == float("inf")


def test_deterministic_replay_of_interleaving():
    def run_once():
        sim = Simulator()
        trace = []

        def ticker(name, period, count):
            for _ in range(count):
                yield sim.timeout(period)
                trace.append((name, round(sim.now, 6)))

        sim.process(ticker("a", 0.3, 10))
        sim.process(ticker("b", 0.7, 5))
        sim.run()
        return trace

    assert run_once() == run_once()
