"""Command-line front end: run any experiment or regenerate any figure.

Usage:
    python -m repro list
    python -m repro run e3            # an experiment (e1..e11)
    python -m repro run fig2          # a figure/table artefact
    python -m repro demo              # the quickstart delivery
"""

from __future__ import annotations

import sys

from repro.analysis import render_table

EXPERIMENTS = {
    "e1": ("run_time_window_sweep", "media time window vs quality"),
    "e2": ("run_skew_control_matrix", "short-term skew control"),
    "e3": ("run_grading_comparison", "long-term quality grading"),
    "e4": ("run_admission_sweep", "admission by pricing class"),
    "e5": ("run_watermark_comparison", "buffer watermarks [LIT 92]"),
    "e6": ("run_navigation_grace", "suspend grace interval"),
    "e7": ("run_search_experiment", "distributed search"),
    "e8": ("run_grading_order_ablation", "degrade-order ablation"),
    "e9": ("run_interplay_experiment", "short- vs long-term timing"),
    "e10": ("run_scaling_experiment", "concurrent-session scaling"),
    "e10b": ("run_population_scaling", "population on per-client links"),
    "e11": ("run_atm_comparison", "ATM access link (future work)"),
}

FIGURES = {
    "table1": "the keyword table",
    "fig1": "the grammar BNF",
    "fig2": "the example scenario timeline",
    "fig4": "the session state machine",
}


def _run_experiment(key: str) -> int:
    import repro.core.experiments as exp

    fn_name, title = EXPERIMENTS[key]
    out = getattr(exp, fn_name)()
    headers, rows = out[0], out[1]
    print(render_table(f"{key.upper()} — {title}", headers, rows))
    return 0


def _run_figure(key: str) -> int:
    if key == "table1":
        from repro.hml.tokens import keyword_table_rows

        print(render_table("Table 1 — Description of basic keywords",
                           ["Keyword", "Description"], keyword_table_rows()))
    elif key == "fig1":
        from repro.hml.grammar import grammar_text

        print("Figure 1 — Grammar of the language in BNF notation")
        print(grammar_text())
    elif key == "fig2":
        from repro.hml.examples import figure2_document
        from repro.model import ascii_timeline, build_playout_schedule

        print("Figure 2 — the example scenario's playout timeline")
        print(ascii_timeline(build_playout_schedule(figure2_document())))
    elif key == "fig4":
        from repro.service.states import transition_table_rows

        print(render_table("Figure 4 — application state transitions",
                           ["state", "event", "next state"],
                           transition_table_rows()))
    return 0


def _demo() -> int:
    from repro.core import ServiceEngine
    from repro.core.experiments import av_markup

    eng = ServiceEngine()
    eng.add_server("srv1", documents={"demo": (av_markup(6.0, True), "demo")})
    result = eng.run_full_session("srv1", "demo")
    print(render_table(
        "Demo delivery (6 s synchronized A/V + images)",
        ["stream", "frames", "gaps"],
        [[sid, s.frames_played, s.gaps]
         for sid, s in sorted(result.streams.items())],
    ))
    print(f"worst skew: {result.worst_skew_s() * 1e3:.1f} ms; "
          f"startup: {result.startup_latency_s:.2f} s")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    cmd = args[0]
    if cmd == "list":
        print("experiments:")
        for k, (_, title) in EXPERIMENTS.items():
            print(f"  {k:<6} {title}")
        print("figures:")
        for k, title in FIGURES.items():
            print(f"  {k:<6} {title}")
        return 0
    if cmd == "demo":
        return _demo()
    if cmd == "run":
        if len(args) < 2:
            print("usage: python -m repro run <e1..e11|table1|fig1|fig2|fig4>")
            return 2
        key = args[1].lower()
        if key in EXPERIMENTS:
            return _run_experiment(key)
        if key in FIGURES:
            return _run_figure(key)
        print(f"unknown target {key!r}; try 'python -m repro list'")
        return 2
    print(f"unknown command {cmd!r}; try 'python -m repro help'")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
