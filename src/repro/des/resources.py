"""Waitable FIFO stores for inter-process communication.

The client's media buffers and every message queue between service
components are built on :class:`Store`: a bounded FIFO whose ``get``
and ``put`` operations are events a process can wait on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.des.kernel import Event, Simulator

__all__ = ["Store", "QueueFullError"]


class QueueFullError(Exception):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class StorePut(Event):
    """Pending put; triggers when the item has been accepted."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    """Pending get; triggers with the retrieved item."""

    __slots__ = ()


class Store:
    """Bounded FIFO store with blocking get/put events.

    ``capacity`` may be ``float('inf')`` for an unbounded queue. Items
    are delivered in strict FIFO order; waiting getters are served in
    request order (no overtaking), which keeps media frames in
    sequence through the buffer layer.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # -- blocking interface --------------------------------------------
    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    # -- non-blocking interface ------------------------------------------
    def put_nowait(self, item: Any) -> None:
        """Insert immediately or raise :class:`QueueFullError`.

        Used by lossy paths (e.g. a full receive buffer drops the
        arriving frame instead of back-pressuring the network).
        """
        if self.is_full:
            raise QueueFullError(f"store at capacity {self.capacity}")
        self.items.append(item)
        self._dispatch()

    def get_nowait(self) -> Any:
        """Remove and return the head item; raise ``IndexError`` if empty."""
        if not self.items:
            raise IndexError("get from empty store")
        item = self.items.popleft()
        self._dispatch()
        return item

    def peek(self) -> Any:
        """Return the head item without removing it."""
        if not self.items:
            raise IndexError("peek at empty store")
        return self.items[0]

    # -- internals -------------------------------------------------------
    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Serve pending gets while items exist.
            while self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progressed = True
