"""Codec registry and quality-grade ladders.

The paper's long-term synchronization recovery "gracefully degrades
(upgrades) the stream's quality, e.g. by increasing (decreasing) video
compression factor or decreasing (increasing) audio sampling
frequency", between thresholds the user accepted at connection time,
down to a bottom rung where "the service may choose to stop
transmitting the specific stream".

We model that as an ordered *ladder* of :class:`QualityGrade` rungs
per codec, grade 0 being the best. The sentinel :data:`SUSPENDED`
grade (infinite index, zero bitrate) models the stop-transmitting
rung. The concrete rates follow the paper's protocol stack (Figure 5):
MPEG/AVI video, PCM → ADPCM → VADPCM audio, GIF/TIFF/BMP/JPEG images.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.media.types import MediaType

__all__ = [
    "QualityGrade",
    "Codec",
    "CodecRegistry",
    "VIDEO_LADDER",
    "AUDIO_LADDER",
    "IMAGE_ENCODINGS",
    "SUSPENDED",
    "default_registry",
]


@dataclass(frozen=True, slots=True)
class QualityGrade:
    """One rung of a codec's quality ladder.

    ``quality_score`` is a perceptual proxy in [0, 1] used only for
    reporting (delivered-quality profiles in the experiments);
    mechanisms act on ``bitrate_bps``/``frame_rate`` alone.
    """

    index: int
    label: str
    bitrate_bps: int
    frame_rate: float  # video frames/s or audio frames/s (blocks)
    quality_score: float
    detail: str = ""  # e.g. "compression x2" / "8 kHz sampling"

    def __post_init__(self) -> None:
        if self.bitrate_bps < 0:
            raise ValueError("bitrate must be >= 0")
        if not (0.0 <= self.quality_score <= 1.0):
            raise ValueError("quality_score must be in [0, 1]")

    @property
    def frame_interval_s(self) -> float:
        if self.frame_rate <= 0:
            return float("inf")
        return 1.0 / self.frame_rate

    @property
    def mean_frame_bytes(self) -> float:
        if self.frame_rate <= 0:
            return 0.0
        return self.bitrate_bps / 8.0 / self.frame_rate


#: Sentinel rung: stream transmission suspended (paper: "the service
#: may choose to stop transmitting the specific stream").
SUSPENDED = QualityGrade(
    index=10_000,
    label="suspended",
    bitrate_bps=0,
    frame_rate=0.0,
    quality_score=0.0,
    detail="transmission stopped at bottom threshold",
)


#: MPEG-1-era video ladder: grade 0 is full quality; deeper grades
#: raise the compression factor and finally halve the frame rate.
VIDEO_LADDER: tuple[QualityGrade, ...] = (
    QualityGrade(0, "video/full", 1_500_000, 25.0, 1.00, "compression x1"),
    QualityGrade(1, "video/high", 1_000_000, 25.0, 0.85, "compression x1.5"),
    QualityGrade(2, "video/medium", 750_000, 25.0, 0.70, "compression x2"),
    QualityGrade(3, "video/low", 500_000, 25.0, 0.55, "compression x3"),
    QualityGrade(4, "video/minimal", 250_000, 12.5, 0.35, "compression x6, half rate"),
)

#: Audio ladder following the paper's supported standards:
#: PCM (64 kb/s, 8 kHz) -> ADPCM (32 kb/s) -> VADPCM (16 kb/s).
AUDIO_LADDER: tuple[QualityGrade, ...] = (
    QualityGrade(0, "audio/pcm", 64_000, 50.0, 1.00, "PCM 8 kHz"),
    QualityGrade(1, "audio/adpcm", 32_000, 50.0, 0.80, "ADPCM 8 kHz"),
    QualityGrade(2, "audio/vadpcm", 16_000, 50.0, 0.60, "VADPCM 8 kHz"),
)

#: Discrete image encodings (paper Figure 5). Static: no ladder.
IMAGE_ENCODINGS: tuple[str, ...] = ("GIF", "TIFF", "BMP", "JPEG")


@dataclass(slots=True)
class Codec:
    """A named codec with its clock rate and quality ladder."""

    name: str
    media_type: MediaType
    clock_rate: int  # media ticks per second (RTP clock)
    ladder: tuple[QualityGrade, ...]
    payload_type: int  # RTP payload-type number
    gradable: bool = True

    def __post_init__(self) -> None:
        if self.clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        if not self.ladder:
            raise ValueError("ladder must have at least one grade")
        indices = [g.index for g in self.ladder]
        if indices != sorted(indices) or len(set(indices)) != len(indices):
            raise ValueError("ladder indices must be strictly increasing")
        rates = [g.bitrate_bps for g in self.ladder]
        if rates != sorted(rates, reverse=True):
            raise ValueError("ladder bitrates must be non-increasing")

    @property
    def num_grades(self) -> int:
        return len(self.ladder)

    @property
    def best(self) -> QualityGrade:
        return self.ladder[0]

    @property
    def worst(self) -> QualityGrade:
        return self.ladder[-1]

    def grade(self, index: int) -> QualityGrade:
        """Return the grade at ladder position ``index``.

        Index ``>= num_grades`` (or the SUSPENDED sentinel index)
        resolves to :data:`SUSPENDED` — the below-bottom-threshold
        state.
        """
        if index < 0:
            raise IndexError(f"grade index must be >= 0, got {index}")
        if index >= len(self.ladder):
            return SUSPENDED
        return self.ladder[index]

    def degrade(self, current: int) -> int:
        """One rung worse (clamps at the suspend sentinel)."""
        if current >= len(self.ladder):
            return current
        return current + 1

    def upgrade(self, current: int) -> int:
        """One rung better (clamps at grade 0).

        From the suspended state the stream re-enters at the ladder's
        worst real rung rather than jumping straight to full quality.
        """
        if current > len(self.ladder):
            return len(self.ladder) - 1
        return max(0, current - 1)


class CodecRegistry:
    """Lookup of codecs by name; supplies defaults per media type."""

    def __init__(self) -> None:
        self._codecs: dict[str, Codec] = {}
        self._default_for: dict[MediaType, str] = {}

    def register(self, codec: Codec, default: bool = False) -> None:
        if codec.name in self._codecs:
            raise ValueError(f"codec {codec.name!r} already registered")
        self._codecs[codec.name] = codec
        if default or codec.media_type not in self._default_for:
            self._default_for[codec.media_type] = codec.name

    def get(self, name: str) -> Codec:
        try:
            return self._codecs[name]
        except KeyError:
            raise KeyError(f"unknown codec {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._codecs

    def default_for(self, media_type: MediaType) -> Codec:
        try:
            return self._codecs[self._default_for[media_type]]
        except KeyError:
            raise KeyError(f"no codec registered for {media_type}") from None

    def names(self) -> list[str]:
        return sorted(self._codecs)


def default_registry() -> CodecRegistry:
    """Registry with the paper's codec set (Figure 5)."""
    reg = CodecRegistry()
    reg.register(
        Codec("MPEG", MediaType.VIDEO, clock_rate=90_000, ladder=VIDEO_LADDER,
              payload_type=32),
        default=True,
    )
    # AVI at the era was a lightly-compressed container: model it as the
    # same ladder at a higher rate ceiling (chosen "depending on the
    # availability of bandwidth" per the paper).
    avi_ladder = tuple(
        QualityGrade(g.index, g.label.replace("video", "avi"),
                     g.bitrate_bps * 2, g.frame_rate, g.quality_score, g.detail)
        for g in VIDEO_LADDER
    )
    reg.register(
        Codec("AVI", MediaType.VIDEO, clock_rate=90_000, ladder=avi_ladder,
              payload_type=33)
    )
    reg.register(
        Codec("PCM-family", MediaType.AUDIO, clock_rate=8_000,
              ladder=AUDIO_LADDER, payload_type=0),
        default=True,
    )
    return reg
