"""Lint-run orchestration behind ``python -m repro lint``.

Composes the two rule families over their targets — the determinism
linter over Python trees (``--self`` = the installed ``repro``
package), the scenario analyzer over HML files/directories and the
shipped corpus (``--scenarios``) — and renders everything through the
shared :class:`~repro.analysis.report.Reporter`.
"""

from __future__ import annotations

import os

from repro.analysis.baseline import (
    apply_baseline,
    baseline_document,
    load_baseline,
)
from repro.analysis.callgraph import TAINT_RULES, load_program
from repro.analysis.corpus import shipped_scenario_sets
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SourceSpan,
    exit_code,
    github_annotations,
    render_diagnostics,
)
from repro.analysis.pyrules import PY_RULES, stale_pragma_diags
from repro.analysis.scenario_rules import (
    SCENARIO_RULES,
    ScenarioSet,
    analyze_set,
)
from repro.analysis.shardrules import SHARD_RULES
from repro.analysis.tracerules import TRACE_RULES
from repro.hml.lexer import HmlSyntaxError
from repro.hml.parser import parse

__all__ = [
    "self_lint_root",
    "run_lint",
    "lint_hml_paths",
    "lint_python_program",
    "known_rule_ids",
    "list_rules",
]

#: program-scoped rule families (each checker takes a PyProgram)
_PROGRAM_REGISTRIES = (SHARD_RULES, TAINT_RULES, TRACE_RULES)
#: findings the lint run itself may synthesize outside any registry
_META_RULES = {
    "det-syntax",
    "lint-stale-pragma",
    "lint-stale-baseline",
    "lint-baseline-reason",
}


def self_lint_root() -> str:
    """The directory ``--self`` lints: the installed repro package."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_hml(path: str) -> "tuple[object, None] | tuple[None, Diagnostic]":
    try:
        with open(path, encoding="utf-8") as fh:
            return parse(fh.read()), None
    except HmlSyntaxError as exc:
        return None, Diagnostic(
            "scenario-syntax", Severity.ERROR,
            f"cannot parse: {exc}",
            span=SourceSpan(file=path, line=getattr(exc, "line", 0) or 0),
        )
    except ValueError as exc:
        return None, Diagnostic(
            "scenario-syntax", Severity.ERROR, f"cannot parse: {exc}",
            span=SourceSpan(file=path),
        )


def lint_hml_paths(
    paths: list[str],
    capacity_bps: float | None = None,
    closed: bool = False,
) -> list[Diagnostic]:
    """Analyze ``.hml`` files / directories as one scenario set.

    A directory is one set (its documents cross-resolve); loose files
    listed together also form one set, named after their common
    parent. Unparseable documents yield a ``scenario-syntax`` error
    instead of aborting the run.
    """
    out: list[Diagnostic] = []
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".hml")
            )
        else:
            files.append(path)
    documents = {}
    for path in files:
        doc, problem = _load_hml(path)
        if problem is not None:
            out.append(problem)
        else:
            name = os.path.splitext(os.path.basename(path))[0]
            documents[name] = doc
    if documents:
        set_name = (os.path.basename(os.path.normpath(paths[0]))
                    if len(paths) == 1 else "adhoc")
        sset = ScenarioSet(name=set_name, documents=documents,
                           closed=closed, capacity_bps=capacity_bps)
        out.extend(analyze_set(sset))
    return out


def known_rule_ids() -> set[str]:
    """Every rule id the Python lint can emit (for stale-pragma)."""
    out: set[str] = set(_META_RULES)
    for registry in (PY_RULES, *_PROGRAM_REGISTRIES):
        out.update(registry.ids())
    return out


def lint_python_program(
    paths: list[str],
    full: bool = False,
    baseline_path: str | None = None,
) -> list[Diagnostic]:
    """Whole-program Python lint: every family plus hygiene passes.

    Runs the per-module determinism rules, the program-scoped
    families (fork-safety, taint, trace-schema), then the
    stale-pragma pass (which must see the pragma usage every earlier
    family recorded) and finally the suppression baseline. ``full``
    marks a complete-package lint (``--self``) and enables
    program-completeness rules like ``trace-unused-kind``.
    """
    program, diags = load_program(paths, full=full)
    for mod in program.modules:
        diags.extend(PY_RULES.run(mod))
    for registry in _PROGRAM_REGISTRIES:
        diags.extend(registry.run(program))
    known = known_rule_ids()
    for mod in program.modules:
        diags.extend(stale_pragma_diags(mod, known))
    if baseline_path is not None and os.path.exists(baseline_path):
        diags, _suppressed = apply_baseline(diags,
                                            load_baseline(baseline_path))
    diags.sort(key=lambda d: (
        d.span.file if d.span else d.subject,
        d.span.line if d.span else 0,
        d.rule_id,
    ))
    return diags


def run_lint(
    reporter,
    paths: list[str] | None = None,
    self_lint: bool = False,
    scenarios: bool = False,
    capacity_bps: float | None = None,
    closed: bool = False,
    examples_dir: str | None = None,
    fmt: str = "text",
    baseline_path: str | None = None,
    write_baseline: str | None = None,
) -> int:
    """Run the requested lint passes; returns the process exit code."""
    any_pass = False
    status = 0
    gh_lines: list[str] = []

    py_paths = [p for p in (paths or []) if p.endswith(".py")
                or (os.path.isdir(p) and not _looks_like_hml_dir(p))]
    hml_paths = [p for p in (paths or []) if p not in py_paths]
    if self_lint:
        py_paths.append(self_lint_root())

    if py_paths:
        any_pass = True
        diags = lint_python_program(py_paths, full=self_lint,
                                    baseline_path=baseline_path)
        if write_baseline is not None:
            from repro.ioutil import atomic_write_json
            atomic_write_json(write_baseline, baseline_document(diags))
            reporter.value("baseline_written", write_baseline)
        render_diagnostics(reporter, diags, "determinism lint")
        gh_lines.extend(github_annotations(diags))
        status = max(status, exit_code(diags))

    if hml_paths:
        any_pass = True
        diags = lint_hml_paths(hml_paths, capacity_bps=capacity_bps,
                               closed=closed)
        render_diagnostics(reporter, diags, "scenario analysis")
        gh_lines.extend(github_annotations(diags))
        status = max(status, exit_code(diags))

    if scenarios:
        any_pass = True
        all_diags: list[Diagnostic] = []
        for name, sset in sorted(shipped_scenario_sets(examples_dir).items()):
            all_diags.extend(analyze_set(sset))
            reporter.value(
                f"scenario-set:{name}",
                f"{len(sset.documents)} document(s), "
                + ("closed" if sset.closed else "open"),
            )
        render_diagnostics(reporter, all_diags, "shipped scenarios")
        gh_lines.extend(github_annotations(all_diags))
        status = max(status, exit_code(all_diags))

    if not any_pass:
        reporter.text(
            "usage: python -m repro lint [PATH ...] [--self] [--scenarios] "
            "[--capacity-mbps F] [--closed-set] [--list-rules]")
        return 2
    if fmt == "github":
        for line in gh_lines:
            reporter.text(line)
    return status


def _looks_like_hml_dir(path: str) -> bool:
    try:
        names = os.listdir(path)
    except OSError:
        return False
    return any(n.endswith(".hml") for n in names)


def list_rules(reporter) -> int:
    """Render the rule catalog of every family."""
    for registry in (SCENARIO_RULES, PY_RULES, *_PROGRAM_REGISTRIES):
        reporter.table(
            f"{registry.family} rules",
            ["rule", "severity", "description"],
            [[r.rule_id, r.severity.label, r.description]
             for r in registry],
        )
    return 0
