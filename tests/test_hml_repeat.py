"""Tests for the REPEAT markup extension (§7 future work)."""

import pytest

from repro.core import ServiceEngine
from repro.hml import (
    DocumentBuilder,
    HmlSyntaxError,
    parse,
    serialize,
    validate_document,
)
from repro.model import build_playout_schedule, scenario_duration


def test_parse_and_roundtrip_repeat():
    doc = parse(
        "<TITLE> t </TITLE>"
        "<AU> STARTIME=0 DURATION=2 REPEAT=3 SOURCE=s ID=A </AU>"
        "<VI> STARTIME=1 DURATION=4 SOURCE=s2 ID=V </VI>"
    )
    au = doc.elements[0]
    assert au.repeat == 3
    assert doc.elements[1].repeat == 1
    assert "REPEAT=3" in serialize(doc)
    assert parse(serialize(doc)) == doc


def test_repeat_default_not_serialized():
    doc = DocumentBuilder("t").audio("s", "A", duration=2.0).build()
    assert "REPEAT" not in serialize(doc)


def test_repeat_validation_rules():
    bad = parse("<TITLE> t </TITLE>"
                "<AU> DURATION=2 SOURCE=s ID=A </AU>")
    assert not [i for i in validate_document(bad) if i.is_error]
    with pytest.raises(HmlSyntaxError, match="REPEAT must be"):
        parse("<TITLE> t </TITLE>"
              "<AU> DURATION=2 REPEAT=0 SOURCE=s ID=A </AU>")
    # repeat without duration is a semantic error
    doc = DocumentBuilder("t").audio("s", "A", repeat=3).build()
    codes = {i.code for i in validate_document(doc)}
    assert "repeat-without-duration" in codes


def test_repeat_extends_playout_schedule():
    doc = (
        DocumentBuilder("t")
        .audio("s:/loop.au", "A", startime=0.0, duration=2.0, repeat=4)
        .image("s:/bg.gif", "I", startime=0.0, duration=8.0)
        .build()
    )
    entries = build_playout_schedule(doc)
    by_id = {e.stream_id: e for e in entries}
    assert by_id["A"].duration == 8.0  # 4 x 2 s loop
    assert scenario_duration(entries) == 8.0


def test_repeat_end_to_end_delivery():
    """A looped audio plays for repeat x duration through the stack."""
    doc = (
        DocumentBuilder("Looping")
        .audio("audsrv:/jingle.au", "JINGLE", startime=0.0,
               duration=1.0, repeat=3)
        .build()
    )
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"doc": (serialize(doc), "x")})
    result = eng.orchestrator.run_full_session("srv1", "doc")
    assert result.completed
    # ~3 s of audio at 50 frames/s.
    assert result.streams["JINGLE"].frames_played == pytest.approx(150, abs=5)
