"""Media servers: per-media-type storage and transmission (§2, §6.1).

"Media servers in which media objects are stored ... each one is
responsible for transmitting a certain media type through a parallel
connection which is established between the browser and the
corresponding media server. The media objects involved are
transmitted from the media servers towards the browser according to
the presentation scenario and the presentation constraints. The
transmission process of each media object is adjusted according to
the feedback reports."

Continuous objects stream over RTP via a :class:`StreamHandler`
(whose grade the Quality Converter adjusts live); discrete objects
ship over the reliable channel.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.client.playout import PauseGate
from repro.des import Event, Simulator
from repro.media.store import MediaStore
from repro.net.channel import ReliableSender
from repro.net.topology import Network
from repro.rtp.rtcp import RtcpSink
from repro.rtp.session import RtpSender
from repro.server.quality_converter import MediaStreamQualityConverter

__all__ = ["StreamHandler", "StreamOrigin", "StreamSnapshot", "MediaServer"]

#: Media servers may share a host node (§6.1), so transmission ports
#: are allocated from one global pool to avoid collisions.
_tx_ports = itertools.count(20_000)


@dataclass(frozen=True, slots=True)
class StreamOrigin:
    """The start_stream arguments that created a handler.

    Kept on the handler so a crash can snapshot everything needed to
    re-create the stream on a replica.
    """

    session_id: str
    stream_id: str
    object_path: str
    client_node: str
    client_port: int
    duration_s: float
    floor_grade: int
    allow_suspend: bool
    ssrc: int
    first_seq: int


@dataclass(frozen=True, slots=True)
class StreamSnapshot:
    """Where one stream stood when its server crashed."""

    origin: StreamOrigin
    #: media position reached (absolute, scenario timeline)
    position_s: float
    #: next unwrapped RTP sequence number the replacement should use
    next_seq: int
    #: quality grade in force at the crash
    grade: int
    #: simulation time of the crash that produced this snapshot
    crashed_at: float


class StreamHandler:
    """Streams one continuous media object to one client."""

    def __init__(
        self,
        sim: Simulator,
        converter: MediaStreamQualityConverter,
        sender: RtpSender,
        duration_s: float,
        send_offset_s: float = 0.0,
        gate: PauseGate | None = None,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.sim = sim
        self.converter = converter
        self.source = converter.source
        self.sender = sender
        self.duration_s = duration_s
        self.send_offset_s = send_offset_s
        self.gate = gate
        self.frames_sent = 0
        self.suspended_intervals = 0
        self.finished: Event = sim.event()
        self.process = sim.process(
            self._run(), name=f"stream:{self.source.stream_id}"
        )

    @property
    def stream_id(self) -> str:
        return self.source.stream_id

    def _run(self):
        sim = self.sim
        if self.send_offset_s > 0:
            yield sim.timeout(self.send_offset_s)
        while self.source.media_time_s < self.duration_s - 1e-9:
            if self.gate is not None and self.gate.paused:
                yield self.gate.wait()
            interval = self.source.frame_interval_s
            frame = self.source.next_frame()
            if frame is not None:
                self.sender.send_frame(frame)
                self.frames_sent += 1
            else:
                self.suspended_intervals += 1
            yield sim.timeout(interval)
        self.finished.succeed(self.frames_sent)

    def stop(self) -> None:
        if self.process.is_alive:
            self.process.interrupt("session closed")


@dataclass(slots=True)
class DiscreteDelivery:
    """Bookkeeping for one reliable blob transfer."""

    element_id: str
    size_bytes: int
    done: Event


class MediaServer:
    """One media server: a store plus transmission machinery."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        node_id: str,
        store: MediaStore,
        region: str | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.node_id = node_id
        self.store = store
        #: the region this server is the edge for (None = core/origin)
        self.region = region
        #: (session_id, stream_id) -> live handler
        self.streams: dict[tuple[str, str], StreamHandler] = {}
        self.deliveries: list[DiscreteDelivery] = []
        self._gates: dict[str, PauseGate] = {}
        self._rtcp_sink: RtcpSink | None = None
        #: fault-injection state: a failed server refuses new work and
        #: leaves snapshots of its interrupted streams in ``wreckage``
        #: for the recovery watchdog to fail over
        self.failed = False
        self.crashed_at: float | None = None
        self.crash_count = 0
        self.wreckage: list[StreamSnapshot] = []
        #: recovery hooks (wired by a MediaWatchdog when installed)
        self.on_crash = None
        self.on_restart = None

    # -- fault injection ---------------------------------------------------
    def crash(self) -> None:
        """Fail-stop the server, snapshotting its in-flight streams."""
        if self.failed:
            return
        self.failed = True
        self.crashed_at = self.sim.now
        self.crash_count += 1
        n_streams = 0
        for key, handler in sorted(self.streams.items()):
            origin: StreamOrigin | None = getattr(handler, "origin", None)
            if origin is not None:
                n_streams += 1
                self.wreckage.append(StreamSnapshot(
                    origin=origin,
                    position_s=handler.source.media_time_s,
                    next_seq=origin.first_seq + handler.sender.packet_count,
                    grade=handler.converter.source.grade_index,
                    crashed_at=self.sim.now,
                ))
            handler.stop()
            handler.sender.close()
        self.streams.clear()
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "fault.crash", self.name,
                                  node=self.node_id, streams=n_streams)
        if self.on_crash is not None:
            self.on_crash(self)

    def restart(self) -> None:
        """Bring a crashed server back (empty-handed: state was lost)."""
        if not self.failed:
            return
        self.failed = False
        self.crashed_at = None
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "fault.restart", self.name,
                                  node=self.node_id)
        if self.on_restart is not None:
            self.on_restart(self)

    def _next_port(self) -> int:
        return next(_tx_ports)

    # -- QoS feedback path -------------------------------------------------
    def open_rtcp_sink(self, port: int, on_report) -> RtcpSink:
        """Receive RTCP receiver reports on this server's node."""
        self._rtcp_sink = RtcpSink(self.network, self.node_id, port,
                                   on_report=on_report)
        return self._rtcp_sink

    # -- session gates -------------------------------------------------------
    def gate_for(self, session_id: str) -> PauseGate:
        gate = self._gates.get(session_id)
        if gate is None:
            gate = PauseGate(self.sim)
            self._gates[session_id] = gate
        return gate

    def pause_session(self, session_id: str) -> None:
        """User pressed pause: stop transmitting this session's data."""
        self.gate_for(session_id).pause()

    def resume_session(self, session_id: str) -> None:
        self.gate_for(session_id).resume()

    # -- continuous streaming -----------------------------------------------
    def start_stream(
        self,
        session_id: str,
        object_path: str,
        stream_id: str,
        client_node: str,
        client_port: int,
        duration_s: float,
        send_offset_s: float = 0.0,
        initial_grade: int = 0,
        floor_grade: int = 99,
        allow_suspend: bool = True,
        ssrc: int = 0,
        start_offset_media_s: float = 0.0,
        first_seq: int = 0,
    ) -> tuple[StreamHandler, MediaStreamQualityConverter]:
        """Activate transmission of one continuous object.

        Returns the handler and its quality converter (which the
        Server QoS Manager registers for grading).

        ``start_offset_media_s``/``first_seq`` let a failover replica
        resume a crashed server's stream mid-object instead of from
        the beginning.
        """
        if self.failed:
            raise RuntimeError(f"media server {self.name!r} is down")
        key = (session_id, stream_id)
        if key in self.streams:
            raise ValueError(
                f"stream {stream_id!r} already active on {self.name} "
                f"for session {session_id!r}"
            )
        source = self.store.frame_source(object_path, grade_index=initial_grade)
        # Stream under the scenario's element id, not the storage path.
        source.stream_id = stream_id
        if start_offset_media_s > 0:
            source.fast_forward(start_offset_media_s)
        codec = self.store.codec_for(object_path)
        converter = MediaStreamQualityConverter(
            source, floor_grade=floor_grade, allow_suspend=allow_suspend
        )
        sender = RtpSender(
            self.network, self.node_id, self._next_port(),
            client_node, client_port,
            ssrc=ssrc, payload_type=codec.payload_type,
            clock_rate=codec.clock_rate, stream_id=stream_id,
            session=session_id, first_seq=first_seq,
        )
        handler = StreamHandler(
            self.sim, converter, sender, duration_s=duration_s,
            send_offset_s=send_offset_s, gate=self.gate_for(session_id),
        )
        handler.origin = StreamOrigin(
            session_id=session_id, stream_id=stream_id,
            object_path=object_path, client_node=client_node,
            client_port=client_port, duration_s=duration_s,
            floor_grade=floor_grade, allow_suspend=allow_suspend,
            ssrc=ssrc, first_seq=first_seq,
        )
        self.streams[key] = handler
        # Natural completion releases the registration (and the port),
        # so a later document in the same session can reuse element ids.
        handler.finished.callbacks.append(
            lambda ev: self._on_stream_finished(key)
        )
        if self.sim._tracing:
            metrics = getattr(self.sim._tracer, "metrics", None)
            if metrics is not None:
                # Per-replica load: which edge actually serves streams.
                metrics.counter("media_streams_started",
                                server=self.name).inc()
        return handler, converter

    def _on_stream_finished(self, key: tuple[str, str]) -> None:
        handler = self.streams.pop(key, None)
        if handler is not None:
            handler.sender.close()

    def streams_of(self, session_id: str) -> dict[str, StreamHandler]:
        return {sid: h for (sess, sid), h in self.streams.items()
                if sess == session_id}

    def stop_stream(self, session_id: str, stream_id: str) -> None:
        handler = self.streams.pop((session_id, stream_id), None)
        if handler is not None:
            handler.stop()
            handler.sender.close()

    def stop_session(self, session_id: str) -> None:
        """Stop every stream this session has on this media server."""
        for sid in list(self.streams_of(session_id)):
            self.stop_stream(session_id, sid)

    # -- discrete delivery -------------------------------------------------------
    def send_discrete(
        self,
        element_id: str,
        object_path: str,
        client_node: str,
        client_port: int,
        flow_id: str,
    ) -> Event:
        """Ship a discrete object reliably; returns its completion event."""
        if self.failed:
            raise RuntimeError(f"media server {self.name!r} is down")
        size = self.store.blob_size(object_path)
        sender = ReliableSender(
            self.network, self.node_id, self._next_port(),
            client_node, client_port, flow_id=flow_id,
        )
        done = sender.send_message(size, payload={"element_id": element_id})
        done.callbacks.append(lambda ev: sender.close())
        self.deliveries.append(
            DiscreteDelivery(element_id=element_id, size_bytes=size, done=done)
        )
        return done
