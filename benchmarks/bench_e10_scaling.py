"""E10 — scaling the viewer population, shared vs. per-client access.

The service is "a set of multimedia servers distributed over a
broadband network" serving many users (§2). Two sweeps:

* **shared link** — N simultaneous viewers crammed onto one access
  bottleneck; the graceful-degradation machinery absorbs the overload;
* **per-client links** — the same population, each viewer on its own
  access link (the service's real shape); viewers couple only through
  the backbone and admission, so the load stays clean at every N.
"""

from repro.analysis import render_table
from repro.core.experiments import run_population_scaling, run_scaling_experiment


def test_e10_session_scaling(report, once):
    headers, rows = once(run_scaling_experiment)
    report("e10_scaling",
           render_table("E10 — concurrent viewers on an 8 Mb/s access "
                        "(each needs ~1.6 Mb/s)", headers, rows))
    by_n = {r[0]: r for r in rows}
    # Everyone admitted (capacity CAC is generous here; the *network*
    # is the constraint under study).
    for n, row in by_n.items():
        assert row[1] == n
    # Light load plays clean.
    assert by_n[1][2] == 0 and by_n[4][2] == 0
    # Overload (8 sessions ~ 12.8 Mb/s offered on 8 Mb/s) hurts, and
    # the long-term mechanism visibly engages.
    assert by_n[8][2] > 0, "overload should show gaps"
    assert by_n[8][5] > 0, "overload should trigger grading"
    assert by_n[8][4] > by_n[4][4], "video grade should degrade under load"


def test_e10b_population_scaling(report, once):
    shared_headers, shared_rows = run_scaling_experiment()
    headers, rows = once(run_population_scaling)
    report("e10b_population_scaling",
           render_table("E10b — the same viewers on per-client 8 Mb/s "
                        "access links", headers, rows)
           + "\n\n"
           + render_table("(reference) E10 — shared 8 Mb/s access link",
                          shared_headers, shared_rows))
    by_n = {r[0]: r for r in rows}
    shared_by_n = {r[0]: r for r in shared_rows}
    # Everyone admitted at every population size.
    for n, row in by_n.items():
        assert row[1] == n
    # Per-client access links carry every population size cleanly —
    # no gaps, no grading — because nothing contends on the access.
    for n in by_n:
        assert by_n[n][2] == 0, f"population {n}: per-client links gapped"
        assert by_n[n][5] == 0, f"population {n}: grading engaged"
    # The shared link chokes at 8 viewers where per-client links don't:
    # the isolation is the measurable win of the topology refactor.
    assert shared_by_n[8][2] > by_n[8][2]
    assert shared_by_n[8][5] > by_n[8][5]
