"""Tutor↔student asynchronous interaction via e-mail (§6.2.4, §6.3).

"The interaction between the student and the teacher is implemented
via e-mail. The protocols used for this purpose are SMTP and MIME."

Store-and-forward model: a :class:`MailService` holds mailboxes; a
message submitted on one node travels over the simulated network as
"SMTP"-labelled reliable traffic and lands in the recipient's mailbox
after delivery. Attachments carry MIME types from the Figure 5
format set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.des import Event, Simulator
from repro.net.channel import ReliableReceiver, ReliableSender
from repro.net.topology import Network

__all__ = ["Attachment", "MailMessage", "Mailbox", "MailService"]

#: MIME types for the supported formats (Figure 5).
SUPPORTED_MIME = frozenset({
    "text/plain", "image/gif", "image/tiff", "image/bmp", "image/jpeg",
    "audio/basic", "audio/adpcm", "video/avi", "video/mpeg",
})

_mail_ids = itertools.count(1)
_mail_ports = itertools.count(25_000)


@dataclass(frozen=True, slots=True)
class Attachment:
    filename: str
    mime_type: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.mime_type not in SUPPORTED_MIME:
            raise ValueError(f"unsupported MIME type {self.mime_type!r}")
        if self.size_bytes <= 0:
            raise ValueError("attachment size must be positive")


@dataclass(frozen=True, slots=True)
class MailMessage:
    sender: str
    recipient: str
    subject: str
    body: str
    attachments: tuple[Attachment, ...] = ()
    in_reply_to: int | None = None
    message_id: int = field(default_factory=lambda: next(_mail_ids))
    sent_at: float = 0.0

    @property
    def size_bytes(self) -> int:
        return (
            400  # headers
            + len(self.body.encode("utf-8"))
            + sum(a.size_bytes for a in self.attachments)
        )


@dataclass(slots=True)
class Mailbox:
    address: str
    messages: list[MailMessage] = field(default_factory=list)

    def unread_from(self, sender: str) -> list[MailMessage]:
        return [m for m in self.messages if m.sender == sender]

    def thread(self, root_id: int) -> list[MailMessage]:
        """Root message plus all (transitively) linked replies."""
        ids = {root_id}
        out = []
        for m in self.messages:
            if m.message_id in ids or (m.in_reply_to in ids):
                ids.add(m.message_id)
                out.append(m)
        return out


class MailService:
    """SMTP/MIME-style store-and-forward mail over the network."""

    def __init__(self, sim: Simulator, network: Network,
                 hub_node: str) -> None:
        self.sim = sim
        self.network = network
        self.hub_node = hub_node
        self._boxes: dict[str, Mailbox] = {}
        self._homes: dict[str, str] = {}  # address -> node
        port = next(_mail_ports)
        self._hub_port = port
        self._rx = ReliableReceiver(network, hub_node, port,
                                    on_message=self._on_delivery)
        self.delivered = 0

    # -- accounts -----------------------------------------------------------
    def register(self, address: str, node: str) -> Mailbox:
        if address in self._boxes:
            raise ValueError(f"address {address!r} already registered")
        box = Mailbox(address=address)
        self._boxes[address] = box
        self._homes[address] = node
        return box

    def mailbox(self, address: str) -> Mailbox:
        try:
            return self._boxes[address]
        except KeyError:
            raise KeyError(f"no mailbox {address!r}") from None

    # -- submission / delivery ----------------------------------------------
    def send(self, message: MailMessage) -> Event:
        """Submit a message; returns the event of its delivery."""
        if message.recipient not in self._boxes:
            raise KeyError(f"unknown recipient {message.recipient!r}")
        origin = self._homes.get(message.sender)
        if origin is None:
            raise KeyError(f"unknown sender {message.sender!r}")
        message = MailMessage(
            sender=message.sender, recipient=message.recipient,
            subject=message.subject, body=message.body,
            attachments=message.attachments,
            in_reply_to=message.in_reply_to,
            message_id=message.message_id, sent_at=self.sim.now,
        )
        tx = ReliableSender(
            self.network, origin, next(_mail_ports),
            self.hub_node, self._hub_port,
            flow_id=f"mail-{message.message_id}", protocol="SMTP",
        )
        done = tx.send_message(message.size_bytes, payload=message)
        done.callbacks.append(lambda ev: tx.close())
        return done

    def _on_delivery(self, payload, size, flow) -> None:
        if not isinstance(payload, MailMessage):
            return
        self._boxes[payload.recipient].messages.append(payload)
        self.delivered += 1
