"""Fixture: determinism-discipline-clean simulation code."""


class Stage:
    def __init__(self, sim, rng) -> None:
        self.sim = sim
        self.rng = rng

    def fire(self, streams: dict) -> list:
        if self.sim._tracing:
            self.sim._tracer.emit(self.sim.now, "stage.fire", "x")
        order = [sid for sid in sorted(streams)]
        delay = float(self.rng.stream("stage").uniform(0.0, 1.0))
        return [(sid, self.sim.now + delay) for sid in order]


def bind_media(node) -> int:
    port = node.ports.allocate("media")
    node.ports.release(port)
    return port
