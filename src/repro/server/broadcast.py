"""Periodic broadcast of top-k hot documents (quasi-harmonic family).

For the *hottest* objects, even batched unicast repeats the content
once per batch. Periodic broadcasting (the VoD literature's answer,
see PAPERS.md: quasi-harmonic broadcasting) makes origin egress
**constant in the audience size**: the object is cut into ``n``
segments that cycle continuously on parallel channels, early segments
on fast channels and late segments on slow ones, so a viewer who
tunes in waits at most one slot of the first segment and then always
receives each later segment in time.

:func:`quasi_harmonic_schedule` computes the segment/channel layout
for the harmonic family with an ``m``-subslot safety correction:
segment 1 streams at the full consumption rate ``b`` and segment
``i ≥ 2`` at ``b / (i - 1 + 1/m)`` — slightly above classic harmonic
(``b / i``), which is known to under-deliver the first slot; as
``m → ∞`` the total tends to ``b·(1 + H(n-1))``.

:class:`PeriodicBroadcaster` runs the channels as carrier traffic
origin → fan-out router (the POP keeps the cycling segments
buffered), and serves joining viewers from the fan-out point after
the bounded slot wait. The per-viewer leg reuses the shared-flow
fan-out machinery: each viewer gets its own RTP sequence space from a
POP-side sender fed by the POP's reconstructed copy.

:class:`HotSet` picks *which* documents deserve a broadcast channel:
a demand counter over document requests whose ``top(k)`` is the
broadcast set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.des import Simulator
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.rtp.session import RtpSender
from repro.server.media_server import MediaServer

__all__ = [
    "BroadcastChannel",
    "BroadcastSchedule",
    "quasi_harmonic_schedule",
    "PeriodicBroadcaster",
    "HotSet",
]

#: broadcaster transmission ports, above every allocator range
_bcast_ports = itertools.count(90_000)

#: carrier packet size for channel traffic (MTU-ish)
CARRIER_PACKET_BYTES = 1400


@dataclass(frozen=True, slots=True)
class BroadcastChannel:
    """One cycling channel: segment index, its rate, its slot."""

    segment: int
    rate_bps: float
    #: seconds of media this channel's segment covers
    segment_s: float


@dataclass(frozen=True, slots=True)
class BroadcastSchedule:
    """The full channel layout for one broadcast object."""

    duration_s: float
    consume_rate_bps: float
    subslots: int
    channels: tuple[BroadcastChannel, ...]

    @property
    def n_segments(self) -> int:
        return len(self.channels)

    @property
    def total_rate_bps(self) -> float:
        """Origin egress rate — constant, whatever the audience."""
        return sum(ch.rate_bps for ch in self.channels)

    @property
    def slot_s(self) -> float:
        """One slot = one first-segment period = the max viewer wait."""
        return self.channels[0].segment_s

    def max_wait_s(self) -> float:
        return self.slot_s

    def bandwidth_ratio(self) -> float:
        """Total broadcast rate over one unicast stream's rate."""
        return self.total_rate_bps / self.consume_rate_bps


def quasi_harmonic_schedule(
    duration_s: float,
    consume_rate_bps: float,
    n_segments: int,
    subslots: int = 4,
) -> BroadcastSchedule:
    """Segment/channel layout for one object (equal-length segments).

    ``subslots`` is the quasi-harmonic safety parameter ``m``: larger
    values approach the harmonic lower bound, smaller ones spend more
    bandwidth on early segments to guarantee in-time delivery.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if consume_rate_bps <= 0:
        raise ValueError("consume_rate_bps must be positive")
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    if subslots < 1:
        raise ValueError("subslots must be >= 1")
    segment_s = duration_s / n_segments
    channels = []
    for i in range(1, n_segments + 1):
        if i == 1:
            rate = consume_rate_bps
        else:
            rate = consume_rate_bps / (i - 1 + 1.0 / subslots)
        channels.append(
            BroadcastChannel(segment=i, rate_bps=rate, segment_s=segment_s)
        )
    return BroadcastSchedule(
        duration_s=duration_s,
        consume_rate_bps=consume_rate_bps,
        subslots=subslots,
        channels=tuple(channels),
    )


class PeriodicBroadcaster:
    """Cycles one hot object's segments origin → fan-out router.

    Carrier traffic runs for ``horizon_s`` at the schedule's total
    rate regardless of how many viewers join — the defining property.
    A joining viewer waits until the next slot boundary (the bounded
    quasi-harmonic startup delay) and then receives the object's full
    frame sequence from the fan-out point, on its own RTP sequence
    space, exactly as a shared-flow subscriber would.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        ms: MediaServer,
        object_path: str,
        fanout_node: str,
        n_segments: int = 8,
        subslots: int = 4,
        horizon_s: float = 60.0,
    ) -> None:
        obj = ms.store.get(object_path)
        codec = ms.store.codec_for(object_path)
        duration_s = getattr(obj, "duration_s", None) or 60.0
        rate = codec.best.mean_frame_bytes * 8.0 * codec.best.frame_rate
        self.sim = sim
        self.network = network
        self.ms = ms
        self.object_path = object_path
        self.fanout_node = fanout_node
        self.horizon_s = horizon_s
        self.schedule = quasi_harmonic_schedule(
            duration_s, rate, n_segments, subslots=subslots
        )
        self.viewers_served = 0
        self.carrier_bytes = 0
        self._sink_port = next(_bcast_ports)
        # The POP-side sink that "buffers the cycling segments": we
        # model reception, not storage, so the handler only counts.
        network.node(fanout_node).bind(self._sink_port, self._on_carrier)
        self._channel_procs = [
            sim.process(self._channel(ch), name=f"bcast:{object_path}:{ch.segment}")
            for ch in self.schedule.channels
        ]
        if sim._tracing:
            sim._tracer.emit(
                sim.now, "bcast.start", object_path, node=ms.node_id,
                fanout=fanout_node, segments=n_segments,
                total_rate_bps=self.schedule.total_rate_bps,
            )

    # -- carrier side ------------------------------------------------------
    def _channel(self, ch: BroadcastChannel):
        """Emit one channel's carrier packets until the horizon."""
        sim = self.sim
        interval = CARRIER_PACKET_BYTES * 8.0 / ch.rate_bps
        while sim.now < self.horizon_s:
            if not self.ms.failed:
                pkt = Packet(
                    src=self.ms.node_id,
                    dst=self.fanout_node,
                    size_bytes=CARRIER_PACKET_BYTES,
                    protocol="BCAST",
                    flow_id=f"bcast:{self.object_path}:{ch.segment}",
                    dst_port=self._sink_port,
                )
                self.carrier_bytes += CARRIER_PACKET_BYTES
                if sim._tracing_detail:
                    sim._tracer.emit(
                        sim.now, "bcast.carrier", self.object_path,
                        node=self.ms.node_id, segment=ch.segment,
                        bytes=CARRIER_PACKET_BYTES,
                    )
                self.network.send(pkt)
            yield sim.timeout(interval)

    def _on_carrier(self, pkt: Packet) -> None:
        # Segments accumulate in the POP's buffer; nothing to do in
        # the model beyond receiving them (the join path synthesizes
        # the buffered copy from the same seeded trace).
        return

    # -- viewer side -------------------------------------------------------
    def wait_s(self, at: float | None = None) -> float:
        """Startup wait for a viewer tuning in at ``at`` (default now)."""
        now = self.sim.now if at is None else at
        slot = self.schedule.slot_s
        into = now % slot
        return 0.0 if into == 0.0 else slot - into

    def join(
        self,
        session_id: str,
        stream_id: str,
        client_node: str,
        client_port: int,
        ssrc: int = 0,
    ):
        """Serve one viewer from the fan-out point's buffered copy.

        Returns the finished event of the viewer's delivery process.
        The viewer's frames come from the POP (not the origin): origin
        egress stays the schedule's constant carrier rate.
        """
        sim = self.sim
        codec = self.ms.store.codec_for(self.object_path)
        source = self.ms.store.frame_source(self.object_path)
        source.stream_id = stream_id
        sender = RtpSender(
            self.network, self.fanout_node, next(_bcast_ports),
            client_node, client_port,
            ssrc=ssrc, payload_type=codec.payload_type,
            clock_rate=codec.clock_rate, stream_id=stream_id,
            session=session_id,
        )
        wait = self.wait_s()
        self.viewers_served += 1
        if sim._tracing:
            sim._tracer.emit(
                sim.now, "bcast.join", stream_id, session=session_id,
                node=self.fanout_node, wait_s=wait,
            )
        finished = sim.event()

        def deliver():
            if wait > 0:
                yield sim.timeout(wait)
            while source.media_time_s < self.schedule.duration_s - 1e-9:
                interval = source.frame_interval_s
                frame = source.next_frame()
                if frame is not None:
                    sender.send_frame(frame)
                yield sim.timeout(interval)
            sender.close()
            finished.succeed(source.media_time_s)

        sim.process(deliver(), name=f"bcast-viewer:{session_id}:{stream_id}")
        return finished

    def stop(self) -> None:
        if self.sim._tracing:
            self.sim._tracer.emit(
                self.sim.now, "bcast.stop", self.object_path,
                node=self.ms.node_id, viewers=self.viewers_served,
                carrier_bytes=self.carrier_bytes,
            )
        for proc in self._channel_procs:
            if proc.is_alive:
                proc.interrupt("broadcast stopped")
        self.network.node(self.fanout_node).unbind(self._sink_port)


class HotSet:
    """Demand counter choosing the top-k broadcast documents."""

    def __init__(self) -> None:
        self._demand: dict[str, int] = {}

    def record(self, name: str) -> None:
        self._demand[name] = self._demand.get(name, 0) + 1

    def demand(self, name: str) -> int:
        return self._demand.get(name, 0)

    def top(self, k: int) -> list[str]:
        """The k most-requested documents (ties broken by name)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        ranked = sorted(self._demand.items(), key=lambda kv: (-kv[1], kv[0]))
        return [name for name, _count in ranked[:k]]
