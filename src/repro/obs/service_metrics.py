"""Service-level telemetry: the operator's view of one run.

Per-session traces and QoE (PRs 2-3) answer "how did this viewer
do?"; a service operator instead watches the fleet: how many streams
each media server carries, how much egress leaves the origin versus
the edges, how often admission turns viewers away, and how fast
failures recover. A :class:`ServiceMonitor` samples those series on
the *simulated* clock (so runs stay deterministic) and rolls them up
into a :class:`ServiceReport`.

The report's :meth:`ServiceReport.merge` is associative and
commutative — counters and byte totals add, peaks take the max,
histograms merge bucket-wise — which is the shard-merge contract a
future sharded population runner needs: run N shards anywhere, merge
their reports in any order, get the same fleet rollup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import Histogram, log_buckets

__all__ = ["ServerLoad", "ServiceReport", "ServiceMonitor",
           "SERVICE_SCHEMA", "SERVICE_SCHEMA_VERSION", "RECOVERY_BOUNDS"]

SERVICE_SCHEMA = "repro.service"
SERVICE_SCHEMA_VERSION = 1

#: shared bucket bounds for detection/recovery latency histograms —
#: a module constant so every shard buckets identically and merge()
#: never has to reconcile misaligned histograms
RECOVERY_BOUNDS = log_buckets(1e-3, 100.0, per_decade=9)


@dataclass(slots=True)
class ServerLoad:
    """Sampled concurrent-stream load of one media server."""

    region: str = "origin"
    samples: int = 0
    sum_streams: int = 0
    peak_streams: int = 0

    def observe(self, n_streams: int) -> None:
        self.samples += 1
        self.sum_streams += n_streams
        if n_streams > self.peak_streams:
            self.peak_streams = n_streams

    @property
    def mean_streams(self) -> float:
        return self.sum_streams / self.samples if self.samples else 0.0

    def merge(self, other: "ServerLoad") -> "ServerLoad":
        if self.region != other.region:
            raise ValueError(
                f"cannot merge loads across regions "
                f"({self.region!r} != {other.region!r})"
            )
        return ServerLoad(
            region=self.region,
            samples=self.samples + other.samples,
            sum_streams=self.sum_streams + other.sum_streams,
            peak_streams=max(self.peak_streams, other.peak_streams),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "region": self.region,
            "samples": self.samples,
            "sum_streams": self.sum_streams,
            "peak_streams": self.peak_streams,
            "mean_streams": self.mean_streams,
        }


def _merge_admission(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Sum two per-server admission stat dicts."""
    out: dict[str, Any] = {
        "requests": a["requests"] + b["requests"],
        "admitted": a["admitted"] + b["admitted"],
        "rejected": a["rejected"] + b["rejected"],
        "by_contract": {},
    }
    contracts = sorted(set(a["by_contract"]) | set(b["by_contract"]))
    for contract in contracts:
        adm_a, rej_a = a["by_contract"].get(contract, (0, 0))
        adm_b, rej_b = b["by_contract"].get(contract, (0, 0))
        out["by_contract"][contract] = [adm_a + adm_b, rej_a + rej_b]
    return out


def _hist_dict(hist: Histogram) -> dict[str, Any]:
    """Summary plus raw bucket counts (lossless for ``from_dict``)."""
    out: dict[str, Any] = dict(hist.summary())
    out["buckets"] = list(hist.bucket_counts)
    return out


def _hist_from_dict(doc: dict[str, Any]) -> Histogram:
    hist = Histogram(bounds=RECOVERY_BOUNDS)
    if not doc or not doc.get("count"):
        return hist
    buckets = list(doc.get("buckets", ()))
    if len(buckets) == len(RECOVERY_BOUNDS):
        hist.bucket_counts = [int(n) for n in buckets]
    hist.count = int(doc["count"])
    hist.total = float(doc["sum"])
    hist.min = float(doc["min"])
    hist.max = float(doc["max"])
    return hist


@dataclass(slots=True)
class ServiceReport:
    """Fleet-level rollup of one run (or a merge of shard runs)."""

    interval_s: float = 0.25
    duration_s: float = 0.0
    samples: int = 0
    #: media-server name -> sampled concurrent-stream load
    servers: dict[str, ServerLoad] = field(default_factory=dict)
    #: serving host -> {"bytes": egress bytes, "region": origin/edge}
    egress_by_host: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: multimedia-server name -> admission stats dict
    admission_by_server: dict[str, dict[str, Any]] = field(
        default_factory=dict)
    #: fault-recovery counters (zero on clean runs)
    detections: int = 0
    streams_failed_over: int = 0
    streams_lost: int = 0
    sessions_saved: int = 0
    detect_hist: Histogram = field(
        default_factory=lambda: Histogram(bounds=RECOVERY_BOUNDS))
    recover_hist: Histogram = field(
        default_factory=lambda: Histogram(bounds=RECOVERY_BOUNDS))

    # -- merging ------------------------------------------------------------
    def merge(self, other: "ServiceReport") -> "ServiceReport":
        """Combine two reports; associative and commutative.

        Counters, byte totals and sampled sums add; peaks and the
        run duration take the max (shards run in parallel wall
        time); histograms merge bucket-wise. Server/host/admission
        keys union, merging entries present on both sides.
        """
        merged = ServiceReport(
            interval_s=min(self.interval_s, other.interval_s),
            duration_s=max(self.duration_s, other.duration_s),
            samples=self.samples + other.samples,
            detections=self.detections + other.detections,
            streams_failed_over=(self.streams_failed_over
                                 + other.streams_failed_over),
            streams_lost=self.streams_lost + other.streams_lost,
            sessions_saved=self.sessions_saved + other.sessions_saved,
            detect_hist=self.detect_hist.merge(other.detect_hist),
            recover_hist=self.recover_hist.merge(other.recover_hist),
        )
        for name in sorted(set(self.servers) | set(other.servers)):
            a, b = self.servers.get(name), other.servers.get(name)
            merged.servers[name] = (a.merge(b) if a and b
                                    else (a or b))  # type: ignore[assignment]
        for host in sorted(set(self.egress_by_host)
                           | set(other.egress_by_host)):
            a_e = self.egress_by_host.get(host)
            b_e = other.egress_by_host.get(host)
            if a_e and b_e:
                if a_e["region"] != b_e["region"]:
                    raise ValueError(
                        f"host {host!r} changed region across shards"
                    )
                merged.egress_by_host[host] = {
                    "bytes": a_e["bytes"] + b_e["bytes"],
                    "region": a_e["region"],
                }
            else:
                src = a_e or b_e
                assert src is not None
                merged.egress_by_host[host] = dict(src)
        for name in sorted(set(self.admission_by_server)
                           | set(other.admission_by_server)):
            a_s = self.admission_by_server.get(name)
            b_s = other.admission_by_server.get(name)
            if a_s and b_s:
                merged.admission_by_server[name] = _merge_admission(a_s, b_s)
            else:
                src_s = a_s or b_s
                assert src_s is not None
                merged.admission_by_server[name] = {
                    "requests": src_s["requests"],
                    "admitted": src_s["admitted"],
                    "rejected": src_s["rejected"],
                    "by_contract": {c: list(v) for c, v
                                    in src_s["by_contract"].items()},
                }
        return merged

    # -- derived views ------------------------------------------------------
    def regions(self) -> dict[str, ServerLoad]:
        """Per-region load rollup of :attr:`servers`."""
        out: dict[str, ServerLoad] = {}
        for name in sorted(self.servers):
            load = self.servers[name]
            region = out.setdefault(load.region,
                                    ServerLoad(region=load.region))
            region.samples += load.samples
            region.sum_streams += load.sum_streams
            region.peak_streams = max(region.peak_streams,
                                      load.peak_streams)
        return out

    def egress_totals(self) -> dict[str, Any]:
        origin = edge = 0
        for host in sorted(self.egress_by_host):
            entry = self.egress_by_host[host]
            if entry["region"] == "origin":
                origin += int(entry["bytes"])
            else:
                edge += int(entry["bytes"])
        bps = (origin * 8.0 / self.duration_s) if self.duration_s else 0.0
        return {
            "origin_bytes": origin,
            "edge_bytes": edge,
            "total_bytes": origin + edge,
            "origin_egress_bps": bps,
            "by_host": {h: dict(self.egress_by_host[h])
                        for h in sorted(self.egress_by_host)},
        }

    def admission_totals(self) -> dict[str, Any]:
        requests = admitted = rejected = 0
        by_server: dict[str, Any] = {}
        for name in sorted(self.admission_by_server):
            stats = self.admission_by_server[name]
            requests += stats["requests"]
            admitted += stats["admitted"]
            rejected += stats["rejected"]
            by_server[name] = {
                "requests": stats["requests"],
                "admitted": stats["admitted"],
                "rejected": stats["rejected"],
                "by_contract": {c: list(stats["by_contract"][c])
                                for c in sorted(stats["by_contract"])},
            }
        return {
            "requests": requests,
            "admitted": admitted,
            "rejected": rejected,
            "blocking_prob": rejected / requests if requests else 0.0,
            "by_server": by_server,
        }

    def recovery_totals(self) -> dict[str, Any]:
        return {
            "detections": self.detections,
            "streams_failed_over": self.streams_failed_over,
            "streams_lost": self.streams_lost,
            "sessions_saved": self.sessions_saved,
            "time_to_detect_s": _hist_dict(self.detect_hist),
            "time_to_recover_s": _hist_dict(self.recover_hist),
        }

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON form (stable key order at every level)."""
        return {
            "schema": SERVICE_SCHEMA,
            "version": SERVICE_SCHEMA_VERSION,
            "interval_s": self.interval_s,
            "duration_s": self.duration_s,
            "samples": self.samples,
            "servers": {name: self.servers[name].to_dict()
                        for name in sorted(self.servers)},
            "regions": {region: load.to_dict()
                        for region, load in self.regions().items()},
            "egress": self.egress_totals(),
            "admission": self.admission_totals(),
            "recovery": self.recovery_totals(),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ServiceReport":
        """Rebuild a report from :meth:`to_dict` output (lossless)."""
        if doc.get("schema") != SERVICE_SCHEMA:
            raise ValueError(
                f"not a {SERVICE_SCHEMA} document: {doc.get('schema')!r}"
            )
        report = cls(
            interval_s=float(doc.get("interval_s", 0.25)),
            duration_s=float(doc.get("duration_s", 0.0)),
            samples=int(doc.get("samples", 0)),
        )
        for name, entry in doc.get("servers", {}).items():
            report.servers[name] = ServerLoad(
                region=entry["region"],
                samples=int(entry["samples"]),
                sum_streams=int(entry["sum_streams"]),
                peak_streams=int(entry["peak_streams"]),
            )
        egress = doc.get("egress", {})
        for host, entry in egress.get("by_host", {}).items():
            report.egress_by_host[host] = {
                "bytes": int(entry["bytes"]), "region": entry["region"],
            }
        admission = doc.get("admission", {})
        for name, stats in admission.get("by_server", {}).items():
            report.admission_by_server[name] = {
                "requests": int(stats["requests"]),
                "admitted": int(stats["admitted"]),
                "rejected": int(stats["rejected"]),
                "by_contract": {c: list(v) for c, v
                                in stats.get("by_contract", {}).items()},
            }
        recovery = doc.get("recovery", {})
        report.detections = int(recovery.get("detections", 0))
        report.streams_failed_over = int(
            recovery.get("streams_failed_over", 0))
        report.streams_lost = int(recovery.get("streams_lost", 0))
        report.sessions_saved = int(recovery.get("sessions_saved", 0))
        report.detect_hist = _hist_from_dict(
            recovery.get("time_to_detect_s", {}))
        report.recover_hist = _hist_from_dict(
            recovery.get("time_to_recover_s", {}))
        return report


class ServiceMonitor:
    """Samples fleet state on the DES clock and builds ServiceReports.

    Attach one per engine via ``engine.attach_service_monitor()``; the
    sampler is an ordinary simulation process ticking every
    ``interval_s`` of *simulated* time, so sampled series are exactly
    reproducible across runs (and add a handful of kernel events, not
    wall-clock jitter). ``report()`` may be called at any instant —
    egress, admission and recovery state are read live; only the
    concurrent-stream series needs the ticks.
    """

    def __init__(self, engine: Any, interval_s: float = 0.25) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.engine = engine
        self.sim = engine.sim
        self.interval_s = interval_s
        self.samples = 0
        self._loads: dict[str, ServerLoad] = {}
        self._started = False

    # -- sampling -----------------------------------------------------------
    def start(self) -> None:
        """Spawn the sampler process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._sampler(), name="service-monitor")

    def _sampler(self) -> Iterator[Any]:
        while True:
            yield self.sim.timeout(self.interval_s)
            self.sample()

    def sample(self) -> None:
        """Take one concurrent-stream sample across the fleet."""
        self.samples += 1
        for server in self.engine.servers.values():
            for ms in server.all_media_servers():
                load = self._loads.get(ms.name)
                if load is None:
                    load = self._loads[ms.name] = ServerLoad(
                        region=ms.region or "origin")
                load.observe(len(ms.streams))

    # -- live state readers -------------------------------------------------
    def _serving_hosts(self) -> dict[str, str]:
        """node id -> region label for every serving media host."""
        hosts: dict[str, str] = {}
        for server in self.engine.servers.values():
            for ms in server.all_media_servers():
                hosts[ms.node_id] = ms.region or "origin"
        return hosts

    def _egress_by_host(self) -> dict[str, dict[str, Any]]:
        hosts = self._serving_hosts()
        out: dict[str, dict[str, Any]] = {
            host: {"bytes": 0, "region": region}
            for host, region in sorted(hosts.items())
        }
        for (src, _dst), link in self.engine.network.links.items():
            if src in out:
                out[src]["bytes"] += link.stats.tx_bytes
        return out

    def _admission_by_server(self) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self.engine.servers):
            stats = self.engine.servers[name].admission.stats
            out[name] = {
                "requests": stats.requests,
                "admitted": stats.admitted,
                "rejected": stats.rejected,
                "by_contract": {c: list(stats.by_contract[c])
                                for c in sorted(stats.by_contract)},
            }
        return out

    def report(self) -> ServiceReport:
        """The fleet rollup as of the current simulated instant."""
        report = ServiceReport(
            interval_s=self.interval_s,
            duration_s=self.sim.now,
            samples=self.samples,
            egress_by_host=self._egress_by_host(),
            admission_by_server=self._admission_by_server(),
        )
        for name in sorted(self._loads):
            load = self._loads[name]
            report.servers[name] = ServerLoad(
                region=load.region, samples=load.samples,
                sum_streams=load.sum_streams,
                peak_streams=load.peak_streams,
            )
        for watchdog in self.engine.watchdogs.values():
            report.detections += watchdog.detections
            report.streams_failed_over += watchdog.streams_failed_over
            report.streams_lost += watchdog.streams_lost
            report.sessions_saved += len(watchdog.sessions_saved)
            for t in watchdog.detect_times:
                report.detect_hist.observe(t)
            for t in watchdog.recover_times:
                report.recover_hist.observe(t)
        return report
