"""Unit tests for RTP packetization, reception, jitter and RTCP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import RngRegistry, Simulator
from repro.media import FrameKind
from repro.media.types import Frame
from repro.net import GilbertElliottLoss, Network
from repro.rtp import (
    InterarrivalJitterEstimator,
    RtcpReporter,
    RtcpSink,
    RtpPacket,
    RtpReceiver,
    RtpSender,
)

CLOCK = 90_000


def build(loss_model=None, rate=4_000_000, delay=0.01):
    sim = Simulator()
    net = Network(sim)
    net.add_node("srv")
    net.add_node("cli")
    net.add_link("srv", "cli", rate, delay, loss_model=loss_model)
    net.add_link("cli", "srv", rate, delay)
    return sim, net


def frame(seq, size=1000, ticks=3600):
    return Frame("v", seq=seq, media_time=seq * ticks, duration=ticks,
                 size_bytes=size, kind=FrameKind.P)


def endpoints(net, on_frame=None):
    rx = RtpReceiver(net, "cli", 5004, CLOCK, "v", on_frame=on_frame)
    tx = RtpSender(net, "srv", 5005, "cli", 5004, ssrc=1, payload_type=32,
                   clock_rate=CLOCK, stream_id="v")
    return tx, rx


# ------------------------------------------------------------------ basic
def test_small_frame_single_packet_roundtrip():
    sim, net = build()
    got = []
    tx, rx = endpoints(net, on_frame=lambda f, t: got.append((f.seq, t)))
    assert tx.send_frame(frame(0, size=500)) == 1
    sim.run()
    assert len(got) == 1
    assert rx.stats.frames_received == 1
    assert rx.stats.packets_received == 1


def test_large_frame_fragmented_and_reassembled():
    sim, net = build()
    got = []
    tx, rx = endpoints(net, on_frame=lambda f, t: got.append(f))
    n = tx.send_frame(frame(0, size=10_000))
    assert n == 8  # ceil(10000/1400)
    sim.run()
    assert len(got) == 1
    assert got[0].size_bytes == 10_000
    assert rx.stats.packets_received == 8
    assert rx.stats.frames_received == 1


def test_sequence_numbers_increment_across_frames():
    sim, net = build()
    tx, rx = endpoints(net)
    tx.send_frame(frame(0, size=3000))
    tx.send_frame(frame(1, size=3000))
    sim.run()
    assert tx.packet_count == 6
    assert rx.stats.expected == 6
    assert rx.stats.cumulative_lost == 0


def test_loss_detected_from_sequence_numbers():
    rng = RngRegistry(seed=8).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.3, p_bg=0.3, loss_bad=0.6)
    sim, net = build(loss_model=ge)
    tx, rx = endpoints(net)

    def sender():
        for i in range(300):
            tx.send_frame(frame(i, size=1000))
            yield sim.timeout(0.04)

    sim.process(sender())
    sim.run()
    assert rx.stats.cumulative_lost > 0
    # Expected-vs-received accounting is self-consistent (head/tail
    # losses outside [base_seq, highest_seq] are invisible per the RFC).
    assert rx.stats.expected == rx.stats.packets_received + rx.stats.cumulative_lost
    assert rx.stats.packets_received + rx.stats.cumulative_lost <= 300


def test_incomplete_fragmented_frame_counted_dropped():
    rng = RngRegistry(seed=8).stream("ge2")
    ge = GilbertElliottLoss(rng, p_gb=0.4, p_bg=0.2, loss_bad=0.8)
    sim, net = build(loss_model=ge)
    got = []
    tx, rx = endpoints(net, on_frame=lambda f, t: got.append(f.seq))

    def sender():
        for i in range(200):
            tx.send_frame(frame(i, size=5000))  # 4 fragments each
            yield sim.timeout(0.04)

    sim.process(sender())
    sim.run()
    assert rx.stats.frames_dropped_fragments > 0
    assert rx.stats.frames_received == len(got)
    assert rx.stats.frames_received + rx.stats.frames_dropped_fragments <= 200


def test_delay_measurement():
    sim, net = build(rate=8_000_000, delay=0.025)
    tx, rx = endpoints(net)
    tx.send_frame(frame(0, size=1000))
    sim.run()
    # serialization (1012 B at 8 Mb/s ~ 1 ms) + 25 ms propagation
    assert rx.stats.mean_delay_s == pytest.approx(0.026, abs=0.001)


def test_seq_wraps_at_16_bits():
    sim, net = build()
    tx, rx = endpoints(net)
    tx._seq = 65_534

    def sender():
        for i in range(4):
            tx.send_frame(frame(i, size=500))
            yield sim.timeout(0.01)

    sim.process(sender())
    sim.run()
    assert rx.stats.packets_received == 4
    assert rx.stats.cumulative_lost == 0
    assert rx.stats.expected == 4


# ------------------------------------------------------------------ jitter
def test_jitter_zero_for_perfectly_paced_stream():
    est = InterarrivalJitterEstimator(CLOCK)
    for i in range(50):
        est.observe(arrival_s=i * 0.04, rtp_timestamp=i * 3600)
    assert est.jitter_s == pytest.approx(0.0, abs=1e-12)


def test_jitter_positive_for_variable_arrivals():
    est = InterarrivalJitterEstimator(CLOCK)
    import numpy as np

    rng = np.random.default_rng(1)
    for i in range(500):
        est.observe(i * 0.04 + rng.uniform(0, 0.01), i * 3600)
    assert est.jitter_s > 0.001


def test_jitter_converges_toward_mean_abs_transit_delta():
    est = InterarrivalJitterEstimator(CLOCK)
    # Alternating +5ms/-5ms transit: |D| alternates 10ms after first.
    for i in range(2000):
        jitter_off = 0.005 if i % 2 == 0 else 0.0
        est.observe(i * 0.04 + jitter_off, i * 3600)
    # |D| = 5 ms for every packet after the first, so J -> 5 ms.
    assert est.jitter_s == pytest.approx(0.005, rel=0.05)


def test_jitter_reset():
    est = InterarrivalJitterEstimator(CLOCK)
    est.observe(0.0, 0)
    est.observe(0.05, 3600)
    assert est.samples == 1
    est.reset()
    assert est.jitter_s == 0.0 and est.samples == 0


def test_jitter_validation():
    with pytest.raises(ValueError):
        InterarrivalJitterEstimator(0)


# ------------------------------------------------------------------ RTCP
def test_rtcp_reports_flow_back_to_sink():
    sim, net = build()
    tx, rx = endpoints(net)
    sink = RtcpSink(net, "srv", 5006)
    RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1, interval_s=0.5)

    def sender():
        for i in range(100):
            tx.send_frame(frame(i, size=1000))
            yield sim.timeout(0.04)

    sim.process(sender())
    sim.run(until=4.2)
    assert len(sink.reports_received) == 8
    last = sink.reports_received[-1]
    assert last.stream_id == "v"
    assert last.fraction_lost == 0.0
    assert last.mean_delay_s > 0.0


def test_rtcp_fraction_lost_under_loss():
    rng = RngRegistry(seed=12).stream("ge")
    ge = GilbertElliottLoss(rng, p_gb=0.3, p_bg=0.3, loss_bad=0.5)
    sim, net = build(loss_model=ge)
    tx, rx = endpoints(net)
    sink = RtcpSink(net, "srv", 5006)
    RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1, interval_s=1.0)

    def sender():
        for i in range(250):
            tx.send_frame(frame(i, size=1000))
            yield sim.timeout(0.04)

    sim.process(sender())
    sim.run(until=11.0)
    fractions = [r.fraction_lost for r in sink.reports_received]
    assert any(f > 0 for f in fractions)
    assert all(0.0 <= f <= 1.0 for f in fractions)


def test_rtcp_reporter_stop():
    sim, net = build()
    tx, rx = endpoints(net)
    RtcpSink(net, "srv", 5006)
    rep = RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1, interval_s=0.5)
    sim.run(until=1.2)
    rep.stop()
    count = rep.reports_sent
    sim.run(until=5.0)
    assert rep.reports_sent == count


def test_rtcp_uses_rtcp_protocol_label():
    sim, net = build()
    tx, rx = endpoints(net)
    RtcpSink(net, "srv", 5006)
    RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1, interval_s=0.5)
    tx.send_frame(frame(0))
    sim.run(until=1.1)
    assert "RTCP" in net.tap.bytes_by_protocol
    assert "RTP" in net.tap.bytes_by_protocol


def test_rtcp_interval_validation():
    sim, net = build()
    tx, rx = endpoints(net)
    with pytest.raises(ValueError):
        RtcpReporter(net, rx, "cli", 5007, "srv", 5006, ssrc=1, interval_s=0)


# ------------------------------------------------------------------ packets
def test_rtp_packet_validation():
    with pytest.raises(ValueError):
        RtpPacket(ssrc=1, payload_type=32, seq=-1, timestamp=0, marker=True,
                  payload_bytes=10)
    with pytest.raises(ValueError):
        RtpPacket(ssrc=1, payload_type=32, seq=0, timestamp=0, marker=True,
                  payload_bytes=0)
    with pytest.raises(ValueError):
        RtpPacket(ssrc=1, payload_type=32, seq=0, timestamp=0, marker=True,
                  payload_bytes=10, fragment_index=2, fragment_count=2)
    p = RtpPacket(ssrc=1, payload_type=32, seq=0, timestamp=0, marker=True,
                  payload_bytes=100)
    assert p.size_bytes == 112


# ------------------------------------------------------------------ property
@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=20_000),
                      min_size=1, max_size=30))
def test_property_lossless_path_delivers_every_frame(sizes):
    sim, net = build(rate=100e6, delay=0.001)
    got = []
    tx, rx = endpoints(net, on_frame=lambda f, t: got.append(f.size_bytes))

    def sender():
        for i, s in enumerate(sizes):
            tx.send_frame(frame(i, size=s))
            yield sim.timeout(0.005)

    sim.process(sender())
    sim.run()
    assert got == sizes
    assert rx.stats.cumulative_lost == 0
