"""Unit tests for playout-schedule extraction (the E_i structures)."""

from repro.hml import DocumentBuilder
from repro.hml.examples import Figure2Times, figure2_document
from repro.media import MediaType
from repro.model import (
    PlayoutEntry,
    ascii_timeline,
    build_playout_schedule,
    scenario_duration,
)


def test_figure2_schedule_matches_paper_timeline():
    t = Figure2Times()
    entries = build_playout_schedule(figure2_document(t))
    by_id = {e.stream_id: e for e in entries}
    assert set(by_id) == {"I1", "I2", "A1", "V", "A2"}
    assert by_id["I1"].start_time == 0.0
    assert by_id["I1"].duration == t.d_i1
    assert by_id["I2"].start_time == t.t_i2
    assert by_id["I2"].duration == t.d_i2
    # A1 and V are synchronized: same start, same duration, one group.
    assert by_id["A1"].start_time == by_id["V"].start_time == t.t_a1
    assert by_id["A1"].duration == by_id["V"].duration == t.d_v
    assert by_id["A1"].sync_group == by_id["V"].sync_group
    assert by_id["A1"].is_sync_master and not by_id["V"].is_sync_master
    assert by_id["A2"].start_time == t.t_a2


def test_schedule_sorted_by_start_time():
    entries = build_playout_schedule(figure2_document())
    starts = [e.start_time for e in entries]
    assert starts == sorted(starts)


def test_media_types_assigned():
    entries = build_playout_schedule(figure2_document())
    types = {e.stream_id: e.media_type for e in entries}
    assert types["I1"] is MediaType.IMAGE
    assert types["A1"] is MediaType.AUDIO
    assert types["V"] is MediaType.VIDEO


def test_scenario_duration_figure2():
    t = Figure2Times()
    entries = build_playout_schedule(figure2_document(t))
    assert scenario_duration(entries) == max(t.t_i2 + t.d_i2, t.t_a2 + t.d_a2)


def test_scenario_duration_open_ended_is_none():
    doc = DocumentBuilder("t").audio("s", "A").build()
    assert scenario_duration(build_playout_schedule(doc)) is None
    assert scenario_duration([]) == 0.0


def test_buffer_key_binding():
    doc = DocumentBuilder("t").audio("s", "A1", duration=1.0).build()
    entry = build_playout_schedule(doc)[0]
    assert entry.buffer_key == "buf:A1"


def test_overlaps_semantics():
    a = PlayoutEntry("a", MediaType.AUDIO, "s", 0.0, 5.0)
    b = PlayoutEntry("b", MediaType.VIDEO, "s", 4.0, 5.0)
    c = PlayoutEntry("c", MediaType.AUDIO, "s", 5.0, 5.0)
    open_ended = PlayoutEntry("o", MediaType.AUDIO, "s", 3.0, None)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)  # touching intervals do not overlap
    assert a.overlaps(open_ended) and open_ended.overlaps(a)
    early = PlayoutEntry("e", MediaType.AUDIO, "s", 0.0, 2.0)
    assert not early.overlaps(PlayoutEntry("x", MediaType.AUDIO, "s", 2.0, None))


def test_ascii_timeline_shape():
    entries = build_playout_schedule(figure2_document())
    art = ascii_timeline(entries, width=50)
    lines = art.splitlines()
    assert len(lines) == 6  # 5 streams + scale
    assert lines[0].lstrip().startswith("A1") or "I1" in art
    assert "[sync]" in art
    assert "=" in art
    assert ascii_timeline([]) == "(empty scenario)"


def test_ascii_timeline_open_ended_arrow():
    doc = DocumentBuilder("t").audio("s", "A").build()
    art = ascii_timeline(build_playout_schedule(doc))
    assert ">" in art
