"""AST-based determinism / DES-discipline linter for ``src/repro``.

The simulation's guarantees — byte-identical fault digests, seeded
per-component RNG streams, single-boolean-guarded tracing — were
enforced by convention until this module. Each rule encodes one
discipline as a static check:

``det-wall-clock``
    No wall-clock reads (``time.time``, ``time.perf_counter``,
    ``datetime.now`` ...) in simulation code: simulated time comes
    from the DES kernel clock. The bench harness measures real wall
    time on purpose and carries a line pragma.

``det-global-random``
    No ``import random`` / ``random.*`` and no legacy global numpy
    RNG (``np.random.seed`` / ``np.random.randint`` / unseeded
    ``np.random.default_rng()``): every draw must come from a named
    :class:`~repro.des.rng.RngRegistry` stream.

``det-unordered-iter``
    No iteration over set literals / ``set()`` / ``frozenset()``
    expressions (``for``, comprehensions, ``list()``/``tuple()``
    materialization): string-hash randomization makes the order vary
    per process, which perturbs event scheduling and digest hashing.
    Wrap in ``sorted(...)``.

``det-tracer-guard``
    Every ``*.emit`` / ``*.span_begin`` / ``*.span_end`` call on a
    tracer must sit under the enabled-guard boolean (``if
    self.sim._tracing:`` / ``if tracer.enabled:``) so disabled tracing
    costs one attribute check and no argument construction.

``det-port-pairing``
    A module that allocates ports from a :class:`PortAllocator` must
    also release them somewhere — unpaired allocate/release leaks
    ports on long-lived hosts (warning: some allocations are
    intentionally session-lifetime and documented with a pragma).

Suppression pragmas (comment anywhere on the flagged statement's
lines)::

    ... # lint: allow(det-wall-clock)          one statement
    # lint: allow-file(det-wall-clock)         whole file
"""

from __future__ import annotations

from collections.abc import Iterator

import ast
import io
import os
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import (
    Diagnostic,
    RuleRegistry,
    Severity,
    SourceSpan,
)

__all__ = ["PY_RULES", "PyModule", "lint_source", "lint_file", "lint_paths",
           "stale_pragma_diags"]

PY_RULES = RuleRegistry("determinism")

_ALLOW_PREFIX = "lint: allow("
_ALLOW_FILE_PREFIX = "lint: allow-file("


def _parse_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract suppression pragmas: (line -> rule ids, file-wide ids)."""
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            for prefix, sink in ((_ALLOW_FILE_PREFIX, None),
                                 (_ALLOW_PREFIX, tok.start[0])):
                if text.startswith(prefix) and text.endswith(")"):
                    ids = {
                        r.strip()
                        for r in text[len(prefix):-1].split(",")
                        if r.strip()
                    }
                    if sink is None:
                        whole_file |= ids
                    else:
                        per_line.setdefault(sink, set()).update(ids)
                    break
    except tokenize.TokenError:
        pass
    return per_line, whole_file


@dataclass(slots=True)
class PyModule:
    """One parsed Python file plus the lookup maps rules need."""

    path: str
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    pragma_lines: dict[int, set[str]] = field(default_factory=dict)
    pragma_file: set[str] = field(default_factory=set)
    #: pragmas that actually suppressed (or would have suppressed) a
    #: finding this run: ``(line, rule_id)`` per-line entries plus
    #: ``(0, rule_id)`` for file-wide pragmas. The stale-pragma pass
    #: reports every parsed pragma that never lands here.
    used_pragmas: set[tuple[int, str]] = field(default_factory=set)

    @classmethod
    def parse(cls, path: str, source: str) -> "PyModule":
        tree = ast.parse(source, filename=path)
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        per_line, whole_file = _parse_pragmas(source)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines(), parents=parents,
                   pragma_lines=per_line, pragma_file=whole_file)

    # -- helpers rules share --------------------------------------------
    def suppressed(self, rule_id: str, node: ast.AST) -> bool:
        if rule_id in self.pragma_file:
            self.used_pragmas.add((0, rule_id))
            return True
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        # A pragma on a decorator line covers the decorated def/class.
        for deco in getattr(node, "decorator_list", ()):
            deco_line = getattr(deco, "lineno", start)
            start = min(start, deco_line)
        hit = False
        for line in range(start, end + 1):
            if rule_id in self.pragma_lines.get(line, ()):
                self.used_pragmas.add((line, rule_id))
                hit = True
        return hit

    def span(self, node: ast.AST) -> SourceSpan:
        line = getattr(node, "lineno", 0)
        snippet = (self.lines[line - 1].strip()
                   if 0 < line <= len(self.lines) else "")
        return SourceSpan(
            file=self.path, line=line,
            column=getattr(node, "col_offset", 0) + 1, snippet=snippet,
        )

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def diag(self, rule_id: str, severity: Severity, message: str,
             node: ast.AST) -> Diagnostic | None:
        if self.suppressed(rule_id, node):
            return None
        return Diagnostic(rule_id, severity, message, span=self.span(node))


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for nested Name/Attribute chains, "" otherwise."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


# ------------------------------------------------------------ wall clock
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
_WALL_CLOCK_FROM = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "time_ns"), ("time", "process_time"),
}


@PY_RULES.rule(
    "det-wall-clock",
    "simulation code must read the DES clock, never the wall clock",
)
def _check_wall_clock(mod: PyModule) -> Iterator[Diagnostic]:
    from_imports: set[str] = set()
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if (node.module, alias.name) in _WALL_CLOCK_FROM:
                    from_imports.add(alias.asname or alias.name)
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        bare = isinstance(node.func, ast.Name) and node.func.id
        if name in _WALL_CLOCK_CALLS or (bare and bare in from_imports):
            d = mod.diag(
                "det-wall-clock", Severity.ERROR,
                f"wall-clock read {name or bare}(): simulation time "
                "must come from the DES kernel clock (sim.now)",
                node,
            )
            if d:
                yield d


# --------------------------------------------------------- global random
#: legacy numpy global-RNG entry points (the np.random.* module API)
_NP_GLOBAL_FNS = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "uniform", "normal",
    "exponential", "poisson", "binomial", "random_integers",
}


@PY_RULES.rule(
    "det-global-random",
    "all randomness must come from named RngRegistry streams",
)
def _check_global_random(mod: PyModule) -> Iterator[Diagnostic]:
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    d = mod.diag(
                        "det-global-random", Severity.ERROR,
                        "import of the global `random` module: draw "
                        "from a named des.rng stream instead", node)
                    if d:
                        yield d
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                d = mod.diag(
                    "det-global-random", Severity.ERROR,
                    "import from the global `random` module: draw "
                    "from a named des.rng stream instead", node)
                if d:
                    yield d
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            parts = name.split(".")
            if (len(parts) == 3 and parts[1] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[2] in _NP_GLOBAL_FNS):
                d = mod.diag(
                    "det-global-random", Severity.ERROR,
                    f"global numpy RNG call {name}(): draw from a "
                    "named des.rng stream instead", node)
                if d:
                    yield d
            elif (name.endswith("random.default_rng")
                    and not node.args and not node.keywords):
                d = mod.diag(
                    "det-global-random", Severity.ERROR,
                    "unseeded default_rng(): seed it from the "
                    "RngRegistry's SeedSequence material", node)
                if d:
                    yield d


# --------------------------------------------------------- unordered iter
def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@PY_RULES.rule(
    "det-unordered-iter",
    "iteration over unordered sets perturbs event order and digests",
)
def _check_unordered_iter(mod: PyModule) -> Iterator[Diagnostic]:
    def flag(node: ast.AST, how: str) -> Diagnostic | None:
        return mod.diag(
            "det-unordered-iter", Severity.ERROR,
            f"{how} over an unordered set expression: hash "
            "randomization makes the order vary per process; wrap it "
            "in sorted(...)", node)

    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                d = flag(node.iter, "for-loop")
                if d:
                    yield d
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    d = flag(comp.iter, "comprehension")
                    if d:
                        yield d
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args and _is_set_expr(node.args[0])):
            d = flag(node, f"{node.func.id}() materialization")
            if d:
                yield d


# ----------------------------------------------------------- tracer guard
_TRACE_METHODS = ("emit", "span_begin", "span_end")
_GUARD_MARKERS = ("_tracing", "tracing", "enabled")


def _is_tracer_receiver(func: ast.Attribute) -> bool:
    """Receiver of ``.emit``/``.span_*`` looks like a tracer handle."""
    recv = func.value
    if isinstance(recv, ast.Attribute):
        return recv.attr in ("_tracer", "tracer")
    if isinstance(recv, ast.Name):
        return recv.id in ("_tracer", "tracer")
    return False


def _guarded(mod: PyModule, node: ast.Call) -> bool:
    for ancestor in mod.ancestors(node):
        test = None
        if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
            test = ancestor.test
        elif isinstance(ancestor, ast.Assert):
            test = ancestor.test
        if test is not None:
            rendered = ast.dump(test)
            if any(marker in rendered for marker in _GUARD_MARKERS):
                return True
        if isinstance(ancestor, ast.BoolOp) and isinstance(
                ancestor.op, ast.And):
            rendered = ast.dump(ancestor.values[0])
            if any(marker in rendered for marker in _GUARD_MARKERS):
                return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a dedicated `_trace_*` helper is itself the guard site:
            # its body must contain the If; reaching the def without
            # one means the call is unguarded.
            break
    return False


@PY_RULES.rule(
    "det-tracer-guard",
    "tracer emits must sit under the enabled-guard boolean",
)
def _check_tracer_guard(mod: PyModule) -> Iterator[Diagnostic]:
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TRACE_METHODS
                and _is_tracer_receiver(node.func)):
            continue
        if _guarded(mod, node):
            continue
        d = mod.diag(
            "det-tracer-guard", Severity.ERROR,
            f"unguarded tracer call .{node.func.attr}(): wrap it in "
            "`if <owner>._tracing:` (or `.enabled`) so disabled "
            "tracing costs one boolean check", node)
        if d:
            yield d


# ------------------------------------------------------------ port pairing
_ALLOC_METHODS = ("allocate", "allocate_block")


def _is_port_receiver(func: ast.Attribute) -> bool:
    """Receiver mentions a port allocator (``*.ports.*``,
    ``*allocator*``) — the *nearest* receiver segment decides, so
    ``node.ports.allocate()`` and ``network.node(x).ports.release()``
    both match while ``self.admission.release()`` does not."""
    recv = func.value
    if isinstance(recv, ast.Attribute):
        nearest = recv.attr.lower()
    elif isinstance(recv, ast.Name):
        nearest = recv.id.lower()
    else:
        nearest = ""
    return "port" in nearest or "alloc" in nearest


@PY_RULES.rule(
    "det-port-pairing",
    "modules that allocate ports must also release them",
    severity=Severity.WARNING,
)
def _check_port_pairing(mod: PyModule) -> Iterator[Diagnostic]:
    allocs: list[ast.Call] = []
    releases = 0
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if (node.func.attr in _ALLOC_METHODS
                and _is_port_receiver(node.func)):
            allocs.append(node)
        elif (node.func.attr == "release"
                and _is_port_receiver(node.func)):
            releases += 1
    if allocs and releases == 0:
        for node in allocs:
            d = mod.diag(
                "det-port-pairing", Severity.WARNING,
                "PortAllocator allocation with no matching .release() "
                "anywhere in this module: long-lived hosts leak ports "
                "across session teardown", node)
            if d:
                yield d


# ----------------------------------------------------------------- entry
def stale_pragma_diags(mod: PyModule,
                       known_rules: set[str]) -> list[Diagnostic]:
    """Pragmas that suppressed nothing in the run just finished.

    Must be called *after* every rule family has run over ``mod`` —
    :attr:`PyModule.used_pragmas` accumulates across families. A
    pragma naming a rule id nobody registers is always stale (typo'd
    or removed rule); a pragma naming a real rule that no longer
    fires marks debt that has been paid — delete it so the
    suppression cannot silently swallow a future regression.
    """
    out: list[Diagnostic] = []
    mentions: list[tuple[int, str]] = [
        (line, rule)
        for line, rules in sorted(mod.pragma_lines.items())
        for rule in sorted(rules)
    ]
    mentions.extend((0, rule) for rule in sorted(mod.pragma_file))
    for line, rule in mentions:
        if (line, rule) in mod.used_pragmas:
            continue
        scope = "file-wide pragma" if line == 0 else "pragma"
        why = ("names unknown rule" if rule not in known_rules
               else "suppresses nothing (the rule no longer fires here)")
        out.append(Diagnostic(
            "lint-stale-pragma", Severity.WARNING,
            f"{scope} allow({rule}) {why}; delete it so the "
            "suppression cannot mask a future regression.",
            span=SourceSpan(file=mod.path, line=line),
        ))
    return out


def lint_source(path: str, source: str) -> list[Diagnostic]:
    """Lint one Python source text (``path`` is for reporting only)."""
    try:
        mod = PyModule.parse(path, source)
    except SyntaxError as exc:
        return [Diagnostic(
            "det-syntax", Severity.ERROR,
            f"cannot parse: {exc.msg}",
            span=SourceSpan(file=path, line=exc.lineno or 0),
        )]
    return PY_RULES.run(mod)


def lint_file(path: str) -> list[Diagnostic]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(path, fh.read())


def lint_paths(paths: list[str]) -> list[Diagnostic]:
    """Lint files and/or directory trees (``*.py`` files, sorted)."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                files.extend(
                    os.path.join(root, n)
                    for n in sorted(names) if n.endswith(".py")
                )
        else:
            files.append(path)
    out: list[Diagnostic] = []
    for path in files:
        out.extend(lint_file(path))
    return out
