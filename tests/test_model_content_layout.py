"""Unit tests for content resolution and layout."""

import pytest

from repro.hml import DocumentBuilder, TextSpan
from repro.hml.examples import figure2_document
from repro.media import MediaType
from repro.model import ContentIndex, LayoutEngine, Region


# ---------------------------------------------------------------- content
def test_content_index_from_figure2():
    idx = ContentIndex.from_document(figure2_document())
    assert len(idx) == 5
    assert idx.ids() == ["A1", "A2", "I1", "I2", "V"]
    assert idx.get("I1").server == "imgsrv"
    assert idx.get("I1").path == "/I1.gif"
    assert idx.get("V").media_type is MediaType.VIDEO
    assert idx.servers() == {"imgsrv", "audsrv", "vidsrv"}
    assert idx.continuous_ids() == ["A1", "A2", "V"]


def test_content_by_server_grouping():
    idx = ContentIndex.from_document(figure2_document())
    groups = idx.by_server()
    assert sorted(groups) == ["audsrv", "imgsrv", "vidsrv"]
    assert [l.element_id for l in groups["audsrv"]] == ["A1", "A2"]


def test_content_sourceless_server_defaults_to_local():
    doc = DocumentBuilder("t").image("local.gif", "I", duration=1.0).build()
    idx = ContentIndex.from_document(doc)
    loc = idx.get("I")
    assert loc.server == ""
    assert loc.path == "local.gif"
    assert loc.source == "local.gif"


def test_content_unknown_id_raises():
    idx = ContentIndex.from_document(figure2_document())
    with pytest.raises(KeyError):
        idx.get("ZZ")
    assert "ZZ" not in idx


# ---------------------------------------------------------------- layout
def test_region_geometry():
    r = Region(10, 20, 100, 50)
    assert r.x2 == 110 and r.y2 == 70
    assert r.overlaps(Region(50, 40, 100, 100))
    assert not r.overlaps(Region(110, 20, 10, 10))  # adjacent, not overlapping
    with pytest.raises(ValueError):
        Region(0, 0, 0, 10)


def test_layout_vertical_flow():
    doc = (
        DocumentBuilder("t")
        .heading(1, "Title")
        .text("hello")
        .image("s:/i.gif", "I1", duration=1.0, width=100, height=50)
        .video("s:/v.mpg", "V1", duration=1.0)
        .build()
    )
    layout = LayoutEngine().layout(doc)
    h = layout.region("heading:0")
    t = layout.region("text:1")
    i = layout.region("I1")
    v = layout.region("V1")
    assert h.y == 0
    assert t.y == h.y2
    assert i.y == t.y2
    assert v.y == i.y2
    assert i.width == 100 and i.height == 50


def test_layout_explicit_where_respected():
    doc = (
        DocumentBuilder("t")
        .image("s:/i.gif", "I1", duration=1.0, where=(400, 300),
               width=50, height=50)
        .build()
    )
    layout = LayoutEngine().layout(doc)
    r = layout.region("I1")
    assert (r.x, r.y) == (400, 300)


def test_layout_audio_has_no_region_av_video_does():
    doc = (
        DocumentBuilder("t")
        .audio("s:/a.au", "A1", duration=1.0)
        .audio_video("s:/a.au", "s:/v.mpg", "A2", "V2", duration=1.0)
        .build()
    )
    layout = LayoutEngine().layout(doc)
    assert "A1" not in layout.regions
    assert "A2" not in layout.regions
    assert "V2" in layout.regions


def test_layout_paragraph_and_separator_advance_cursor():
    doc1 = DocumentBuilder("t").text("a").text("b").build()
    doc2 = DocumentBuilder("t").text("a").paragraph().separator().text("b").build()
    l1 = LayoutEngine().layout(doc1)
    l2 = LayoutEngine().layout(doc2)
    assert l2.region("text:3").y > l1.region("text:1").y


def test_layout_long_text_wraps_lines():
    short = DocumentBuilder("t").text("short").build()
    long = DocumentBuilder("t").text(TextSpan("x" * 500)).build()
    hs = LayoutEngine().layout(short).region("text:0").height
    hl = LayoutEngine().layout(long).region("text:0").height
    assert hl > hs


def test_layout_overflow_detection():
    doc = DocumentBuilder("t").image("s", "I", duration=1.0, where=(790, 590),
                                     width=100, height=100).build()
    layout = LayoutEngine().layout(doc)
    assert layout.overflows_canvas()


def test_layout_engine_validation():
    with pytest.raises(ValueError):
        LayoutEngine(canvas_width=0)
    layout = LayoutEngine().layout(DocumentBuilder("t").build())
    with pytest.raises(KeyError):
        layout.region("missing")
