"""Edge-case sweep across modules (small behaviours not covered by
the per-module suites) and result export."""

import json

import pytest

from repro.core import EngineConfig, ServiceEngine, TrafficConfig
from repro.core.experiments import av_markup
from repro.des import Simulator
from repro.hml import DocumentBuilder, tokenize
from repro.hml.tokens import TokenKind
from repro.net import Network


# ------------------------------------------------------------- kernel
def test_call_later_fires_once_at_delay():
    sim = Simulator()
    fired = []
    sim.call_later(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]


def test_call_later_ordering_with_processes():
    sim = Simulator()
    order = []
    sim.call_later(1.0, lambda: order.append("cb"))

    def proc():
        yield sim.timeout(1.0)
        order.append("proc")

    sim.process(proc())
    sim.run()
    # call_later was scheduled first at the same instant.
    assert order == ["cb", "proc"]


def test_run_until_triggered_event_returns_value():
    sim = Simulator()
    ev = sim.event()
    sim.call_later(1.0, lambda: ev.succeed("val"))
    assert sim.run(until=ev) == "val"


# ------------------------------------------------------------- lexer
def test_lexer_column_positions():
    toks = tokenize("<TITLE> abc </TITLE><PAR>")
    par = [t for t in toks if t.value == "PAR"][0]
    assert par.column > 1
    assert toks[0].column == 1


def test_lexer_eof_token_terminates():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is TokenKind.EOF


# ------------------------------------------------------------- node
def test_node_unbind_then_rebind():
    sim = Simulator()
    net = Network(sim)
    node = net.add_node("n")
    node.bind(1, lambda p: None)
    with pytest.raises(ValueError):
        node.bind(1, lambda p: None)
    node.unbind(1)
    node.bind(1, lambda p: None)  # rebind ok
    node.unbind(99)  # unknown port: no-op


# ------------------------------------------------------------- playout
def test_playout_cancel_before_any_frame():
    from repro.client import MediaBuffer, PlayoutEventLog
    from repro.client.playout import PlayoutProcess
    from repro.media import MediaType
    from repro.model.sync import PlayoutEntry

    sim = Simulator()
    buf = MediaBuffer("v", 90_000, time_window_s=0.4)
    entry = PlayoutEntry("v", MediaType.VIDEO, "s", 0.0, 10.0)
    p = PlayoutProcess(sim, entry, buf, PlayoutEventLog(), 0.04,
                       start_offset_s=5.0)
    p.cancel("user closed")
    sim.run(until=p.finished)
    assert p.finished.value == 0.0
    assert sim.now < 5.0


# ------------------------------------------------------------- store ids
def test_media_store_filtering_by_type():
    from repro.des import RngRegistry
    from repro.media import (
        ContinuousMediaObject, DiscreteMediaObject, MediaStore, MediaType,
        default_registry,
    )

    store = MediaStore(default_registry(), RngRegistry(seed=1))
    store.add(DiscreteMediaObject("t", MediaType.TEXT, "plain", size_bytes=5))
    store.add(ContinuousMediaObject("a", MediaType.AUDIO, "PCM-family",
                                    duration_s=1.0))
    assert store.ids(MediaType.TEXT) == ["t"]
    assert store.ids(MediaType.VIDEO) == []


# ------------------------------------------------------------- export
def test_session_result_to_dict_json_roundtrip():
    cfg = EngineConfig(
        access_rate_bps=2.5e6,
        traffic=[TrafficConfig(kind="poisson", rate_bps=1.2e6,
                               start_at=2.0, stop_at=6.0)],
    )
    eng = ServiceEngine(cfg)
    eng.add_server("srv1", documents={"doc": (av_markup(8.0), "x")})
    result = eng.orchestrator.run_full_session("srv1", "doc")
    d = result.to_dict()
    text = json.dumps(d)  # fully JSON-serializable
    back = json.loads(text)
    assert back["document"] == "doc"
    assert back["completed"] is True
    assert set(back["streams"]) == {"A", "V"}
    assert back["streams"]["V"]["frames_played"] > 0
    assert "sync:A+V" in back["skew"]
    assert isinstance(back["grading"]["decisions"], list)
    assert back["protocol_bytes"]["RTP"] > 0


def test_flow_discrete_fetch_ordering():
    from repro.media import default_registry
    from repro.model import PresentationScenario
    from repro.server import FlowScheduler

    doc = (
        DocumentBuilder("t")
        .image("s:/late.gif", "LATE", startime=10.0, duration=1.0)
        .image("s:/early.gif", "EARLY", startime=0.0, duration=1.0)
        .build()
    )
    flow = FlowScheduler(default_registry()).compute(
        PresentationScenario.from_document(doc)
    )
    ids = [f.stream_id for f in flow.discrete()]
    # Both fetch eagerly; ties broken by name, stable and deterministic.
    assert set(ids) == {"EARLY", "LATE"}
    assert all(f.send_offset_s == 0.0 for f in flow.discrete())
