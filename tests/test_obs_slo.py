"""SLO gates: rule parsing, evaluation semantics, CLI exit codes."""

import json

import pytest

from repro.__main__ import main
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloRule,
    evaluate,
    flatten_metrics,
    parse_rule,
    parse_spec,
)

ARTIFACT = {
    "schema": "repro.bench",
    "name": "population_clean",
    "sessions": 4,
    "completed": 4,
    "delivered": 3,
    "events": 1000,
    "qoe": {"score": {"p50": 88.0, "p95": 95.0}},
    "service": {
        "admission": {"requests": 4, "rejected": 1,
                      "blocking_prob": 0.25},
        "recovery": {"streams_lost": 0,
                     "time_to_recover_s": {"p95": 0.6}},
        "egress": {"origin_bytes": 5_000_000,
                   "origin_egress_bps": 4e6},
    },
}


# -- parsing ------------------------------------------------------------------

def test_parse_rule_forms():
    assert parse_rule("qoe_p50 >= 70") == SloRule("qoe_p50", ">=", 70.0)
    assert parse_rule("blocking_prob<=0.05") == \
        SloRule("blocking_prob", "<=", 0.05)
    assert parse_rule("origin_egress_bps < 4e7").threshold == 4e7
    assert parse_rule("streams_lost == 0").op == "=="
    assert parse_rule("x != 1  # trailing comment").op == "!="


@pytest.mark.parametrize("bad", ["qoe_p50", ">= 70", "qoe_p50 >= banana",
                                 "qoe_p50 ~ 3"])
def test_parse_rule_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_rule(bad)


def test_parse_spec_skips_blanks_and_comments():
    rules = parse_spec(["# full spec", "", "qoe_p50 >= 70",
                        "blocking_prob <= 0.05  # inline"])
    assert [r.metric for r in rules] == ["qoe_p50", "blocking_prob"]


def test_shipped_default_specs_parse():
    for key, spec in DEFAULT_SLOS.items():
        rules = parse_spec(spec)
        assert rules, key


# -- flattening + evaluation --------------------------------------------------

def test_flatten_resolves_aliases_and_ratios():
    flat = flatten_metrics(ARTIFACT)
    assert flat["qoe_p50"] == 88.0
    assert flat["blocking_prob"] == 0.25
    assert flat["time_to_recover_p95"] == 0.6
    assert flat["origin_egress_bps"] == 4e6
    assert flat["completed_ratio"] == 1.0
    assert flat["delivered_ratio"] == 0.75
    assert flat["streams_lost"] == 0


def test_evaluate_pass_fail_and_dotted_fallback():
    rules = parse_spec([
        "qoe_p50 >= 70",             # pass
        "blocking_prob <= 0.05",     # fail (0.25)
        "service.admission.requests == 4",  # dotted path, pass
    ])
    checks = evaluate(rules, ARTIFACT)
    assert [c.ok for c in checks] == [True, False, True]
    assert checks[1].value == 0.25


def test_missing_metric_fails_closed():
    checks = evaluate([parse_rule("no_such_metric <= 1")], ARTIFACT)
    assert checks[0].value is None
    assert not checks[0].ok


# -- CLI ----------------------------------------------------------------------

def _write_artifact(tmp_path):
    path = tmp_path / "BENCH_population_clean.json"
    path.write_text(json.dumps(ARTIFACT))
    return str(path)


def test_cli_exit_zero_on_passing_rules(tmp_path, capsys):
    path = _write_artifact(tmp_path)
    rc = main(["slo", "--artifact", path,
               "--rule", "qoe_p50 >= 70",
               "--rule", "completed_ratio >= 0.95"])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_exit_one_on_violated_spec(tmp_path, capsys):
    path = _write_artifact(tmp_path)
    rc = main(["slo", "--artifact", path,
               "--rule", "blocking_prob <= 0.05"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_default_spec_keyed_by_artifact_name(tmp_path, capsys):
    # population_clean defaults apply; blocking_prob 0.25 violates
    path = _write_artifact(tmp_path)
    rc = main(["slo", "--artifact", path])
    assert rc == 1
    out = capsys.readouterr().out
    assert "spec: population_clean" in out


def test_cli_spec_file(tmp_path, capsys):
    path = _write_artifact(tmp_path)
    spec = tmp_path / "ops.slo"
    spec.write_text("# operator spec\nqoe_p50 >= 70\n"
                    "origin_egress_bps <= 1e7\n")
    rc = main(["slo", "--artifact", path, "--spec-file", str(spec)])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_rejects_ambiguous_sources(tmp_path):
    path = _write_artifact(tmp_path)
    assert main(["slo", "--artifact", path,
                 "--scenario", "population_clean"]) == 2
    assert main(["slo"]) == 2


def test_cli_json_mode(tmp_path, capsys):
    path = _write_artifact(tmp_path)
    rc = main(["slo", "--artifact", path, "--json",
               "--rule", "qoe_p50 >= 70"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["values"]["violations"] == 0
    assert doc["service_report"]["admission"]["blocking_prob"] == 0.25
