"""Full-service composition: topology, servers, and client machinery.

Topology (the simulated "broadband network" of the paper):

    client ── access link ──┐
    client2 ── access link ──┼─ router ── backbone ── server hosts
        ...                  │      └───── cross-traffic sources

Each multimedia server host carries the multimedia server and its
media servers (the paper allows them to share a host); cross traffic
loads the router→client access links, the paths all media share.

The engine owns *construction*: a topology — the classic star via the
:class:`~repro.net.builder.TopologyBuilder` facade, or any declarative
layer stack from :mod:`repro.net.layers` passed as ``layers=`` —
plus servers, documents, per-POP media replicas and (optionally) the
shared-flow delivery machinery. Session *orchestration* — scripted
runs, concurrent viewers, autoplay, multi-client populations — lives
in :class:`~repro.core.orchestrator.SessionOrchestrator`
(``engine.orchestrator``); only the ``run_population`` shorthand
remains here.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.client.presentation import PresentationScheduler, StreamBinding
from repro.client.metrics import PlayoutEventLog
from repro.client.qos_manager import ClientQoSManager
from repro.des import Simulator
from repro.des.rng import RngRegistry
from repro.hml.parser import parse
from repro.media.encodings import CodecRegistry, default_registry
from repro.media.store import MediaStore
from repro.media.types import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    MediaType,
)
from repro.model.scenario import PresentationScenario
from repro.net.builder import AccessLinkSpec, TopologyBuilder
from repro.net.channel import ReliableReceiver
from repro.net.impairments import GilbertElliottLoss
from repro.net.topology import Network
from repro.net.traffic import OnOffTrafficSource, PoissonTrafficSource
from repro.rtp.session import RtpReceiver
from repro.core.config import EngineConfig
from repro.core.results import SessionResult, StreamResult
from repro.server.accounts import AccountRegistry
from repro.server.admission import AdmissionController
from repro.server.database import MultimediaDatabase
from repro.server.media_server import MediaServer
from repro.server.multimedia_server import MultimediaServer
from repro.service.messages import ControlChannel
from repro.service.session import ClientSession, ServerSessionHandler

__all__ = ["ServiceEngine", "ClientComposition"]


class ServiceEngine:
    """Builds the whole system and hands sessions to the orchestrator."""

    CLIENT = "client"
    ROUTER = "router"

    def __init__(self, config: EngineConfig | None = None,
                 tracer=None, layers=None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.sim = Simulator()
        if tracer is not None:
            self.sim.set_tracer(tracer)
        self.rng = RngRegistry(seed=self.config.seed)
        self.codecs: CodecRegistry = default_registry()
        self.network = Network(self.sim)
        self.accounts = AccountRegistry()
        self.servers: dict[str, MultimediaServer] = {}
        #: declarative topology stack (None = the classic star)
        self._layers = layers
        #: per-engine session ids — two engines in one process both
        #: start at sess-1, so runs replay identically.
        self._session_ids = itertools.count(1)
        self._traffic_nodes = 0
        self._population: list[str] = []
        self._orchestrator = None
        #: fault-injection subsystem (None until install_faults)
        self._faults = None
        self._watchdogs: dict[str, Any] = {}
        #: fleet telemetry (None until attach_service_monitor)
        self._service_monitor = None
        #: trajectory telemetry (None until attach_timeseries)
        self._timeseries_sampler = None
        #: live (unclosed) client compositions, for buffer sampling
        self.compositions: list["ClientComposition"] = []
        self._build_backbone()

    # -- topology -----------------------------------------------------------
    def _build_backbone(self) -> None:
        cfg = self.config
        if self._layers is None:
            # The classic star: the legacy builder is a thin
            # single-region stack, so this path compiles to the exact
            # pre-layer topology (byte-identical digests).
            self.topology = TopologyBuilder(
                self.network, router=self.ROUTER,
                backbone_rate_bps=cfg.backbone_rate_bps,
                backbone_delay_s=cfg.backbone_delay_s,
                backbone_queue_packets=cfg.backbone_queue_packets,
            )
        else:
            from repro.net.layers import TopologyCompiler

            self.topology = TopologyCompiler(self._layers).compile(
                self.network,
                access_spec_for=lambda node_id: cfg.access_link_spec(
                    self._access_loss(f"access-loss:{node_id}")
                ),
            )
            # Population-layer viewers join the engine's client pool so
            # orchestrated population runs reuse them in place.
            self._population.extend(self.topology.clients)
        if not self.topology.clients:
            self.topology.add_client(
                self.CLIENT,
                cfg.access_link_spec(self._access_loss("access-loss")),
            )
        for tc in cfg.traffic:
            self._add_traffic(tc)

    def _access_loss(self, stream_name: str) -> GilbertElliottLoss | None:
        cfg = self.config
        if cfg.loss_p_gb <= 0:
            return None
        return GilbertElliottLoss(
            self.rng.stream(stream_name),
            p_gb=cfg.loss_p_gb, p_bg=cfg.loss_p_bg, loss_bad=cfg.loss_bad,
            sim=self.sim, name=stream_name,
        )

    def add_client(self, node_id: str | None = None,
                   spec: AccessLinkSpec | None = None) -> str:
        """Add a viewer host with its *own* access link.

        Each client draws link parameters from the engine config (or
        an explicit ``spec``) and gets an independent loss process and
        port namespace. Returns the new node id.
        """
        if node_id is None:
            node_id = f"client{len(self._population) + 1}"
        if spec is None:
            spec = self.config.access_link_spec(
                self._access_loss(f"access-loss:{node_id}")
            )
        self.topology.add_client(node_id, spec)
        self._population.append(node_id)
        return node_id

    def client_nodes(self, n: int,
                     specs: list[AccessLinkSpec] | None = None) -> list[str]:
        """The first ``n`` population client nodes, created on demand.

        Repeated calls reuse already-created clients, so two population
        runs on one engine share viewer hosts instead of leaking nodes.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if specs is not None and len(specs) < n:
            raise ValueError(f"need {n} access specs, got {len(specs)}")
        while len(self._population) < n:
            spec = specs[len(self._population)] if specs is not None else None
            self.add_client(spec=spec)
        return self._population[:n]

    def _add_traffic(self, tc) -> None:
        self._traffic_nodes += 1
        node = f"xsrc{self._traffic_nodes}"
        self.topology.add_traffic_host(node)
        rng = self.rng.stream(f"traffic:{node}")
        target = tc.target or self.CLIENT
        if tc.kind == "poisson":
            PoissonTrafficSource(
                self.network, node, target, rng, rate_bps=tc.rate_bps,
                packet_bytes=tc.packet_bytes, start_at=tc.start_at,
                stop_at=tc.stop_at,
            )
        else:
            OnOffTrafficSource(
                self.network, node, target, rng,
                peak_rate_bps=tc.rate_bps, on_mean_s=tc.on_mean_s,
                off_mean_s=tc.off_mean_s, packet_bytes=tc.packet_bytes,
                start_at=tc.start_at, stop_at=tc.stop_at,
            )

    # -- service construction ----------------------------------------------
    def add_server(
        self,
        name: str,
        documents: dict[str, tuple[str, str]] | None = None,
        description: str = "",
    ) -> MultimediaServer:
        """Add a multimedia server host.

        ``documents`` maps document name → (markup, topic); media
        stores are provisioned automatically from the scenarios'
        content indexes (synthetic objects per DESIGN.md).
        """
        if name in self.servers:
            raise ValueError(f"server {name!r} already exists")
        placement = self.topology.placement
        node_id = f"host:{name}"
        self.topology.add_server_host(
            node_id,
            region=placement.origin_region if placement is not None else None,
        )
        database = MultimediaDatabase()
        media_servers: dict[str, MediaServer] = {}
        server = MultimediaServer(
            self.sim, name, node_id, database, self.accounts, self.codecs,
            media_servers,
            admission=AdmissionController(self.config.admission_capacity_bps),
            grading_policy=self.config.grading_policy,
            description=description,
        )
        server.region_resolver = self.topology.region_of
        if self.config.shared_flows:
            from repro.server.shared_flow import SharedFlowManager

            server.shared_flows = SharedFlowManager(
                self.sim, self.network,
                fanout_node_for=self._fanout_node_for,
                batch_window_s=self.config.shared_flow_window_s,
            )
        self.servers[name] = server
        for peer in self.servers.values():
            if peer is not server:
                peer.add_peer(server)
                server.add_peer(peer)
        if documents:
            for doc_name, (markup, topic) in documents.items():
                self.add_document(name, doc_name, markup, topic)
        if placement is not None:
            self.apply_media_placement(name)
        return server

    def _fanout_node_for(self, client_node: str) -> str:
        """Where a shared flow fans out toward ``client_node``.

        The client's regional POP when it has one, else the core
        router — the last shared hop before the per-client access
        links.
        """
        return self.topology.pop_router(self.topology.region_of(client_node))

    def apply_media_placement(self, server_name: str) -> list[MediaServer]:
        """Provision the replicas the media-placement layer declared.

        One replica per (media server × replica region), named
        ``{media}@{region}``, hosted behind the region's POP. Runs
        automatically at the end of :meth:`add_server` when the
        compiled topology carries a placement; call it again after
        adding documents that introduce *new* media servers.
        """
        server = self.servers[server_name]
        created: list[MediaServer] = []
        for media_name in sorted(server.media_servers):
            have = {r.region for r in server.replicas.get(media_name, [])}
            for region in self.topology.replica_regions():
                if region in have:
                    continue
                created.append(self.add_media_replica(
                    server_name, media_name,
                    replica_name=f"{media_name}@{region}", region=region,
                ))
        return created

    def add_document(self, server_name: str, doc_name: str, markup: str,
                     topic: str = "general") -> None:
        """Store a document and provision its media objects."""
        server = self.servers[server_name]
        server.database.add_markup(doc_name, markup, topic=topic)
        scenario = PresentationScenario.from_document(parse(markup))
        for spec in scenario.streams:
            ms = self._media_server_for(server, spec.locator.server or
                                        f"{server_name}-media")
            path = spec.locator.path
            if path in ms.store:
                continue
            if spec.is_continuous:
                duration = spec.entry.duration or 60.0
                codec = self.codecs.default_for(spec.media_type)
                ms.store.add(
                    ContinuousMediaObject(path, spec.media_type, codec.name,
                                          duration_s=duration)
                )
            else:
                size = (self.config.image_bytes
                        if spec.media_type is MediaType.IMAGE
                        else self.config.text_bytes)
                ms.store.add(
                    DiscreteMediaObject(path, spec.media_type, "GIF",
                                        size_bytes=size)
                )

    def _media_server_for(self, server: MultimediaServer,
                          media_name: str) -> MediaServer:
        """Create (or return) a media server.

        By default media servers share their multimedia server's host
        (§6.1); with ``separate_media_hosts`` each gets its own node
        behind the router, so each media type takes its own network
        path to the client.
        """
        if media_name not in server.media_servers:
            if self.config.separate_media_hosts:
                node_id = f"host:{media_name}"
                if node_id not in self.network.nodes:
                    self.topology.add_server_host(node_id)
            else:
                node_id = server.node_id
            store = MediaStore(self.codecs, self.rng)
            server.media_servers[media_name] = MediaServer(
                self.sim, self.network, media_name, node_id, store
            )
        return server.media_servers[media_name]

    # -- fault injection ------------------------------------------------------
    def install_faults(
        self,
        plan=None,
        retry=None,
        recovery: bool = True,
        heartbeat: dict | None = None,
        detect_delay_s: float = 0.5,
        failover_grade_penalty: int = 0,
    ):
        """Install the fault subsystem: a plan, retry, and watchdogs.

        Call after every ``add_server``/``add_media_replica``: the
        watchdogs guard the media servers that exist at install time.
        An empty (or None) plan schedules nothing — the run stays
        byte-identical to one without the subsystem.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan
        from repro.faults.recovery import MediaWatchdog

        if self._faults is not None:
            raise RuntimeError("fault subsystem already installed")
        plan = plan if plan is not None else FaultPlan()
        self._faults = FaultInjector(self, plan, retry=retry,
                                     heartbeat=heartbeat)
        if recovery:
            for name, server in self.servers.items():
                self._watchdogs[name] = MediaWatchdog(
                    server, detect_delay_s=detect_delay_s,
                    failover_grade_penalty=failover_grade_penalty,
                )
        return self._faults

    @property
    def faults(self):
        """The installed :class:`FaultInjector` (None = no faults)."""
        return self._faults

    @property
    def watchdogs(self) -> dict[str, Any]:
        """server name -> MediaWatchdog, when recovery is installed."""
        return self._watchdogs

    # -- service telemetry --------------------------------------------------
    def attach_service_monitor(self, interval_s: float = 0.25):
        """Start fleet-level telemetry sampling (idempotent).

        The monitor ticks on the simulated clock, so an attached
        engine stays deterministic; population runs pick the report
        up automatically (``PopulationResult.service``).
        """
        if self._service_monitor is None:
            from repro.obs.service_metrics import ServiceMonitor

            self._service_monitor = ServiceMonitor(
                self, interval_s=interval_s)
            self._service_monitor.start()
        return self._service_monitor

    @property
    def service_monitor(self):
        """The attached :class:`ServiceMonitor`, or ``None``."""
        return self._service_monitor

    def attach_timeseries(self, interval_s: float = 0.25):
        """Start fixed-interval trajectory sampling (idempotent).

        Like :meth:`attach_service_monitor`, the sampler ticks on the
        simulated clock; population runs pick the series up
        automatically (``PopulationResult.timeseries``).
        """
        if self._timeseries_sampler is None:
            from repro.obs.timeseries import TimeSeriesSampler

            self._timeseries_sampler = TimeSeriesSampler(
                self, interval_s=interval_s)
            self._timeseries_sampler.start()
        return self._timeseries_sampler

    @property
    def timeseries_sampler(self):
        """The attached :class:`TimeSeriesSampler`, or ``None``."""
        return self._timeseries_sampler

    def add_media_replica(self, server_name: str, primary_media: str,
                          replica_name: str | None = None,
                          region: str | None = None) -> MediaServer:
        """Provision a standby media server mirroring ``primary_media``.

        The replica shares the primary's store (same catalog, same
        seeded trace streams) but lives on its own host behind the
        router — or behind ``region``'s POP, making it that region's
        serving edge — so failover also moves the network path.
        """
        server = self.servers[server_name]
        primary = server.media_server(primary_media)
        if replica_name is None:
            n = len(server.replicas.get(primary_media, [])) + 1
            replica_name = f"{primary_media}-r{n}"
        node_id = f"host:{replica_name}"
        if node_id not in self.network.nodes:
            self.topology.add_server_host(node_id, region=region)
        replica = MediaServer(self.sim, self.network, replica_name, node_id,
                              primary.store, region=region)
        server.add_replica(primary_media, replica)
        watchdog = self._watchdogs.get(server_name)
        if watchdog is not None:
            watchdog.attach(replica)
        return replica

    # -- client construction ---------------------------------------------------
    def open_session(self, server_name: str, user_id: str, secret: str,
                     client_node: str | None = None,
                     ) -> tuple[ClientSession, ServerSessionHandler]:
        """Create the control channel + protocol endpoints to a server.

        ``client_node`` selects the viewer host (default: the built-in
        single client). The control block must be free on *both* ends,
        so it is claimed from both nodes' allocators.
        """
        client_node = client_node if client_node is not None else self.CLIENT
        server = self.servers[server_name]
        cports = self.network.node(client_node).ports
        sports = self.network.node(server.node_id).ports
        base = max(cports.next_free("control"), sports.next_free("control"))
        cports.claim(base, 10, "control")
        sports.claim(base, 10, "control")
        channel = ControlChannel(self.network, client_node, server.node_id,
                                 base_port=base)
        session_id = f"sess-{next(self._session_ids)}"
        handler = ServerSessionHandler(
            server, channel.server, session_id, client_node,
            suspend_grace_s=self.config.suspend_grace_s,
            flow_lead_s=self.config.flow_lead_s,
        )
        client = ClientSession(self.sim, channel.client, user_id, secret)
        if self._faults is not None:
            self._faults.on_session_opened(channel, client, handler)
        return client, handler

    def build_client_composition(self, markup: str,
                                 server: MultimediaServer,
                                 client_node: str | None = None,
                                 ) -> "ClientComposition":
        return ClientComposition(self, markup, server,
                                 client_node=client_node)

    # -- orchestration shims ------------------------------------------------
    @property
    def orchestrator(self):
        """The engine's :class:`SessionOrchestrator` (created lazily)."""
        if self._orchestrator is None:
            from repro.core.orchestrator import SessionOrchestrator

            self._orchestrator = SessionOrchestrator(self)
        return self._orchestrator

    @property
    def tracer(self):
        """The tracer bound to this engine's simulator (``None`` off)."""
        return self.sim.tracer

    def run_population(self, *args, **kwargs):
        """Shorthand for ``engine.orchestrator.run_population``."""
        return self.orchestrator.run_population(*args, **kwargs)


class ClientComposition:
    """The browser's machinery for one document presentation.

    Bound to one viewer host: receivers, buffers and feedback ports
    all live on ``client_node`` and draw from *its* port allocator.
    """

    def __init__(self, engine: ServiceEngine, markup: str,
                 server: MultimediaServer,
                 client_node: str | None = None) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.network = engine.network
        self.server = server
        self.client_node = (client_node if client_node is not None
                            else engine.CLIENT)
        cfg = engine.config
        node = self.network.node(self.client_node)
        self.scenario = PresentationScenario.from_markup(markup)
        self.log = PlayoutEventLog()
        self.qos = ClientQoSManager(self.network, self.client_node,
                                    report_interval_s=cfg.rtcp_interval_s,
                                    adaptive=cfg.rtcp_adaptive)
        self.receivers: dict[str, RtpReceiver] = {}
        self.rtp_ports: dict[str, int] = {}
        self.discrete_ports: dict[str, int] = {}
        self._discrete_rx: list[ReliableReceiver] = []
        self._closed = False

        bindings: dict[str, StreamBinding] = {}
        for spec in self.scenario.continuous_streams():
            codec = engine.codecs.default_for(spec.media_type)
            bindings[spec.stream_id] = StreamBinding(
                spec.stream_id, codec.clock_rate,
                codec.best.frame_interval_s,
            )
        self.scheduler = PresentationScheduler(
            self.sim, self.scenario, bindings, log=self.log,
            time_window_s=cfg.time_window_s,
            skew_enabled=cfg.skew_control,
            monitor_enabled=cfg.buffer_monitor,
            sync_threshold_s=cfg.sync_threshold_s,
        )
        for spec in self.scenario.continuous_streams():
            sid = spec.stream_id
            port = node.ports.allocate("media")
            codec = engine.codecs.default_for(spec.media_type)
            self.receivers[sid] = RtpReceiver(
                self.network, self.client_node, port, codec.clock_rate, sid,
                on_frame=self.scheduler.frame_sink(sid),
            )
            self.rtp_ports[sid] = port
        for spec in self.scenario.discrete_streams():
            sid = spec.stream_id
            port = node.ports.allocate("media")
            rx = ReliableReceiver(
                self.network, self.client_node, port,
                on_message=lambda data, size, flow, _sid=sid:
                    self.scheduler.mark_loaded(_sid),
            )
            self._discrete_rx.append(rx)
            self.discrete_ports[sid] = port
        engine.compositions.append(self)

    def set_tracer(self, tracer, session: str = "") -> None:
        """Wire a tracer (with session attribution) through the
        client-side machinery: playout log, buffer monitors, skew
        controllers, receivers and the RTCP feedback path."""
        self.log.set_tracer(tracer, session)
        for monitor in self.scheduler.monitors.values():
            monitor.set_tracer(tracer, session)
        for ctrl in self.scheduler.skew_controllers.values():
            ctrl.set_tracer(tracer, session)
        # Session attribution for the data/feedback path: the scheduler
        # stamps buffer events, receivers stamp frame-drop events and
        # the QoS manager stamps the RTCP reporters it creates later.
        self.scheduler.trace_session = session
        self.qos.session = session
        for receiver in self.receivers.values():
            receiver.session = session

    def attach_feedback(self, server_rtcp_port: int,
                        server_node: str) -> None:
        """Start RTCP receiver reports toward the server's sink."""
        ssrc = 0
        for _sid, receiver in sorted(self.receivers.items()):
            ssrc += 1
            self.qos.register_stream(receiver, None, server_node,
                                     server_rtcp_port, ssrc=ssrc)

    def start(self):
        """Begin presentation; returns the all-finished event."""
        return self.scheduler.start()

    def close(self) -> None:
        """Tear down this composition's network footprint.

        Unbinds every receiver and returns the media ports to the
        client node's allocator — pairing the allocations in
        ``__init__`` so a long-lived viewer host reuses its ports
        across presentations instead of leaking them. Idempotent;
        result collection still works afterwards (statistics live on
        the composition, not the bindings).
        """
        if self._closed:
            return
        self._closed = True
        if self in self.engine.compositions:
            self.engine.compositions.remove(self)
        self.qos.stop()
        node = self.network.node(self.client_node)
        for sid in sorted(self.receivers):
            self.receivers[sid].close()
            node.ports.release(self.rtp_ports[sid])
        for rx in self._discrete_rx:
            rx.close()
        for sid in sorted(self.discrete_ports):
            node.ports.release(self.discrete_ports[sid])

    # -- results -------------------------------------------------------------
    def collect_result(self, document: str, charge: float = 0.0,
                       grading_decisions: list | None = None,
                       grade_trajectories: dict | None = None,
                       completed: bool = True) -> SessionResult:
        result = SessionResult(
            document=document,
            completed=completed,
            startup_latency_s=self.scheduler.startup_latency_s(),
            charge=charge,
            skew=dict(self.scheduler.skew_series()),
            protocol_bytes=dict(self.network.tap.bytes_by_protocol),
            log=self.log,
            client_node=self.client_node,
            rx_discarded=self.network.node(self.client_node).rx_discarded,
        )
        for spec in self.scenario.streams:
            sid = spec.stream_id
            summary = self.log.summary(sid)
            sr = StreamResult(
                stream_id=sid,
                media_type=spec.media_type.value,
                frames_played=int(summary["frames"]),
                gaps=int(summary["gaps"]),
                duplicates=int(summary["duplicates"]),
                drops=int(summary["drops"]),
                gap_ratio=summary["gap_ratio"],
                mean_grade=summary["mean_grade"],
            )
            rx = self.receivers.get(sid)
            if rx is not None:
                sr.packets_received = rx.stats.packets_received
                sr.packets_lost = rx.stats.cumulative_lost
                sr.mean_delay_s = rx.stats.mean_delay_s
                sr.jitter_s = rx.jitter.jitter_s
            buf = self.scheduler.buffers.get(sid)
            if buf is not None:
                sr.buffer_overflow_drops = buf.stats.overflow_drops
                sr.buffer_underflows = buf.stats.underflow_events
                sr.time_window_s = buf.time_window_s
            result.streams[sid] = sr
        if grading_decisions:
            result.grading_decisions = list(grading_decisions)
        if grade_trajectories:
            result.grade_trajectories = dict(grade_trajectories)
        return result
