"""Semantic validation of parsed documents.

Checks the constraints the grammar cannot express:

* component ids are unique within a document ("each component of a
  hypermedia object has a unique identification number", §3.1);
* times are sane (start >= 0, duration > 0, AT times >= 0);
* synchronized AU_VI pairs start together ("the two media should
  start and stop playing at the same time");
* sources are non-empty;
* at most one timed (AT) hyperlink — the scenario has one author's
  sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    HmlDocument,
    ImageElement,
    VideoElement,
)

__all__ = ["ValidationIssue", "validate_document"]


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    severity: str  # "error" | "warning"
    code: str
    message: str

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def validate_document(doc: HmlDocument) -> list[ValidationIssue]:
    """Return all issues found (empty list = valid)."""
    issues: list[ValidationIssue] = []

    def error(code: str, message: str) -> None:
        issues.append(ValidationIssue("error", code, message))

    def warning(code: str, message: str) -> None:
        issues.append(ValidationIssue("warning", code, message))

    if not doc.title.strip():
        error("empty-title", "document title is empty")

    seen_ids: set[str] = set()
    for eid in doc.element_ids():
        if eid in seen_ids:
            error("duplicate-id", f"component id {eid!r} is not unique")
        seen_ids.add(eid)

    for e in doc.media_elements():
        if isinstance(e, AudioVideoElement):
            ids = f"{e.audio_id}/{e.video_id}"
            if e.audio_startime != e.video_startime:
                error(
                    "avsync-startime",
                    f"AU_VI {ids}: audio and video start times differ "
                    f"({e.audio_startime} vs {e.video_startime}); synchronized "
                    "media must start together",
                )
            if e.audio_startime < 0:
                error("negative-startime", f"AU_VI {ids}: negative start time")
            if e.duration is not None and e.duration <= 0:
                error("bad-duration", f"AU_VI {ids}: duration must be positive")
            if not e.audio_source or not e.video_source:
                error("empty-source", f"AU_VI {ids}: empty source")
            if e.audio_id == e.video_id:
                error("duplicate-id", f"AU_VI uses the same id {e.audio_id!r} twice")
        else:
            assert isinstance(e, (ImageElement, AudioElement, VideoElement))
            eid = e.element_id
            if e.startime < 0:
                error("negative-startime", f"{eid}: negative start time")
            if e.duration is not None and e.duration <= 0:
                error("bad-duration", f"{eid}: duration must be positive")
            if not e.source:
                error("empty-source", f"{eid}: empty source")
            if isinstance(e, (AudioElement, VideoElement)) and e.duration is None:
                warning(
                    "open-duration",
                    f"{eid}: continuous media without DURATION plays to its "
                    "natural end; scenario length becomes data-dependent",
                )
            if e.repeat < 1:
                error("bad-repeat", f"{eid}: REPEAT must be >= 1")
            elif e.repeat > 1 and e.duration is None:
                error(
                    "repeat-without-duration",
                    f"{eid}: REPEAT needs a DURATION (the loop length)",
                )

    timed_links = [l for l in doc.hyperlinks() if l.at_time is not None]
    for link in doc.hyperlinks():
        if not link.target.strip():
            error("empty-link-target", "hyperlink with empty target")
        if link.at_time is not None and link.at_time < 0:
            error("negative-at", f"hyperlink to {link.target!r}: negative AT time")
    if len(timed_links) > 1:
        error(
            "multiple-timed-links",
            "more than one AT-timed hyperlink; the author's sequence must be "
            "unambiguous",
        )
    scenario_end = _scenario_end(doc)
    for link in timed_links:
        if link.at_time is not None and scenario_end is not None \
                and link.at_time < scenario_end:
            warning(
                "early-timed-link",
                f"timed link to {link.target!r} fires at {link.at_time:g}s, "
                f"before the last media ends at {scenario_end:g}s",
            )
    return issues


def _scenario_end(doc: HmlDocument) -> float | None:
    """Latest media end time, if every element has a known duration."""
    ends: list[float] = []
    for e in doc.media_elements():
        if isinstance(e, AudioVideoElement):
            if e.duration is None:
                return None
            ends.append(e.audio_startime + e.duration)
        else:
            if e.duration is None:  # type: ignore[union-attr]
                return None
            repeat = max(1, getattr(e, "repeat", 1))
            ends.append(e.startime + e.duration * repeat)  # type: ignore[union-attr]
    return max(ends) if ends else None
