"""RTP/RTCP implementation over the simulated datagram transport.

The paper (§6.3) carries time-sensitive media on RTP over UDP and
derives network statistics (delay, delay jitter, packet loss) from
RTCP receiver reports, which drive the server's quality-grading loop.
This package implements the subset actually exercised:

* RTP packetization with sequence numbers, media timestamps and
  payload types (fragmentation for frames above the MTU);
* the RFC 3550 interarrival-jitter estimator;
* RTCP receiver reports (fraction lost, cumulative lost, highest
  sequence, jitter, mean delay) emitted on a configurable interval.
"""

from repro.rtp.packets import RtpPacket, RtcpReceiverReport, RtcpSenderReport
from repro.rtp.jitter import InterarrivalJitterEstimator
from repro.rtp.session import RtpReceiver, RtpSender, RtpReceiverStats
from repro.rtp.rtcp import RtcpReporter, RtcpSink

__all__ = [
    "InterarrivalJitterEstimator",
    "RtcpReceiverReport",
    "RtcpReporter",
    "RtcpSenderReport",
    "RtcpSink",
    "RtpPacket",
    "RtpReceiver",
    "RtpReceiverStats",
    "RtpSender",
]
