"""Always-on flight recorder: a bounded ring of trace events.

The third :class:`~repro.obs.tracer.Tracer` beside no-op and
recording. A production-shaped run can't afford full-trace recording
(at 10⁶ clients the event log *is* the memory budget), but when a
media server crashes the operator wants the last N sim-seconds of
control-plane history. The flight recorder keeps exactly that: a
``deque(maxlen=...)`` of events, always on, costing <5% wall time
(gated by ``benchmarks/bench_perf_flightrec.py``) because it declares
``detail = False`` — the per-packet firehose tier is never even
constructed (see :mod:`repro.obs.tracer`).

Dumps are ordinary trace-v3 JSONL windows ("everything in the ring
from the last ``window_s`` sim-seconds"), so ``repro trace``,
lifecycle correlation and QoE tooling parse them unchanged. A dump
fires on the first fault-injection event (``trigger_kinds``), on an
SLO violation (the CLI calls :meth:`FlightRecorder.dump`), or
explicitly.

Wrapping: ``FlightRecorder(inner=RecordingTracer())`` tees every
event into the inner tracer first and inherits its ``detail`` tier,
so a chaos run keeps full recording fidelity *and* gets incident
dumps; attribute lookups (``metrics``, ``session_snapshot``, ...)
delegate to the inner tracer, making the wrapper drop-in wherever a
RecordingTracer is expected.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from repro.obs.tracer import TraceEvent, Tracer

__all__ = ["FlightRecorder", "DEFAULT_TRIGGER_KINDS"]

#: fault-injection kinds that auto-dump the ring (first occurrence)
DEFAULT_TRIGGER_KINDS = frozenset({
    "fault.crash", "fault.link", "fault.ctl_partition", "fault.shard",
})


class FlightRecorder(Tracer):
    """Bounded, always-on ring of control-plane trace events."""

    enabled = True

    def __init__(self, max_events: int = 4096, window_s: float = 30.0,
                 inner: Tracer | None = None,
                 dump_path: str | None = None,
                 trigger_kinds: Iterable[str] = DEFAULT_TRIGGER_KINDS,
                 skip_kinds: Iterable[str] = ()) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be > 0")
        self.ring: deque[TraceEvent] = deque(maxlen=max_events)
        self.window_s = window_s
        self.inner = inner
        # Standalone recorders stay on the cheap control tier; a
        # wrapped tracer dictates the tier so its recording keeps
        # full fidelity.
        self.detail = (bool(getattr(inner, "detail", True))
                       if inner is not None else False)
        self.dump_path = dump_path
        self.trigger_kinds = frozenset(trigger_kinds)
        self.skip_kinds = frozenset(skip_kinds)
        #: metadata of the last dump ({} until one happens)
        self.last_dump: dict[str, Any] = {}
        self.dropped_events = 0

    # -- Tracer API ----------------------------------------------------------
    def emit(self, time: float, kind: str, name: str = "", *,
             session: str = "", node: str = "", **args: Any) -> None:
        if self.inner is not None:
            self.inner.emit(time, kind, name, session=session, node=node,
                            **args)
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="i",
                                session=session, node=node, args=args))

    def span_begin(self, time: float, kind: str, name: str = "", *,
                   session: str = "", node: str = "", **args: Any) -> None:
        if self.inner is not None:
            self.inner.span_begin(time, kind, name, session=session,
                                  node=node, **args)
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="B",
                                session=session, node=node, args=args))

    def span_end(self, time: float, kind: str, name: str = "", *,
                 session: str = "", node: str = "", **args: Any) -> None:
        if self.inner is not None:
            self.inner.span_end(time, kind, name, session=session,
                                node=node, **args)
        self._record(TraceEvent(time=time, kind=kind, name=name, phase="E",
                                session=session, node=node, args=args))

    def _record(self, event: TraceEvent) -> None:
        if event.kind in self.skip_kinds:
            return
        if len(self.ring) == self.ring.maxlen:
            self.dropped_events += 1
        self.ring.append(event)
        if (self.dump_path is not None and not self.last_dump
                and event.kind in self.trigger_kinds):
            self.dump(trigger=event.kind)

    # -- delegation ----------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes not set on the recorder itself:
        # forwards inner-tracer surface (metrics, events,
        # session_snapshot, ...) so the wrapper is drop-in.
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- dumping -------------------------------------------------------------
    def window(self, window_s: float | None = None) -> list[TraceEvent]:
        """Ring contents from the trailing ``window_s`` sim-seconds."""
        if not self.ring:
            return []
        span = self.window_s if window_s is None else window_s
        t_end = self.ring[-1].time
        return [e for e in self.ring if e.time >= t_end - span]

    def dump(self, path: str | None = None,
             window_s: float | None = None,
             trigger: str = "manual") -> str:
        """Write the trailing window as trace-v3 JSONL; returns path."""
        from repro.obs.export import write_jsonl

        target = path if path is not None else self.dump_path
        if target is None:
            raise ValueError("no dump path configured")
        events = self.window(window_s)
        write_jsonl(events, target)
        self.last_dump = {
            "path": str(target),
            "trigger": trigger,
            "events": len(events),
            "t_end": events[-1].time if events else 0.0,
            "window_s": self.window_s if window_s is None else window_s,
        }
        return str(target)
