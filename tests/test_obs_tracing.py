"""Observability subsystem: tracer, metrics registry, exporters, and
the reconciliation invariant across a traced population run."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    TraceEvent,
    Tracer,
    read_jsonl,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def traced_engine(seed=7, tracer=None, **kw):
    eng = ServiceEngine(EngineConfig(seed=seed, **kw), tracer=tracer)
    eng.add_server("srv1", documents={"doc": (av_markup(4.0), "x")})
    return eng


# -- metrics registry --------------------------------------------------------

def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("events", kind="drop")
    c.inc()
    c.inc(2)
    assert c.value == 3
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("depth", link="a->b")
    g.set(4)
    g.add(-1)
    assert g.value == 3
    h = reg.histogram("latency_s")
    h.observe(0.004)
    h.observe(0.4)
    s = h.summary()
    assert s["count"] == 2 and s["min"] == 0.004 and s["max"] == 0.4
    assert sum(h.bucket_counts) == 2


def test_registry_same_labels_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("n", a="1", b="2") is reg.counter("n", b="2", a="1")
    assert reg.counter("n", a="1") is not reg.counter("n", a="2")


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("events", kind="x").inc(5)
    reg.gauge("depth").set(2)
    reg.histogram("d").observe(1.0)
    snap = reg.snapshot()
    assert snap["events"]["kind=x"] == 5
    assert snap["depth"][""] == 2
    assert snap["d"][""]["count"] == 1
    json.dumps(snap)  # must be JSON-serializable


def test_merge_counts():
    merged = MetricsRegistry.merge_counts([{"a": 1, "b": 2}, {"a": 3}])
    assert merged == {"a": 4, "b": 2}


# -- tracer -----------------------------------------------------------------

def test_noop_tracer_is_disabled_and_silent():
    t = Tracer()
    assert t.enabled is False
    t.emit(0.0, "kernel.event", "x")
    t.span_begin(0.0, "session", "s")
    t.span_end(1.0, "session", "s")  # all no-ops


def test_recording_tracer_counts_every_emit():
    t = RecordingTracer()
    t.emit(0.0, "link.drop", "a->b", node="a")
    t.emit(1.0, "link.drop", "a->b", node="a")
    t.emit(2.0, "qos.grade", "v1", session="sess-1", action="degrade")
    assert len(t) == 3
    assert t.kind_counts() == {"link.drop": 2, "qos.grade": 1}
    assert t.session_snapshot("sess-1") == {"qos.grade": 1}
    assert t.select(kind="link.drop") == t.events[:2]


def test_recording_tracer_max_events_degrades_to_ring():
    t = RecordingTracer(max_events=2)
    with pytest.warns(RuntimeWarning, match="max_events=2"):
        for i in range(5):
            t.emit(float(i), "kernel.event")
    # Ring retention: newest events kept, oldest evicted.
    assert len(t.events) == 2
    assert [e.time for e in t.events] == [3.0, 4.0]
    assert t.dropped_events == 3
    assert t.kind_counts() == {"kernel.event": 5}  # registry sees all


def test_recording_tracer_cap_warns_only_once():
    t = RecordingTracer(max_events=1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for i in range(10):
            t.emit(float(i), "kernel.event")
    assert sum(issubclass(w.category, RuntimeWarning) for w in caught) == 1


# -- exporters ---------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    events = [
        TraceEvent(0.5, "link.drop", "a->b", node="a",
                   args={"reason": "queue"}),
        TraceEvent(1.0, "session", "sess-1", phase="B", session="sess-1"),
    ]
    path = tmp_path / "t.jsonl"
    assert write_jsonl(events, path) == 2
    back = read_jsonl(path)
    assert back == events


def test_chrome_trace_tracks_and_instants():
    events = [
        TraceEvent(1.0, "session", "sess-1", phase="B", session="sess-1"),
        TraceEvent(2.0, "session", "sess-1", phase="E", session="sess-1"),
        TraceEvent(1.5, "link.drop", "a->b", node="a"),
        TraceEvent(0.0, "kernel.event", "Timeout"),
    ]
    doc = to_chrome_trace(events)
    meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
    records = [r for r in doc["traceEvents"] if r["ph"] != "M"]
    # one thread-name row per distinct track
    assert {m["args"]["name"] for m in meta} == \
        {"sess-1", "node:a", "sim:kernel"}
    assert len(records) == 4
    span_b = next(r for r in records if r["ph"] == "B")
    assert span_b["ts"] == 1.0e6
    instant = next(r for r in records if r["cat"] == "link.drop")
    assert instant["ph"] == "i" and instant["s"] == "t"


# -- end-to-end: traced population run ---------------------------------------

def test_traced_population_reconciles_and_exports(tmp_path):
    tracer = RecordingTracer()
    eng = traced_engine(tracer=tracer)
    pop = eng.orchestrator.run_population(3, "srv1", "doc", stagger_s=0.25)
    assert len(pop.completed()) == 3

    # JSONL export reconciles with the registry's per-kind counters.
    jl = tmp_path / "trace.jsonl"
    n = write_jsonl(tracer.events, jl)
    assert n == len(tracer.events) > 0
    events = read_jsonl(jl)
    counts: dict[str, int] = {}
    for e in events:
        counts[e.kind] = counts.get(e.kind, 0) + 1
    assert counts == tracer.kind_counts()

    # Chrome trace carries every event (plus metadata rows).
    cj = tmp_path / "trace.json"
    write_chrome_trace(tracer.events, cj)
    doc = json.loads(cj.read_text())
    records = [r for r in doc["traceEvents"] if r["ph"] != "M"]
    assert len(records) == len(events)

    # Per-session snapshots rode along on the results and aggregate.
    for o in pop:
        assert o.result.metrics["session"] == 2  # B + E span edges
        assert o.result.metrics == tracer.session_snapshot(o.session_id)
    agg = pop.aggregate_metrics()
    assert agg["session"] == 2 * len(pop)
    registry_snapshot = pop.metrics["_registry"]
    total = sum(int(v)
                for v in registry_snapshot["trace_events"].values())
    assert total == len(events)
    # Session durations were observed into the run-level histogram.
    durations = next(iter(registry_snapshot["session_duration_s"].values()))
    assert durations["count"] == 3


def test_trace_covers_every_layer():
    tracer = RecordingTracer()
    eng = traced_engine(tracer=tracer, loss_p_gb=0.05, loss_bad=0.3)
    eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.2)
    kinds = set(tracer.kind_counts())
    for expected in ("kernel.event", "process.spawn", "process.finish",
                     "link.enqueue", "net.deliver", "channel.message",
                     "flow.plan", "flow.schedule", "qos.stream",
                     "playout.start", "playout.stop",
                     "session", "workload", "population"):
        assert expected in kinds, f"missing {expected}: {sorted(kinds)}"


def test_tracing_does_not_perturb_the_simulation():
    base = traced_engine(seed=5).orchestrator.run_full_session(
        "srv1", "doc")
    traced = traced_engine(
        seed=5, tracer=RecordingTracer()
    ).orchestrator.run_full_session("srv1", "doc")
    assert traced.to_dict() == base.to_dict()


def test_untraced_engine_has_tracing_off():
    eng = traced_engine()
    assert eng.sim.tracing is False
    assert eng.tracer is None


# -- summaries ----------------------------------------------------------------

def test_summarize_trace_sections():
    tracer = RecordingTracer()
    eng = traced_engine(tracer=tracer)
    eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.2)
    sections = summarize_trace(tracer.events)
    titles = [s["title"] for s in sections]
    assert titles[0].startswith("Top event kinds")
    assert "Session timelines" in titles
    timeline = next(s for s in sections if s["title"] == "Session timelines")
    assert len(timeline["rows"]) == 2
    for row in timeline["rows"]:
        assert row[0].startswith("sess-")
        assert row[1].startswith("client")
