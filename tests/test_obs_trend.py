"""Trend analytics: history loading, MAD bands, CLI gate, dashboard."""

import json
import os

from repro.__main__ import main
from repro.obs.trend import (
    TrendMetric,
    analyze_group,
    group_history,
    load_history,
    render_markdown_report,
    sparkline,
)

HISTORY_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                           "benchmarks", "history")


def _bench_doc(**over):
    doc = {
        "schema": "repro.bench",
        "scenario": "population_clean",
        "smoke": False,
        "seed": 11,
        "sessions": 4,
        "completed": 4,
        "events": 1000,
        "events_per_sec": 50_000.0,
        "qoe": {"score": {"p50": 95.0, "p95": 96.0}},
    }
    doc.update(over)
    return doc


def _write_series(dirpath, docs):
    os.makedirs(dirpath, exist_ok=True)
    for i, doc in enumerate(docs):
        path = os.path.join(dirpath, f"BENCH_x.{i:03d}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    return str(dirpath)


# -- loading and grouping -----------------------------------------------------

def test_load_history_sorts_and_skips_non_artifacts(tmp_path):
    _write_series(tmp_path, [_bench_doc(events=1), _bench_doc(events=2)])
    (tmp_path / "notes.json").write_text(json.dumps({"hello": 1}))
    (tmp_path / "README.md").write_text("not json")
    history = load_history([str(tmp_path)])
    assert [doc["events"] for doc in history] == [1, 2]
    assert all("_path" in doc for doc in history)


def test_group_history_splits_scenario_and_scale():
    history = [
        _bench_doc(), _bench_doc(smoke=True),
        {"schema": "repro.chaos", "scenario": "crash", "smoke": True},
    ]
    groups = group_history(history)
    assert set(groups) == {("population_clean", False),
                           ("population_clean", True),
                           ("crash", True)}


# -- verdicts -----------------------------------------------------------------

def test_analyze_group_flags_each_direction():
    metrics = (TrendMetric("qoe_p50", direction="higher"),
               TrendMetric("events", direction="stable"))
    docs = [_bench_doc() for _ in range(4)]
    docs.append(_bench_doc(qoe={"score": {"p50": 40.0}}, events=2000))
    rows = {r.metric: r for r in analyze_group(docs, metrics=metrics)}
    assert rows["qoe_p50"].verdict == "regressed"
    assert rows["events"].verdict == "regressed"
    # The same drift in the harmless direction is fine for "higher".
    docs[-1] = _bench_doc(qoe={"score": {"p50": 99.0}})
    rows = {r.metric: r for r in analyze_group(docs, metrics=metrics)}
    assert rows["qoe_p50"].verdict == "ok"


def test_identical_history_tolerates_small_drift():
    # MAD is 0 on an all-identical history; the relative floor keeps
    # sub-threshold drift from flagging.
    docs = [_bench_doc() for _ in range(5)]
    docs.append(_bench_doc(events=1050))
    rows = {r.metric: r for r in analyze_group(docs)}
    assert rows["events"].verdict == "ok"


def test_single_point_is_insufficient():
    rows = analyze_group([_bench_doc()])
    assert rows and all(r.verdict == "insufficient" for r in rows)


def test_absent_metrics_are_skipped():
    docs = [{"schema": "repro.bench", "scenario": "x", "events": 1},
            {"schema": "repro.bench", "scenario": "x", "events": 1}]
    names = {r.metric for r in analyze_group(docs)}
    assert names == {"events"}


# -- sparkline ----------------------------------------------------------------

def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4 and line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)), width=24)) == 24


# -- the CLI gate -------------------------------------------------------------

def test_trend_cli_exits_one_on_synthetic_regression(tmp_path, capsys):
    docs = [_bench_doc() for _ in range(4)]
    docs.append(_bench_doc(completed=1, qoe={"score": {"p50": 40.0}}))
    fixture = _write_series(tmp_path / "hist", docs)
    assert main(["trend", "--history", fixture, "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["values"]["regressions"] >= 1


def test_trend_cli_passes_on_checked_in_history(capsys):
    assert main(["trend", "--history", HISTORY_DIR]) == 0
    assert "population_clean" in capsys.readouterr().out


def test_trend_cli_appends_artifact_as_newest_point(tmp_path, capsys):
    fixture = _write_series(tmp_path / "hist",
                            [_bench_doc() for _ in range(4)])
    bad = tmp_path / "BENCH_fresh.json"
    bad.write_text(json.dumps(_bench_doc(completed=0)))
    assert main(["trend", "--history", fixture,
                 "--artifact", str(bad)]) == 1
    assert "regression" in capsys.readouterr().out


def test_trend_cli_errors_without_history(tmp_path, capsys):
    assert main(["trend", "--history", str(tmp_path)]) == 2
    capsys.readouterr()


# -- the markdown dashboard ---------------------------------------------------

def test_report_cli_renders_dashboard(tmp_path, capsys):
    src = sorted(f for f in os.listdir(HISTORY_DIR)
                 if "population_clean" in f)[-1]
    out = tmp_path / "report.md"
    assert main(["report",
                 "--artifact", os.path.join(HISTORY_DIR, src),
                 "--history", HISTORY_DIR,
                 "--out", str(out)]) == 0
    capsys.readouterr()
    md = out.read_text()
    assert md.startswith("# Run report — population_clean")
    for section in ("## QoE", "## Service", "## Time series",
                    "## SLO", "## Trend"):
        assert section in md
    assert "link_utilization" in md


def test_render_markdown_skips_absent_sections():
    md = render_markdown_report({"schema": "repro.bench",
                                 "scenario": "bare"})
    assert "## QoE" not in md
    assert "## Time series" not in md
    assert md.startswith("# Run report — bare")
