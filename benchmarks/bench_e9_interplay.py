"""E9 (ablation) — interplay of the short- and long-term mechanisms.

Claim (§4): buffer-level drop/duplication provides "a short term
synchronization incoherence recovery method ... before the long term
synchronization support mechanism in the sending side is activated to
provide media encoding grading." After a congestion step, the client
must act first; the server's grading follows on the RTCP timescale.
"""

from repro.analysis import render_table
from repro.core.experiments import run_interplay_experiment


def test_e9_short_before_long(report, once):
    headers, rows, (first_short, first_long) = once(run_interplay_experiment)
    report("e9_interplay",
           render_table("E9 — first reaction to a congestion step at t=5 s",
                        headers, rows))
    assert first_short is not None, "client mechanism never acted"
    assert first_long is not None, "server grading never acted"
    # The client-side (short-term) mechanism reacts before the
    # server-side (long-term) grading loop.
    assert first_short < first_long
    # Grading needs at least one RTCP interval (1 s) of evidence.
    assert first_long >= 5.0 + 1.0 - 0.5
