"""RFC 3550 interarrival jitter estimator.

For packets i and j with RTP timestamps S and arrival times R, the
transit difference is D(i,j) = (Rj - Ri) - (Sj - Si); the smoothed
jitter estimate is updated per arriving packet as

    J += (|D| - J) / 16.

We keep everything in seconds (timestamps are converted using the
stream's media clock rate), matching how the client QoS manager
consumes the value.
"""

from __future__ import annotations

__all__ = ["InterarrivalJitterEstimator"]


class InterarrivalJitterEstimator:
    """Streaming jitter estimate per RFC 3550 §6.4.1 / A.8."""

    GAIN = 1.0 / 16.0

    def __init__(self, clock_rate: int) -> None:
        if clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        self.clock_rate = clock_rate
        self._prev_arrival: float | None = None
        self._prev_timestamp: int | None = None
        self._jitter_s = 0.0
        self.samples = 0

    @property
    def jitter_s(self) -> float:
        return self._jitter_s

    def observe(self, arrival_s: float, rtp_timestamp: int) -> float:
        """Feed one packet arrival; returns the updated estimate."""
        if self._prev_arrival is not None and self._prev_timestamp is not None:
            transit_delta = (arrival_s - self._prev_arrival) - (
                (rtp_timestamp - self._prev_timestamp) / self.clock_rate
            )
            self._jitter_s += (abs(transit_delta) - self._jitter_s) * self.GAIN
            self.samples += 1
        self._prev_arrival = arrival_s
        self._prev_timestamp = rtp_timestamp
        return self._jitter_s

    def reset(self) -> None:
        self._prev_arrival = None
        self._prev_timestamp = None
        self._jitter_s = 0.0
        self.samples = 0
