"""Result analysis and report rendering for the experiment harness."""

from repro.analysis.report import Reporter
from repro.analysis.stats import mean_ci, summarize
from repro.analysis.tables import render_series, render_table
from repro.analysis.traces import (
    event_rate_series,
    gap_timeline,
    occupancy_series,
    staircase_at,
)

__all__ = [
    "Reporter",
    "event_rate_series",
    "gap_timeline",
    "mean_ci",
    "occupancy_series",
    "render_series",
    "render_table",
    "staircase_at",
    "summarize",
]
