"""Tests for cross-server document redirects and trace analysis."""

import pytest

from repro.analysis.traces import (
    event_rate_series,
    gap_timeline,
    occupancy_series,
    staircase_at,
)
from repro.client.metrics import PlayoutEventKind, PlayoutEventLog
from repro.core import ServiceEngine
from repro.core.experiments import av_markup


# ------------------------------------------------------------- redirect
def test_request_for_remote_document_redirects():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"local": (av_markup(2.0), "x")})
    eng.add_server("srv2", documents={"remote": (av_markup(2.0), "x")})
    client, handler = eng.open_session("srv1", "u", "pw")
    box = {}

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            yield from client.subscribe(SubscriptionForm(
                real_name="U", address="x", email="u@e.org"))
        resp = yield from client.request_document("remote")
        box["resp"] = resp

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    resp = box["resp"]
    assert resp.msg_type == "redirect"
    assert resp.body["server"] == "srv2"
    # The FSM is back in browsing, ready for the suspend/switch dance.
    assert client.fsm.state.value == "browsing"


def test_request_for_nowhere_document_rejects():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"local": (av_markup(2.0), "x")})
    eng.add_server("srv2", documents={"remote": (av_markup(2.0), "x")})
    client, handler = eng.open_session("srv1", "u", "pw")
    box = {}

    def script():
        from repro.server.accounts import SubscriptionForm

        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required":
            yield from client.subscribe(SubscriptionForm(
                real_name="U", address="x", email="u@e.org"))
        resp = yield from client.request_document("ghost")
        box["resp"] = resp

    proc = eng.sim.process(script())
    eng.sim.run(until=proc)
    assert box["resp"].msg_type == "request-reject"


def test_locate_document_directory():
    eng = ServiceEngine()
    eng.add_server("srv1", documents={"a": (av_markup(1.0), "x")})
    eng.add_server("srv2", documents={"b": (av_markup(1.0), "x")})
    s1 = eng.servers["srv1"]
    assert s1.locate_document("a") == "srv1"
    assert s1.locate_document("b") == "srv2"
    assert s1.locate_document("zzz") is None


# ------------------------------------------------------------- traces
def sample_log():
    log = PlayoutEventLog()
    for i in range(10):
        log.record(i * 0.1, "v", PlayoutEventKind.FRAME)
    log.record(0.35, "v", PlayoutEventKind.GAP)
    log.record(0.95, "v", PlayoutEventKind.GAP)
    log.record(0.5, "a", PlayoutEventKind.GAP)
    return log


def test_gap_timeline_filters_by_stream():
    log = sample_log()
    assert gap_timeline(log, "v") == [0.35, 0.95]
    assert gap_timeline(log, "a") == [0.5]
    assert gap_timeline(log, "zzz") == []


def test_event_rate_series_bins():
    log = sample_log()
    series = event_rate_series(log, "v", PlayoutEventKind.GAP, bin_s=0.5)
    assert sum(c for _, c in series) == 2
    assert series[0][1] == 1  # the 0.35 gap in the first bin
    assert event_rate_series(log, "none", PlayoutEventKind.GAP) == []
    with pytest.raises(ValueError):
        event_rate_series(log, "v", PlayoutEventKind.GAP, bin_s=0)


def test_event_rate_series_single_instant_gets_one_bin():
    log = PlayoutEventLog()
    log.record(2.0, "v", PlayoutEventKind.FRAME)
    log.record(2.0, "v", PlayoutEventKind.GAP)
    series = event_rate_series(log, "v", PlayoutEventKind.GAP, bin_s=1.0)
    assert series == [(2.0, 1)]
    frames = event_rate_series(log, "v", PlayoutEventKind.FRAME, bin_s=0.25)
    assert frames == [(2.0, 1)]


def test_event_rate_series_exact_multiple_span():
    log = PlayoutEventLog()
    log.record(0.0, "v", PlayoutEventKind.FRAME)
    log.record(2.0, "v", PlayoutEventKind.FRAME)
    series = event_rate_series(log, "v", PlayoutEventKind.FRAME, bin_s=1.0)
    # Span of exactly 2.0 s at 1.0 s bins keeps its historical 3-bin
    # shape (the epsilon guard rounds the boundary up, so the last
    # event never falls off the final edge).
    assert len(series) == 3
    assert sum(c for _, c in series) == 2


def test_occupancy_series_zero_order_hold():
    samples = [(0.0, 1.0), (1.0, 3.0), (2.5, 0.5)]
    series = occupancy_series(samples, step_s=0.5)
    d = dict(series)
    assert d[0.0] == 1.0
    assert d[0.5] == 1.0  # holds until the next sample
    assert d[1.0] == 3.0
    assert d[2.0] == 3.0
    assert d[2.5] == 0.5
    assert occupancy_series([], 0.5) == []
    with pytest.raises(ValueError):
        occupancy_series(samples, step_s=0)


def test_staircase_at():
    traj = [(1.0, 1), (5.0, 2), (9.0, 1)]
    assert staircase_at(traj, 0.5) == 0.0
    assert staircase_at(traj, 1.0) == 1
    assert staircase_at(traj, 7.0) == 2
    assert staircase_at(traj, 100.0) == 1
    assert staircase_at([], 5.0, initial=3.0) == 3.0
