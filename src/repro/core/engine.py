"""Full-service composition and session orchestration.

Topology (the simulated "broadband network" of the paper):

    client ── access link ── router ── backbone links ── server hosts
                                └───── cross-traffic sources

Each multimedia server host carries the multimedia server and its
media servers (the paper allows them to share a host); cross traffic
loads the router→client access link, the path all media share.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.client.metrics import PlayoutEventKind, PlayoutEventLog
from repro.client.presentation import PresentationScheduler, StreamBinding
from repro.client.qos_manager import ClientQoSManager
from repro.des import Simulator
from repro.des.rng import RngRegistry
from repro.hml.parser import parse
from repro.media.encodings import CodecRegistry, default_registry
from repro.media.store import MediaStore
from repro.media.types import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    MediaType,
)
from repro.model.scenario import PresentationScenario
from repro.net.channel import ReliableReceiver
from repro.net.impairments import GilbertElliottLoss
from repro.net.topology import Network
from repro.net.traffic import OnOffTrafficSource, PoissonTrafficSource
from repro.rtp.session import RtpReceiver
from repro.core.config import EngineConfig
from repro.core.results import SessionResult, StreamResult
from repro.server.accounts import AccountRegistry
from repro.server.admission import AdmissionController
from repro.server.database import MultimediaDatabase
from repro.server.media_server import MediaServer
from repro.server.multimedia_server import MultimediaServer
from repro.service.messages import ControlChannel
from repro.service.session import ClientSession, ServerSessionHandler

__all__ = ["ServiceEngine", "ClientComposition"]

_session_ids = itertools.count(1)


class ServiceEngine:
    """Builds the whole system and runs on-demand sessions."""

    CLIENT = "client"
    ROUTER = "router"

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.sim = Simulator()
        self.rng = RngRegistry(seed=self.config.seed)
        self.codecs: CodecRegistry = default_registry()
        self.network = Network(self.sim)
        self.accounts = AccountRegistry()
        self.servers: dict[str, MultimediaServer] = {}
        self._channel_port = 10_000
        self._client_port = 40_000
        self._traffic_nodes = 0
        self._build_backbone()

    # -- topology -----------------------------------------------------------
    def _build_backbone(self) -> None:
        cfg = self.config
        self.network.add_node(self.CLIENT)
        self.network.add_node(self.ROUTER)
        loss = None
        if cfg.loss_p_gb > 0:
            loss = GilbertElliottLoss(
                self.rng.stream("access-loss"),
                p_gb=cfg.loss_p_gb, p_bg=cfg.loss_p_bg, loss_bad=cfg.loss_bad,
            )
        # Downstream (router -> client) is the shared bottleneck.
        self.network.add_link(
            self.ROUTER, self.CLIENT, cfg.access_rate_bps, cfg.access_delay_s,
            queue_packets=cfg.access_queue_packets, loss_model=loss,
            atm=cfg.atm_access,
        )
        self.network.add_link(
            self.CLIENT, self.ROUTER, cfg.access_rate_bps, cfg.access_delay_s,
            queue_packets=cfg.access_queue_packets, atm=cfg.atm_access,
        )
        for tc in cfg.traffic:
            self._add_traffic(tc)

    def _add_traffic(self, tc) -> None:
        self._traffic_nodes += 1
        node = f"xsrc{self._traffic_nodes}"
        self.network.add_node(node)
        self.network.add_duplex_link(
            node, self.ROUTER, self.config.backbone_rate_bps,
            0.001, queue_packets=self.config.backbone_queue_packets,
        )
        rng = self.rng.stream(f"traffic:{node}")
        if tc.kind == "poisson":
            PoissonTrafficSource(
                self.network, node, self.CLIENT, rng, rate_bps=tc.rate_bps,
                packet_bytes=tc.packet_bytes, start_at=tc.start_at,
                stop_at=tc.stop_at,
            )
        else:
            OnOffTrafficSource(
                self.network, node, self.CLIENT, rng,
                peak_rate_bps=tc.rate_bps, on_mean_s=tc.on_mean_s,
                off_mean_s=tc.off_mean_s, packet_bytes=tc.packet_bytes,
                start_at=tc.start_at, stop_at=tc.stop_at,
            )

    # -- service construction ----------------------------------------------
    def add_server(
        self,
        name: str,
        documents: dict[str, tuple[str, str]] | None = None,
        description: str = "",
    ) -> MultimediaServer:
        """Add a multimedia server host.

        ``documents`` maps document name → (markup, topic); media
        stores are provisioned automatically from the scenarios'
        content indexes (synthetic objects per DESIGN.md).
        """
        if name in self.servers:
            raise ValueError(f"server {name!r} already exists")
        node_id = f"host:{name}"
        self.network.add_node(node_id)
        self.network.add_duplex_link(
            node_id, self.ROUTER, self.config.backbone_rate_bps,
            self.config.backbone_delay_s,
            queue_packets=self.config.backbone_queue_packets,
        )
        database = MultimediaDatabase()
        media_servers: dict[str, MediaServer] = {}
        server = MultimediaServer(
            self.sim, name, node_id, database, self.accounts, self.codecs,
            media_servers,
            admission=AdmissionController(self.config.admission_capacity_bps),
            grading_policy=self.config.grading_policy,
            description=description,
        )
        self.servers[name] = server
        for peer in self.servers.values():
            if peer is not server:
                peer.add_peer(server)
                server.add_peer(peer)
        if documents:
            for doc_name, (markup, topic) in documents.items():
                self.add_document(name, doc_name, markup, topic)
        return server

    def add_document(self, server_name: str, doc_name: str, markup: str,
                     topic: str = "general") -> None:
        """Store a document and provision its media objects."""
        server = self.servers[server_name]
        server.database.add_markup(doc_name, markup, topic=topic)
        scenario = PresentationScenario.from_document(parse(markup))
        for spec in scenario.streams:
            ms = self._media_server_for(server, spec.locator.server or
                                        f"{server_name}-media")
            path = spec.locator.path
            if path in ms.store:
                continue
            if spec.is_continuous:
                duration = spec.entry.duration or 60.0
                codec = self.codecs.default_for(spec.media_type)
                ms.store.add(
                    ContinuousMediaObject(path, spec.media_type, codec.name,
                                          duration_s=duration)
                )
            else:
                size = (self.config.image_bytes
                        if spec.media_type is MediaType.IMAGE
                        else self.config.text_bytes)
                ms.store.add(
                    DiscreteMediaObject(path, spec.media_type, "GIF",
                                        size_bytes=size)
                )

    def _media_server_for(self, server: MultimediaServer,
                          media_name: str) -> MediaServer:
        """Create (or return) a media server.

        By default media servers share their multimedia server's host
        (§6.1); with ``separate_media_hosts`` each gets its own node
        behind the router, so each media type takes its own network
        path to the client.
        """
        if media_name not in server.media_servers:
            if self.config.separate_media_hosts:
                node_id = f"host:{media_name}"
                if node_id not in self.network.nodes:
                    self.network.add_node(node_id)
                    self.network.add_duplex_link(
                        node_id, self.ROUTER,
                        self.config.backbone_rate_bps,
                        self.config.backbone_delay_s,
                        queue_packets=self.config.backbone_queue_packets,
                    )
            else:
                node_id = server.node_id
            store = MediaStore(self.codecs, self.rng)
            server.media_servers[media_name] = MediaServer(
                self.sim, self.network, media_name, node_id, store
            )
        return server.media_servers[media_name]

    # -- client construction ---------------------------------------------------
    def open_session(self, server_name: str, user_id: str,
                     secret: str) -> tuple[ClientSession, ServerSessionHandler]:
        """Create the control channel + protocol endpoints to a server."""
        server = self.servers[server_name]
        port = self._channel_port
        self._channel_port += 10
        channel = ControlChannel(self.network, self.CLIENT, server.node_id,
                                 base_port=port)
        session_id = f"sess-{next(_session_ids)}"
        handler = ServerSessionHandler(
            server, channel.server, session_id, self.CLIENT,
            suspend_grace_s=self.config.suspend_grace_s,
            flow_lead_s=self.config.flow_lead_s,
        )
        client = ClientSession(self.sim, channel.client, user_id, secret)
        return client, handler

    def build_client_composition(self, markup: str,
                                 server: MultimediaServer,
                                 ) -> "ClientComposition":
        return ClientComposition(self, markup, server)

    # -- convenience: full scripted run -------------------------------------------
    def _session_script(self, client, handler, server, document: str,
                        result_box: dict[str, Any], contract: str,
                        subscribe_first: bool, start_delay_s: float = 0.0):
        """The canonical session coroutine: connect → request → view
        → disconnect, leaving its artefacts in ``result_box``."""
        from repro.server.accounts import SubscriptionForm

        cfg = self.config
        user_id = client.user_id
        if start_delay_s > 0:
            yield self.sim.timeout(start_delay_s)
        resp = yield from client.connect()
        if resp.msg_type == "subscribe-required" and subscribe_first:
            form = SubscriptionForm(
                real_name=user_id.title(), address="somewhere",
                email=f"{user_id}@example.org",
            )
            resp = yield from client.subscribe(form, contract=contract)
        if resp.msg_type != "connect-ok":
            result_box["error"] = resp.body.get("reason", "rejected")
            return
        resp = yield from client.request_document(document)
        if resp.msg_type != "scenario":
            result_box["error"] = resp.body.get("reason", "no scenario")
            return
        comp = self.build_client_composition(resp.body["markup"], server)
        ready = yield from client.send_ready(
            comp.rtp_ports, comp.discrete_ports, lead_s=cfg.flow_lead_s
        )
        comp.attach_feedback(ready.body["rtcp_port"], server.node_id)
        done = comp.start()
        yield done
        client.end_presentation()
        comp.qos.stop()
        # Capture server-side state that disconnect tears down.
        if handler.session is not None:
            mgr = handler.session.qos_manager
            result_box["decisions"] = list(mgr.decisions)
            result_box["trajectories"] = {
                sid: conv.grade_trajectory()
                for sid, conv in mgr.converters().items()
                if sid in comp.receivers
            }
        charge = yield from client.disconnect()
        result_box["comp"] = comp
        result_box["charge"] = charge

    def run_full_session(
        self,
        server_name: str,
        document: str,
        user_id: str = "user1",
        secret: str = "pw",
        contract: str = "basic",
        subscribe_first: bool = True,
        horizon_s: float = 600.0,
    ) -> SessionResult:
        """Script a complete session: connect → request → view → bye."""
        server = self.servers[server_name]
        client, handler = self.open_session(server_name, user_id, secret)
        result_box: dict[str, Any] = {}
        proc = self.sim.process(
            self._session_script(client, handler, server, document,
                                 result_box, contract, subscribe_first),
            name="scripted-session",
        )
        guard = self.sim.any_of([proc, self.sim.timeout(horizon_s)])
        self.sim.run(until=guard)
        if not proc.triggered:
            return SessionResult(document=document, completed=False,
                                 startup_latency_s=None, charge=0.0,
                                 events=["horizon reached"])
        self.sim.run(until=self.sim.now + 1.0)
        if "error" in result_box:
            return SessionResult(document=document, completed=False,
                                 startup_latency_s=None, charge=0.0,
                                 events=[result_box["error"]])
        comp: ClientComposition = result_box["comp"]
        return comp.collect_result(
            document, charge=result_box["charge"],
            grading_decisions=result_box.get("decisions", []),
            grade_trajectories=result_box.get("trajectories", {}),
        )


    def run_concurrent_sessions(
        self,
        server_name: str,
        document: str,
        n_sessions: int,
        stagger_s: float = 0.5,
        contract: str = "basic",
        horizon_s: float = 600.0,
    ) -> list[SessionResult]:
        """Run ``n_sessions`` simultaneous viewers of one document.

        Sessions start ``stagger_s`` apart and share the access-link
        bottleneck; each gets its own control channel, buffers, RTP
        ports and server-side QoS manager. Returns one
        :class:`SessionResult` per session (uncompleted sessions get
        ``completed=False``).
        """
        if n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        server = self.servers[server_name]
        boxes: list[dict[str, Any]] = []
        procs = []
        for i in range(n_sessions):
            client, handler = self.open_session(
                server_name, f"user{i + 1}", "pw"
            )
            box: dict[str, Any] = {}
            boxes.append(box)
            procs.append(self.sim.process(
                self._session_script(client, handler, server, document,
                                     box, contract, True,
                                     start_delay_s=i * stagger_s),
                name=f"session-{i + 1}",
            ))
        guard = self.sim.any_of(
            [self.sim.all_of(procs), self.sim.timeout(horizon_s)]
        )
        self.sim.run(until=guard)
        self.sim.run(until=self.sim.now + 1.0)
        results: list[SessionResult] = []
        for box in boxes:
            if "comp" in box:
                comp: ClientComposition = box["comp"]
                results.append(comp.collect_result(
                    document, charge=box.get("charge", 0.0),
                    grading_decisions=box.get("decisions", []),
                    grade_trajectories=box.get("trajectories", {}),
                ))
            else:
                results.append(SessionResult(
                    document=document, completed=False,
                    startup_latency_s=None, charge=0.0,
                    events=[box.get("error", "did not finish")],
                ))
        return results

    def run_autoplay_sequence(
        self,
        server_name: str,
        first_document: str,
        user_id: str = "user1",
        secret: str = "pw",
        max_documents: int = 10,
        horizon_s: float = 600.0,
    ) -> list[dict[str, Any]]:
        """Follow the author's pre-orchestrated sequence (§3).

        Plays ``first_document`` and auto-follows its AT-timed
        hyperlink when the time elapses — "this feature can preserve
        the sequential nature or 'writer's way' of presentation, in
        the absence of user involvement" — until a document has no
        timed link or ``max_documents`` is reached. Returns one entry
        per visited document with its outcome and navigation history.
        """
        from repro.server.accounts import SubscriptionForm
        from repro.service.history import NavigationHistory

        server = self.servers[server_name]
        client, handler = self.open_session(server_name, user_id, secret)
        history = NavigationHistory()
        visits: list[dict[str, Any]] = []

        def script():
            resp = yield from client.connect()
            if resp.msg_type == "subscribe-required":
                resp = yield from client.subscribe(SubscriptionForm(
                    real_name=user_id.title(), address="somewhere",
                    email=f"{user_id}@example.org"))
            if resp.msg_type != "connect-ok":
                return
            current = first_document
            via_link = False
            for _ in range(max_documents):
                resp = yield from client.request_document(current,
                                                          via_link=via_link)
                via_link = True
                if resp.msg_type != "scenario":
                    break
                history.visit(current)
                comp = self.build_client_composition(resp.body["markup"],
                                                     server)
                ready = yield from client.send_ready(
                    comp.rtp_ports, comp.discrete_ports,
                    lead_s=self.config.flow_lead_s,
                )
                comp.attach_feedback(ready.body["rtcp_port"],
                                     server.node_id)
                done = comp.start()
                link = comp.scenario.timed_link()
                interrupted = False
                if link is not None and link.at_time is not None:
                    fire_at = comp.scheduler.initial_delay_s + link.at_time
                    timer = self.sim.timeout(fire_at)
                    yield self.sim.any_of([done, timer])
                    if not done.triggered:
                        comp.scheduler.interrupt()
                        interrupted = True
                        yield from client.stop_streams()
                else:
                    yield done
                comp.qos.stop()
                visits.append({
                    "document": current,
                    "interrupted": interrupted,
                    "frames": sum(
                        comp.log.summary(s.stream_id)["frames"]
                        for s in comp.scenario.continuous_streams()
                    ),
                })
                if link is None:
                    break
                # Follow the timed link (state is still VIEWING whether
                # the presentation completed or was interrupted).
                client.follow_link_local()
                current = link.target_document
            yield from client.disconnect()

        proc = self.sim.process(script(), name="autoplay")
        guard = self.sim.any_of([proc, self.sim.timeout(horizon_s)])
        self.sim.run(until=guard)
        self.sim.run(until=self.sim.now + 1.0)
        return [dict(v, history=history.entries()) for v in visits]


class ClientComposition:
    """The browser's machinery for one document presentation."""

    def __init__(self, engine: ServiceEngine, markup: str,
                 server: MultimediaServer) -> None:
        self.engine = engine
        self.sim = engine.sim
        self.network = engine.network
        self.server = server
        cfg = engine.config
        self.scenario = PresentationScenario.from_markup(markup)
        self.log = PlayoutEventLog()
        self.qos = ClientQoSManager(self.network, engine.CLIENT,
                                    report_interval_s=cfg.rtcp_interval_s,
                                    adaptive=cfg.rtcp_adaptive)
        self.receivers: dict[str, RtpReceiver] = {}
        self.rtp_ports: dict[str, int] = {}
        self.discrete_ports: dict[str, int] = {}
        self._discrete_rx: list[ReliableReceiver] = []

        bindings: dict[str, StreamBinding] = {}
        for spec in self.scenario.continuous_streams():
            codec = engine.codecs.default_for(spec.media_type)
            bindings[spec.stream_id] = StreamBinding(
                spec.stream_id, codec.clock_rate,
                codec.best.frame_interval_s,
            )
        self.scheduler = PresentationScheduler(
            self.sim, self.scenario, bindings, log=self.log,
            time_window_s=cfg.time_window_s,
            skew_enabled=cfg.skew_control,
            monitor_enabled=cfg.buffer_monitor,
            sync_threshold_s=cfg.sync_threshold_s,
        )
        for spec in self.scenario.continuous_streams():
            sid = spec.stream_id
            port = engine._client_port
            engine._client_port += 1
            codec = engine.codecs.default_for(spec.media_type)
            self.receivers[sid] = RtpReceiver(
                self.network, engine.CLIENT, port, codec.clock_rate, sid,
                on_frame=self.scheduler.frame_sink(sid),
            )
            self.rtp_ports[sid] = port
        for spec in self.scenario.discrete_streams():
            sid = spec.stream_id
            port = engine._client_port
            engine._client_port += 1
            rx = ReliableReceiver(
                self.network, engine.CLIENT, port,
                on_message=lambda data, size, flow, _sid=sid:
                    self.scheduler.mark_loaded(_sid),
            )
            self._discrete_rx.append(rx)
            self.discrete_ports[sid] = port

    def attach_feedback(self, server_rtcp_port: int,
                        server_node: str) -> None:
        """Start RTCP receiver reports toward the server's sink."""
        ssrc = 0
        for sid, receiver in sorted(self.receivers.items()):
            ssrc += 1
            port = self.engine._client_port
            self.engine._client_port += 1
            self.qos.register_stream(receiver, port, server_node,
                                     server_rtcp_port, ssrc=ssrc)

    def start(self):
        """Begin presentation; returns the all-finished event."""
        return self.scheduler.start()

    # -- results -------------------------------------------------------------
    def collect_result(self, document: str, charge: float = 0.0,
                       grading_decisions: list | None = None,
                       grade_trajectories: dict | None = None,
                       completed: bool = True) -> SessionResult:
        result = SessionResult(
            document=document,
            completed=completed,
            startup_latency_s=self.scheduler.startup_latency_s(),
            charge=charge,
            skew=dict(self.scheduler.skew_series()),
            protocol_bytes=dict(self.network.tap.bytes_by_protocol),
            log=self.log,
        )
        for spec in self.scenario.streams:
            sid = spec.stream_id
            summary = self.log.summary(sid)
            sr = StreamResult(
                stream_id=sid,
                media_type=spec.media_type.value,
                frames_played=int(summary["frames"]),
                gaps=int(summary["gaps"]),
                duplicates=int(summary["duplicates"]),
                drops=int(summary["drops"]),
                gap_ratio=summary["gap_ratio"],
                mean_grade=summary["mean_grade"],
            )
            rx = self.receivers.get(sid)
            if rx is not None:
                sr.packets_received = rx.stats.packets_received
                sr.packets_lost = rx.stats.cumulative_lost
                sr.mean_delay_s = rx.stats.mean_delay_s
                sr.jitter_s = rx.jitter.jitter_s
            buf = self.scheduler.buffers.get(sid)
            if buf is not None:
                sr.buffer_overflow_drops = buf.stats.overflow_drops
                sr.buffer_underflows = buf.stats.underflow_events
                sr.time_window_s = buf.time_window_s
            result.streams[sid] = sr
        if grading_decisions:
            result.grading_decisions = list(grading_decisions)
        if grade_trajectories:
            result.grade_trajectories = dict(grade_trajectories)
        return result
