"""AST → markup text (the inverse of :func:`repro.hml.parse`).

``parse(serialize(doc)) == doc`` for every valid document — the
round-trip property the test suite checks with hypothesis. This is
what the servers use to ship presentation scenarios over the wire as
text files (§3: "the representation of a document by the markup
language is actually a text file").
"""

from __future__ import annotations

from repro.hml.ast import (
    AudioElement,
    AudioVideoElement,
    Heading,
    HmlDocument,
    HmlElement,
    HyperLink,
    ImageElement,
    LinkKind,
    Paragraph,
    Separator,
    TextBlock,
    VideoElement,
)

__all__ = ["serialize"]


def _fmt_num(x: float) -> str:
    return f"{x:g}"


def _quote(s: str) -> str:
    return f'"{s}"'


def _time_attrs(startime: float, duration: float | None) -> str:
    out = f"STARTIME={_fmt_num(startime)}"
    if duration is not None:
        out += f" DURATION={_fmt_num(duration)}"
    return out


def _note(note: str) -> str:
    return f" NOTE={_quote(note)}" if note else ""


def _serialize_element(e: HmlElement) -> str:
    if isinstance(e, Heading):
        return f"<H{e.level}> {e.text} </H{e.level}>"
    if isinstance(e, Paragraph):
        return "<PAR>"
    if isinstance(e, Separator):
        return "<SEP>"
    if isinstance(e, TextBlock):
        parts = ["<TEXT>"]
        for span in e.spans:
            opens = "".join(
                f"<{t}> "
                for t, on in (("B", span.bold), ("I", span.italic),
                              ("U", span.underline))
                if on
            )
            closes = "".join(
                f" </{t}>"
                for t, on in (("U", span.underline), ("I", span.italic),
                              ("B", span.bold))
                if on
            )
            parts.append(f"{opens}{span.text}{closes}")
        parts.append("</TEXT>")
        return " ".join(parts)
    if isinstance(e, ImageElement):
        extra = ""
        if e.height is not None:
            extra += f" HEIGHT={e.height}"
        if e.width is not None:
            extra += f" WIDTH={e.width}"
        if e.where is not None:
            extra += f" WHERE=({e.where[0]},{e.where[1]})"
        if e.repeat != 1:
            extra += f" REPEAT={e.repeat}"
        return (
            f"<IMG> {_time_attrs(e.startime, e.duration)}{extra} "
            f"SOURCE={e.source} ID={e.element_id}{_note(e.note)} </IMG>"
        )
    if isinstance(e, AudioElement):
        rep = f" REPEAT={e.repeat}" if e.repeat != 1 else ""
        return (
            f"<AU> {_time_attrs(e.startime, e.duration)}{rep} "
            f"SOURCE={e.source} ID={e.element_id}{_note(e.note)} </AU>"
        )
    if isinstance(e, VideoElement):
        rep = f" REPEAT={e.repeat}" if e.repeat != 1 else ""
        return (
            f"<VI> {_time_attrs(e.startime, e.duration)}{rep} "
            f"SOURCE={e.source} ID={e.element_id}{_note(e.note)} </VI>"
        )
    if isinstance(e, AudioVideoElement):
        dur = f" DURATION={_fmt_num(e.duration)}" if e.duration is not None else ""
        return (
            f"<AU_VI> STARTIME={_fmt_num(e.audio_startime)} "
            f"STARTIME={_fmt_num(e.video_startime)}{dur} "
            f"SOURCE={e.audio_source} SOURCE={e.video_source} "
            f"ID={e.audio_id} ID={e.video_id}{_note(e.note)} </AU_VI>"
        )
    if isinstance(e, HyperLink):
        at = f"AT {_fmt_num(e.at_time)} " if e.at_time is not None else ""
        # KIND is serialized explicitly whenever it differs from what the
        # parser would infer (timed links default to sequential).
        inferred = LinkKind.SEQUENTIAL if e.at_time is not None \
            else LinkKind.EXPLORATIONAL
        kind = f" KIND={e.kind.value}" if e.kind is not inferred else ""
        return f"<HLINK> {at}{e.target}{kind}{_note(e.note)} </HLINK>"
    raise TypeError(f"cannot serialize {type(e).__name__}")


def serialize(doc: HmlDocument) -> str:
    """Render a document AST as canonical HML markup."""
    lines = [f"<TITLE> {doc.title} </TITLE>"]
    lines.extend(_serialize_element(e) for e in doc.elements)
    return "\n".join(lines) + "\n"
