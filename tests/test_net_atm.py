"""Tests for the ATM cell-layer link (§7 future-work testbed)."""

import pytest

from repro.core import EngineConfig, ServiceEngine
from repro.core.experiments import av_markup
from repro.des import RngRegistry, Simulator
from repro.net import GilbertElliottLoss, Network, Packet
from repro.net.atm import AtmLink, CELL_BYTES, cells_for


def test_cells_for():
    assert cells_for(1) == 1
    assert cells_for(48) == 1
    assert cells_for(49) == 2
    assert cells_for(1400) == 30
    with pytest.raises(ValueError):
        cells_for(0)


def test_cell_tax_slows_serialization():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    link = net.add_link("a", "b", rate_bps=1_000_000, delay_s=0.0, atm=True)
    assert isinstance(link, AtmLink)
    got = []
    net.node("b").bind(1, lambda p: got.append(sim.now))
    # 480 bytes = 10 cells = 530 wire bytes at 1 Mb/s = 4.24 ms.
    net.send(Packet(src="a", dst="b", size_bytes=480, protocol="UDP",
                    flow_id="f", dst_port=1))
    sim.run()
    assert got[0] == pytest.approx(10 * CELL_BYTES * 8 / 1e6)
    assert link.cells_tx == 10
    assert link.cell_tax == pytest.approx(1 - 48 / 53)


def test_cell_loss_amplification():
    """A small per-cell loss rate destroys large packets much more
    often than small ones — the classic ATM effect."""

    def run(size_bytes):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.add_node("b")
        rng = RngRegistry(seed=4).stream(f"ge{size_bytes}")
        ge = GilbertElliottLoss(rng, p_gb=1.0, p_bg=0.0,
                                loss_good=0.01, loss_bad=0.01)
        net.add_link("a", "b", 100e6, 0.0, loss_model=ge, atm=True)
        got = []
        net.node("b").bind(1, lambda p: got.append(p.seq))

        def sender():
            for i in range(500):
                net.send(Packet(src="a", dst="b", size_bytes=size_bytes,
                                protocol="UDP", flow_id="f", dst_port=1,
                                seq=i))
                yield sim.timeout(0.001)

        sim.process(sender())
        sim.run()
        return 1.0 - len(got) / 500

    small_loss = run(48)  # 1 cell/packet
    big_loss = run(1440)  # 30 cells/packet
    assert small_loss == pytest.approx(0.01, abs=0.01)
    # P(packet lost) = 1-(1-p)^30 ~ 26%
    assert big_loss > 5 * small_loss
    assert big_loss == pytest.approx(1 - 0.99**30, abs=0.08)


def test_full_service_over_atm_access():
    """The whole on-demand service runs unchanged over an ATM access
    link — the paper's future-work deployment target."""
    eng = ServiceEngine(EngineConfig(atm_access=True))
    eng.add_server("srv1", documents={"doc": (av_markup(4.0), "demo")})
    link = eng.network.link(ServiceEngine.ROUTER, ServiceEngine.CLIENT)
    assert isinstance(link, AtmLink)
    result = eng.orchestrator.run_full_session("srv1", "doc")
    assert result.completed
    assert result.total_gap_ratio() < 0.05
    assert link.cells_tx > 0


def test_atm_vs_plain_wire_time():
    """Same traffic pays the ~10% cell tax in serialization time."""

    def busy_time(atm):
        sim = Simulator()
        net = Network(sim)
        net.add_node("a")
        net.add_node("b")
        link = net.add_link("a", "b", 10e6, 0.001, atm=atm)
        net.node("b").bind(1, lambda p: None)
        for i in range(100):
            net.send(Packet(src="a", dst="b", size_bytes=1440,
                            protocol="UDP", flow_id="f", dst_port=1, seq=i))
        sim.run()
        return link.stats.busy_time

    assert busy_time(True) > 1.08 * busy_time(False)
