"""The Hermes browser facilities (§6.2.3).

"Among the several facilities that can be supported by the browser
are ... moving backward and forward in the list of already viewed
lessons ... Interactive operations can be triggered during the
presentation of the lesson." Plus §5's annotation facility: "the
user may also annotate the selected document with his own remarks."

:class:`HermesBrowser` wraps a :class:`~repro.hermes.service.HermesService`
with per-user navigation history and an annotation store.
"""

from __future__ import annotations

from repro.core.results import SessionResult
from repro.hermes.service import HermesService
from repro.service.annotations import Annotation, AnnotationStore
from repro.service.history import NavigationHistory

__all__ = ["HermesBrowser"]


class HermesBrowser:
    """One user's browser: viewing, history, annotations."""

    def __init__(self, service: HermesService, user_id: str,
                 contract: str = "basic") -> None:
        self.service = service
        self.user_id = user_id
        self.contract = contract
        self.history = NavigationHistory()
        self.annotations = AnnotationStore(author=user_id)
        self.results: dict[str, SessionResult] = {}

    # -- viewing -----------------------------------------------------------
    def view(self, lesson_name: str,
             server: str | None = None) -> SessionResult:
        """View a lesson (resolving its server from the catalogue if
        not given) and record it in the history."""
        if server is None:
            lesson = self.service.lessons.get(lesson_name)
            if lesson is None:
                raise KeyError(f"unknown lesson {lesson_name!r}")
            server = self.service.pick_server_for(lesson.topic)
        result = self.service.view_lesson(server, lesson_name,
                                          user_id=self.user_id,
                                          contract=self.contract)
        self.history.visit(lesson_name)
        self.results[lesson_name] = result
        return result

    def back(self) -> SessionResult:
        """Re-view the previous lesson in the history (menu button)."""
        lesson = self.history.back()
        result = self.service.view_lesson(
            self.service.pick_server_for(self.service.lessons[lesson].topic),
            lesson, user_id=self.user_id, contract=self.contract,
        )
        self.results[lesson] = result
        return result

    def forward(self) -> SessionResult:
        lesson = self.history.forward()
        result = self.service.view_lesson(
            self.service.pick_server_for(self.service.lessons[lesson].topic),
            lesson, user_id=self.user_id, contract=self.contract,
        )
        self.results[lesson] = result
        return result

    @property
    def current_lesson(self) -> str | None:
        return self.history.current

    # -- annotations -------------------------------------------------------
    def annotate(self, text: str, element_id: str | None = None,
                 presentation_time_s: float | None = None) -> Annotation:
        """Annotate the currently viewed lesson."""
        lesson = self.history.current
        if lesson is None:
            raise RuntimeError("no lesson is being viewed")
        return self.annotations.annotate(
            lesson, text, now=self.service.engine.sim.now,
            element_id=element_id,
            presentation_time_s=presentation_time_s,
        )

    def notes_for(self, lesson_name: str) -> list[Annotation]:
        return self.annotations.for_document(lesson_name)
