"""Shared-flow batching, edge-replica routing, and periodic broadcast.

The delivery-side acceptance tests for the CDN refactor:

* N viewers batched onto one shared flow receive *byte-identical*
  frame sequences to what an independent per-session flow (same seed)
  would have delivered — sharing is invisible to the client stack;
* sharing cuts origin egress (the whole point);
* sessions land on their region's media replica, and failover under a
  replica crash falls back to the origin;
* a periodic broadcast's origin egress is constant in audience size.
"""

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.core.experiments import av_markup
from repro.faults.plan import FaultPlan, ServerCrashFault
from repro.net import cdn_stack
from repro.obs.tracer import RecordingTracer
from repro.server.broadcast import HotSet, quasi_harmonic_schedule


DOC = {"doc": (av_markup(4.0), "demo")}


def _frame_log(tracer, session_id):
    """One session's delivered frames, per stream: [(seq, bytes), ...].

    Keyed per stream because the A/V *interleaving* in wall time is
    allowed to shift (a shared flow starts a batch-window later); the
    frame sequence each stream delivers must not.
    """
    log = {}
    for e in tracer.select(kind="rtp.send", session=session_id):
        log.setdefault(e.name, []).append((e.args["frame"],
                                           e.args["bytes"]))
    return log


def _egress_bytes(eng, node_id):
    return sum(
        link.stats.tx_bytes
        for (src, _dst), link in eng.network.links.items()
        if src == node_id
    )


def _media_hosts(eng):
    return {ms.node_id for ms in eng.servers["srv1"].all_media_servers()}


# -- byte-identity ------------------------------------------------------------

def test_shared_subscribers_get_byte_identical_frame_sequences():
    # Shared run: 3 viewers batched onto one flow per stream.
    shared_tracer = RecordingTracer()
    eng = ServiceEngine(
        EngineConfig(seed=11, shared_flows=True), tracer=shared_tracer
    )
    eng.add_server("srv1", documents=DOC)
    nodes = eng.client_nodes(3)
    results = eng.orchestrator.run_concurrent_sessions(
        "srv1", "doc", 3, stagger_s=0.0, client_nodes=nodes
    )
    assert all(r.completed for r in results)
    sessions = sorted({e.session for e in
                       shared_tracer.select(kind="rtp.send")})
    assert len(sessions) == 3
    logs = [_frame_log(shared_tracer, s) for s in sessions]
    assert logs[0], "expected rtp.send events per subscriber"
    # every subscriber saw the same (stream, frame, bytes) sequence
    assert logs[0] == logs[1] == logs[2]

    # Reference run: a FRESH engine, same seed, one independent flow.
    # (Fresh because trace RNG streams are cached per name: the first
    # consumer in each engine sees the same draws.)
    ref_tracer = RecordingTracer()
    ref = ServiceEngine(EngineConfig(seed=11), tracer=ref_tracer)
    ref.add_server("srv1", documents=DOC)
    node = ref.client_nodes(1)[0]
    r = ref.orchestrator.run_full_session("srv1", "doc", client_node=node)
    assert r.completed
    (ref_session,) = {e.session for e in ref_tracer.select(kind="rtp.send")}
    assert _frame_log(ref_tracer, ref_session) == logs[0]


def test_shared_flow_traces_and_metrics():
    tracer = RecordingTracer()
    eng = ServiceEngine(
        EngineConfig(seed=3, shared_flows=True), tracer=tracer
    )
    eng.add_server("srv1", documents=DOC)
    nodes = eng.client_nodes(2)
    results = eng.orchestrator.run_concurrent_sessions(
        "srv1", "doc", 2, stagger_s=0.0, client_nodes=nodes
    )
    assert all(r.completed for r in results)
    counts = tracer.kind_counts()
    # one open + one join per stream (A and V), one start each
    assert counts.get("sflow.open") == 2
    assert counts.get("sflow.join") == 2
    assert counts.get("sflow.start") == 2
    joins = sum(
        int(c.value)
        for labels, c in tracer.metrics.series("shared_flow_joins")
    )
    assert joins == 4


def test_shared_flow_cuts_origin_egress():
    def egress(shared):
        eng = ServiceEngine(EngineConfig(seed=7, shared_flows=shared))
        eng.add_server("srv1", documents=DOC)
        nodes = eng.client_nodes(4)
        results = eng.orchestrator.run_concurrent_sessions(
            "srv1", "doc", 4, stagger_s=0.0, client_nodes=nodes
        )
        assert all(r.completed for r in results)
        return sum(_egress_bytes(eng, host) for host in _media_hosts(eng))

    independent = egress(False)
    batched = egress(True)
    # 4 viewers on one flow: media-host egress shrinks toward 1/4
    # (carrier overhead and control traffic keep it above exactly 4x)
    assert batched * 2 < independent


# -- region routing + failover ------------------------------------------------

def _cdn_engine(seed=5, tracer=None, **cfg):
    eng = ServiceEngine(
        EngineConfig(seed=seed, **cfg), tracer=tracer,
        layers=cdn_stack(clients_per_region=2, replicate=True),
    )
    eng.add_server("srv1", documents=DOC)
    return eng


def test_sessions_land_on_their_regions_replica():
    tracer = RecordingTracer()
    eng = _cdn_engine(tracer=tracer)
    srv = eng.servers["srv1"]
    # replicas were provisioned from the placement layer
    assert {ms.name for ms in srv.replicas["audsrv"]} == {
        "audsrv@east", "audsrv@west"
    }
    assert srv.healthy_media_server("vidsrv", client_node="west-c1").name \
        == "vidsrv@west"
    r = eng.orchestrator.run_full_session("srv1", "doc",
                                          client_node="east-c1")
    assert r.completed
    served = {
        labels["server"]
        for labels, c in tracer.metrics.series("media_streams_started")
        if c.value > 0
    }
    # both streams came from the east edge, none from the origin
    assert served == {"audsrv@east", "vidsrv@east"}


def test_replica_crash_fails_over_to_origin():
    eng = _cdn_engine()
    plan = FaultPlan((
        ServerCrashFault(server="srv1", media_server="audsrv@east",
                         at=1.5),
        ServerCrashFault(server="srv1", media_server="vidsrv@east",
                         at=1.5),
    ))
    eng.install_faults(plan, recovery=True)
    r = eng.orchestrator.run_full_session("srv1", "doc",
                                          client_node="east-c1")
    assert r.completed
    watchdog = eng.watchdogs["srv1"]
    assert watchdog.detections >= 1
    assert watchdog.streams_failed_over >= 1
    assert watchdog.streams_lost == 0
    # with the east edge down, the origin is the failover target
    srv = eng.servers["srv1"]
    assert srv.healthy_media_server("audsrv", client_node="east-c1").name \
        == "audsrv"


# -- periodic broadcast -------------------------------------------------------

def test_quasi_harmonic_schedule_shape():
    sched = quasi_harmonic_schedule(60.0, 1e6, 6, subslots=4)
    rates = [ch.rate_bps for ch in sched.channels]
    assert rates[0] == 1e6
    # later segments stream strictly slower
    assert all(a > b for a, b in zip(rates, rates[1:]))
    # quasi-harmonic sits above classic harmonic (b/i) per channel
    for i, rate in enumerate(rates[1:], start=2):
        assert rate > 1e6 / i
    assert sched.slot_s == 10.0
    assert sched.max_wait_s() == 10.0
    # far cheaper than unicasting to each of (say) 10 viewers
    assert sched.bandwidth_ratio() < 4.0


def test_broadcast_origin_egress_constant_in_viewers():
    from repro.server.broadcast import PeriodicBroadcaster

    def run(n_viewers):
        eng = ServiceEngine(EngineConfig(seed=5))
        eng.add_server("srv1", documents=DOC)
        ms = eng.servers["srv1"].media_server("vidsrv")
        bc = PeriodicBroadcaster(
            eng.sim, eng.network, ms, "/v.mpg", "router",
            n_segments=4, horizon_s=6.0,
        )
        finished = []
        for i in range(n_viewers):
            node = eng.add_client(f"viewer{i + 1}")
            eng.sim.call_later(0.4 * i, lambda i=i, node=node: finished.append(
                bc.join(f"s{i}", "V", node, 47000 + i)
            ))
        eng.sim.run(until=12.0)
        assert bc.viewers_served == n_viewers
        assert all(ev.triggered for ev in finished)
        return bc.carrier_bytes, _egress_bytes(eng, ms.node_id)

    carrier_1, egress_1 = run(1)
    carrier_3, egress_3 = run(3)
    # the defining property: origin cost does not grow with audience
    assert carrier_1 == carrier_3
    assert egress_1 == egress_3


def test_viewer_wait_bounded_by_one_slot():
    from repro.server.broadcast import PeriodicBroadcaster

    eng = ServiceEngine(EngineConfig(seed=5))
    eng.add_server("srv1", documents=DOC)
    ms = eng.servers["srv1"].media_server("vidsrv")
    bc = PeriodicBroadcaster(eng.sim, eng.network, ms, "/v.mpg", "router",
                             n_segments=4, horizon_s=6.0)
    slot = bc.schedule.slot_s
    assert bc.wait_s(at=0.0) == 0.0
    assert 0.0 < bc.wait_s(at=slot * 0.25) <= slot
    assert bc.wait_s(at=slot * 1.75) <= slot


def test_hot_set_ranks_by_demand():
    hot = HotSet()
    for name, n in (("a", 3), ("b", 5), ("c", 3), ("d", 1)):
        for _ in range(n):
            hot.record(name)
    assert hot.top(2) == ["b", "a"]  # ties broken by name
    assert hot.top(0) == []
    assert hot.demand("d") == 1
