"""Frame-lifecycle correlation: join trace events into per-frame spans.

The tracer records point events; this module reconstructs each media
frame's journey — server packetization (``rtp.send``), link enqueues,
network delivery, receiver reassembly (``rtp.frame``), client buffer
admission (``buffer.push``) and finally playout or a drop at one of
the stages — and decomposes the end-to-end latency per hop. The join
key is ``(session, stream, frame seq)``; data-path events carry it in
their ``session``/``name``/``args["frame"]`` fields (see
:mod:`repro.obs.tracer`).

A frame's terminal state is one of:

* ``"played"``   — presented by the playout process;
* ``"dropped"``  — explicitly discarded (reassembly gave up, buffer
  overflow, or a stale/skew/overflow playout drop: ``drop_stage`` and
  ``drop_reason`` say where and why);
* ``"lost"``     — sent but never reassembled and never explicitly
  dropped (all-fragment network loss);
* ``"pending"``  — still in flight or buffered when the trace ended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import TraceEvent

__all__ = ["FrameSpan", "correlate_frames", "hop_latency_summary"]

#: ordered hops of the per-frame latency decomposition
HOPS = ("network_s", "reassembly_s", "buffer_s")


@dataclass(slots=True)
class FrameSpan:
    """One frame's reconstructed journey through the stack."""

    session: str
    stream: str
    seq: int
    media_time: int = -1
    #: simulation time of each lifecycle edge (None = never reached)
    sent_s: float | None = None
    delivered_s: float | None = None
    reassembled_s: float | None = None
    buffered_s: float | None = None
    played_s: float | None = None
    dropped_s: float | None = None
    #: stage ("network" | "reassembly" | "buffer" | "playout") and
    #: reason ("loss" | "queue" | "fragments" | "overflow" | "stale" |
    #: "skew" | ...) when the frame was dropped
    drop_stage: str = ""
    drop_reason: str = ""
    #: packet accounting for the frame's fragments
    packets: int = 0
    packets_dropped: int = 0
    #: times this frame was (re)sent by the server
    retransmits: int = 0
    #: (time, link name) of every link enqueue of a fragment
    enqueues: list[tuple[float, str]] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.session, self.stream, self.seq)

    @property
    def terminal(self) -> str:
        if self.played_s is not None:
            return "played"
        if self.dropped_s is not None:
            return "dropped"
        if self.sent_s is not None and self.reassembled_s is None \
                and self.packets_dropped > 0:
            return "lost"
        return "pending"

    # -- per-hop latency decomposition ----------------------------------
    @property
    def network_s(self) -> float | None:
        """Serialization + queueing + propagation: send → last delivery."""
        if self.sent_s is None or self.delivered_s is None:
            return None
        return self.delivered_s - self.sent_s

    @property
    def reassembly_s(self) -> float | None:
        """Last fragment delivery → complete frame at the receiver."""
        if self.delivered_s is None or self.reassembled_s is None:
            return None
        return self.reassembled_s - self.delivered_s

    @property
    def buffer_s(self) -> float | None:
        """Buffer residency: admission → presentation."""
        if self.buffered_s is None or self.played_s is None:
            return None
        return self.played_s - self.buffered_s

    @property
    def total_s(self) -> float | None:
        """End to end: server send → client presentation."""
        if self.sent_s is None or self.played_s is None:
            return None
        return self.played_s - self.sent_s

    def to_dict(self) -> dict[str, object]:
        return {
            "session": self.session,
            "stream": self.stream,
            "seq": self.seq,
            "terminal": self.terminal,
            "sent_s": self.sent_s,
            "played_s": self.played_s,
            "drop_stage": self.drop_stage,
            "drop_reason": self.drop_reason,
            "packets": self.packets,
            "packets_dropped": self.packets_dropped,
            "retransmits": self.retransmits,
            "network_s": self.network_s,
            "reassembly_s": self.reassembly_s,
            "buffer_s": self.buffer_s,
            "total_s": self.total_s,
        }


def _frame_of(event: TraceEvent) -> int:
    frame = event.args.get("frame", -1)
    return frame if isinstance(frame, int) else -1


def correlate_frames(
    events: list[TraceEvent], session: str | None = None
) -> dict[tuple[str, str, int], FrameSpan]:
    """Join trace events into per-frame spans, in event order.

    ``session`` restricts the join to one session's frames; the
    default correlates every session in the trace. Events without a
    frame id (control traffic, spans, kernel noise) are skipped.
    """
    spans: dict[tuple[str, str, int], FrameSpan] = {}
    # rtp.frame_drop only knows the frame's RTP timestamp; remember
    # the media_time -> seq mapping announced by rtp.send.
    by_media_time: dict[tuple[str, str, int], tuple[str, str, int]] = {}

    def span_for(sess: str, stream: str, seq: int) -> FrameSpan:
        key = (sess, stream, seq)
        span = spans.get(key)
        if span is None:
            span = spans[key] = FrameSpan(sess, stream, seq)
        return span

    for e in events:
        if session is not None and e.session and e.session != session:
            continue
        kind = e.kind
        if kind == "rtp.send":
            if session is not None and e.session != session:
                continue
            span = span_for(e.session, e.name, _frame_of(e))
            if span.sent_s is None:
                span.sent_s = e.time
            else:
                span.retransmits += 1
            span.media_time = e.args.get("media_time", -1)
            span.packets += e.args.get("packets", 1)
            by_media_time[(e.session, e.name, span.media_time)] = span.key
            continue
        if kind == "rtp.frame_drop":
            mt_key = (e.session, e.name, e.args.get("media_time", -1))
            key = by_media_time.get(mt_key)
            if key is not None:
                span = spans[key]
                span.dropped_s = e.time
                span.drop_stage = "reassembly"
                span.drop_reason = e.args.get("reason", "fragments")
            continue
        frame = _frame_of(e)
        if frame < 0 or not e.session:
            continue
        if session is not None and e.session != session:
            continue
        if kind == "link.enqueue":
            span = span_for(e.session, e.args.get("flow", ""), frame)
            span.enqueues.append((e.time, e.name))
        elif kind == "link.drop":
            span = span_for(e.session, e.args.get("flow", ""), frame)
            span.packets_dropped += 1
        elif kind == "net.deliver":
            span = span_for(e.session, e.args.get("flow", ""), frame)
            # last fragment's delivery closes the network hop
            span.delivered_s = e.time
        elif kind == "rtp.frame":
            span = span_for(e.session, e.name, frame)
            span.reassembled_s = e.time
        elif kind == "buffer.push":
            span = span_for(e.session, e.name, frame)
            span.buffered_s = e.time
        elif kind == "buffer.drop":
            span = span_for(e.session, e.name, frame)
            span.dropped_s = e.time
            span.drop_stage = "buffer"
            span.drop_reason = e.args.get("reason", "overflow")
        elif kind == "playout.frame":
            span = span_for(e.session, e.name, frame)
            if span.played_s is None:
                span.played_s = e.time
        elif kind == "playout.drop":
            span = span_for(e.session, e.name, frame)
            span.dropped_s = e.time
            span.drop_stage = "playout"
            span.drop_reason = e.args.get("reason", "")
    return spans


def hop_latency_summary(
    spans: dict[tuple[str, str, int], FrameSpan] | list[FrameSpan],
) -> dict[str, dict[str, float]]:
    """Per-hop latency statistics across played frames.

    Returns {hop: {count, mean, min, max, p50, p95, p99}} using the
    streaming log-bucketed histograms from :mod:`repro.obs.metrics`,
    plus terminal-state counts under ``"terminals"``.
    """
    from repro.obs.metrics import Histogram, log_buckets

    values = spans.values() if isinstance(spans, dict) else spans
    bounds = log_buckets(1e-5, 100.0, per_decade=9)
    hists = {hop: Histogram(bounds=bounds)
             for hop in HOPS + ("total_s",)}
    terminals: dict[str, float] = {}
    for span in values:
        terminals[span.terminal] = terminals.get(span.terminal, 0) + 1
        for hop, hist in hists.items():
            value = getattr(span, hop)
            if value is not None and value >= 0:
                hist.observe(value)
    out: dict[str, dict[str, float]] = {
        hop: hist.summary() for hop, hist in hists.items()
    }
    out["terminals"] = terminals
    return out
