"""Unit tests for the multimedia database and flow scheduler."""

import pytest

from repro.hml import DocumentBuilder, serialize
from repro.hml.examples import figure2_document
from repro.media import default_registry
from repro.model import PresentationScenario
from repro.server import FlowScheduler, MultimediaDatabase
from repro.server.accounts import QoSPreferences


def lesson(title, text):
    return DocumentBuilder(title).text(text).build()


@pytest.fixture
def db():
    d = MultimediaDatabase()
    d.add_document("intro", lesson("Introduction to Networks",
                                   "packets travel across links"),
                   topic="networking")
    d.add_document("atm", lesson("ATM Networks", "cells and virtual circuits"),
                   topic="networking")
    d.add_document("poetry", lesson("Greek Poetry", "verses and meters"),
                   topic="literature")
    return d


# ---------------------------------------------------------------- database
def test_database_storage_and_topics(db):
    assert len(db) == 3
    assert db.topics() == ["literature", "networking"]
    assert db.by_topic("networking") == ["atm", "intro"]
    assert db.get("intro").topic == "networking"
    assert "intro" in db and "zzz" not in db


def test_database_search(db):
    assert db.search("packets") == ["intro"]
    assert db.search("networks") == ["atm", "intro"]  # title terms
    assert db.search("verses") == ["poetry"]
    assert db.search("quantum") == []
    assert db.search("") == []


def test_database_search_prefix(db):
    assert db.search("packet") == ["intro"]  # prefix match


def test_database_markup_roundtrip(db):
    markup = serialize(figure2_document())
    db.add_markup("fig2", markup, topic="demo")
    stored = db.get("fig2")
    assert stored.markup == markup
    assert stored.size_bytes == len(markup.encode())
    assert stored.document.title == "Figure 2 scenario"


def test_database_duplicate_and_empty_rejected(db):
    with pytest.raises(ValueError):
        db.add_document("intro", lesson("x", "y"))
    with pytest.raises(ValueError):
        db.add_document("  ", lesson("x", "y"))
    with pytest.raises(KeyError):
        db.get("missing")


# ---------------------------------------------------------------- flows
def test_flow_scenario_from_figure2():
    scheduler = FlowScheduler(default_registry())
    scenario = PresentationScenario.from_document(figure2_document())
    flow = scheduler.compute(scenario, lead_s=1.5)
    assert flow.lead_s == 1.5
    cont = {f.stream_id: f for f in flow.continuous()}
    assert set(cont) == {"A1", "A2", "V"}
    # Continuous streams start sending at their scenario times.
    assert cont["A1"].send_offset_s == 4.0
    assert cont["V"].send_offset_s == 4.0
    assert cont["A2"].send_offset_s == 13.0
    # Rates come from the codecs' grade-0 rungs.
    assert cont["V"].nominal_rate_bps == 1_500_000
    assert cont["A1"].nominal_rate_bps == 64_000
    # Discrete objects fetch eagerly.
    disc = {f.stream_id: f for f in flow.discrete()}
    assert set(disc) == {"I1", "I2"}
    assert all(f.send_offset_s == 0.0 for f in disc.values())


def test_flow_grouping_by_server():
    scheduler = FlowScheduler(default_registry())
    scenario = PresentationScenario.from_document(figure2_document())
    flow = scheduler.compute(scenario)
    groups = flow.by_server()
    assert sorted(groups) == ["audsrv", "imgsrv", "vidsrv"]
    assert {f.stream_id for f in groups["audsrv"]} == {"A1", "A2"}


def test_flow_peak_rate():
    scheduler = FlowScheduler(default_registry())
    scenario = PresentationScenario.from_document(figure2_document())
    flow = scheduler.compute(scenario)
    # A1 (64k) + V (1.5M) overlap in [4, 12); A2 alone later.
    assert flow.peak_rate_bps() == pytest.approx(1_564_000)


def test_flow_respects_user_floor_grades():
    scheduler = FlowScheduler(default_registry())
    scenario = PresentationScenario.from_document(figure2_document())
    prefs = QoSPreferences(video_floor_grade=2, audio_floor_grade=1)
    flow = scheduler.compute(scenario, prefs=prefs, initial_grade=5)
    cont = {f.stream_id: f for f in flow.continuous()}
    assert cont["V"].initial_grade == 2
    assert cont["A1"].initial_grade == 1


def test_flow_validation():
    scheduler = FlowScheduler(default_registry())
    scenario = PresentationScenario.from_document(figure2_document())
    with pytest.raises(ValueError):
        scheduler.compute(scenario, lead_s=-1.0)
