"""Unit + property tests for media buffers and time-window sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import MediaBuffer, compute_time_window
from repro.client.monitor import BufferAction, BufferMonitor, BufferState
from repro.media.types import Frame, FrameKind

CLOCK = 90_000
TICKS = 3600  # 25 fps


def frame(seq, ticks=TICKS):
    return Frame("v", seq=seq, media_time=seq * ticks, duration=ticks,
                 size_bytes=1000, kind=FrameKind.P)


# ------------------------------------------------------------ time window
def test_time_window_floor_of_three_frames():
    # Negligible jitter: window still covers >= 3 frame intervals
    # (and the absolute minimum of 0.2 s dominates at 25 fps).
    w = compute_time_window(0.04, expected_jitter_s=0.0, expected_loss=0.0)
    assert w >= 3 * 0.04
    assert w == pytest.approx(0.2)


def test_time_window_grows_with_jitter():
    w_low = compute_time_window(0.04, expected_jitter_s=0.01)
    w_high = compute_time_window(0.04, expected_jitter_s=0.2)
    assert w_high > w_low


def test_time_window_grows_with_loss():
    w0 = compute_time_window(0.04, expected_jitter_s=0.1, expected_loss=0.0)
    w1 = compute_time_window(0.04, expected_jitter_s=0.1, expected_loss=0.2)
    assert w1 > w0


def test_time_window_capped():
    w = compute_time_window(0.04, expected_jitter_s=100.0)
    assert w == 8.0


def test_time_window_validation():
    with pytest.raises(ValueError):
        compute_time_window(0.0)
    with pytest.raises(ValueError):
        compute_time_window(0.04, expected_loss=1.0)


@settings(max_examples=50, deadline=None)
@given(
    interval=st.floats(min_value=1e-3, max_value=1.0),
    jitter=st.floats(min_value=0.0, max_value=10.0),
    loss=st.floats(min_value=0.0, max_value=0.9),
)
def test_property_time_window_bounds(interval, jitter, loss):
    w = compute_time_window(interval, expected_jitter_s=jitter,
                            expected_loss=loss)
    assert 0.2 <= w <= 8.0 or w >= 3 * interval
    assert w <= 8.0


# ------------------------------------------------------------ buffer
def test_buffer_occupancy_accounting():
    buf = MediaBuffer("v", CLOCK, time_window_s=1.0)
    assert buf.is_empty and buf.occupancy_s == 0.0
    for i in range(5):
        assert buf.push(frame(i))
    assert len(buf) == 5
    assert buf.occupancy_s == pytest.approx(5 * 0.04)
    buf.pop()
    assert buf.occupancy_s == pytest.approx(4 * 0.04)


def test_buffer_prefill_threshold():
    buf = MediaBuffer("v", CLOCK, time_window_s=0.2)
    for i in range(4):
        buf.push(frame(i))
    assert not buf.prefilled  # 0.16 s < 0.2 s
    buf.push(frame(4))
    assert buf.prefilled


def test_buffer_overflow_drops_at_capacity():
    buf = MediaBuffer("v", CLOCK, time_window_s=0.2, capacity_s=0.2)
    pushed = sum(buf.push(frame(i)) for i in range(10))
    assert pushed == 5  # 5 * 0.04 = 0.2 s fits
    assert buf.stats.overflow_drops == 5


def test_buffer_underflow_counts():
    buf = MediaBuffer("v", CLOCK, time_window_s=1.0)
    assert buf.pop() is None
    assert buf.stats.underflow_events == 1


def test_buffer_fifo_and_peek_drop_head():
    buf = MediaBuffer("v", CLOCK, time_window_s=1.0)
    for i in range(3):
        buf.push(frame(i))
    assert buf.peek().seq == 0
    assert buf.drop_head().seq == 0
    assert buf.pop().seq == 1
    assert buf.clear() == 1
    assert buf.is_empty
    assert buf.drop_head() is None
    assert buf.peek() is None


def test_buffer_validation():
    with pytest.raises(ValueError):
        MediaBuffer("v", 0, time_window_s=1.0)
    with pytest.raises(ValueError):
        MediaBuffer("v", CLOCK, time_window_s=0.0)
    with pytest.raises(ValueError):
        MediaBuffer("v", CLOCK, time_window_s=2.0, capacity_s=1.0)


def test_buffer_occupancy_sampling():
    buf = MediaBuffer("v", CLOCK, time_window_s=1.0)
    buf.push(frame(0))
    buf.sample_occupancy(now=1.5)
    assert buf.stats.occupancy_trace == [(1.5, pytest.approx(0.04))]


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.sampled_from(["push", "pop", "drop"]), max_size=120))
def test_property_buffer_occupancy_never_negative(ops):
    buf = MediaBuffer("v", CLOCK, time_window_s=0.4)
    seq = 0
    for op in ops:
        if op == "push":
            buf.push(frame(seq))
            seq += 1
        elif op == "pop":
            buf.pop()
        else:
            buf.drop_head()
        assert buf.occupancy_s >= 0.0
        assert (len(buf) == 0) == (buf.occupancy_s == 0.0)


# ------------------------------------------------------------ monitor
def make_buf(n, window=0.4):
    buf = MediaBuffer("v", CLOCK, time_window_s=window, capacity_s=10 * window)
    for i in range(n):
        buf.push(frame(i))
    return buf


def test_monitor_states():
    low = BufferMonitor(make_buf(1))  # 0.04/0.4 = 0.1 < 0.25
    assert low.classify() is BufferState.LOW
    normal = BufferMonitor(make_buf(10))  # 0.4/0.4 = 1.0
    assert normal.classify() is BufferState.NORMAL
    high = BufferMonitor(make_buf(20))  # 0.8/0.4 = 2.0 > 1.5
    assert high.classify() is BufferState.HIGH


def test_monitor_recommendations():
    low = BufferMonitor(make_buf(1))
    assert low.check(0.0) is BufferAction.DUPLICATE
    high = BufferMonitor(make_buf(20))
    assert high.check(0.0) is BufferAction.DROP
    normal = BufferMonitor(make_buf(10))
    assert normal.check(0.0) is BufferAction.NONE


def test_monitor_empty_buffer_no_duplicate():
    # Nothing to replay: duplication needs at least one frame.
    empty = BufferMonitor(make_buf(0))
    assert empty.check(0.0) is BufferAction.NONE


def test_monitor_counts_state_entries():
    buf = make_buf(10)
    mon = BufferMonitor(buf)
    assert mon.check(0.0) is BufferAction.NONE
    while len(buf) > 1:
        buf.pop()
    mon.check(1.0)
    assert mon.stats.low_entries == 1
    for i in range(100, 130):
        buf.push(frame(i))
    mon.check(2.0)
    assert mon.stats.high_entries == 1
    assert [s for _, s in mon.stats.state_trace] == [
        BufferState.LOW, BufferState.HIGH,
    ]


def test_monitor_validation():
    with pytest.raises(ValueError):
        BufferMonitor(make_buf(1), low_watermark=2.0, high_watermark=1.0)
