"""Unit tests for codecs and quality-grade ladders."""

import pytest

from repro.media import (
    AUDIO_LADDER,
    SUSPENDED,
    VIDEO_LADDER,
    Codec,
    CodecRegistry,
    MediaType,
    QualityGrade,
    default_registry,
)


def test_ladders_are_monotone_in_rate_and_quality():
    for ladder in (VIDEO_LADDER, AUDIO_LADDER):
        rates = [g.bitrate_bps for g in ladder]
        scores = [g.quality_score for g in ladder]
        assert rates == sorted(rates, reverse=True)
        assert scores == sorted(scores, reverse=True)


def test_audio_ladder_matches_paper_standards():
    # PCM 64 kb/s -> ADPCM 32 kb/s -> VADPCM 16 kb/s (paper Figure 5).
    assert [g.bitrate_bps for g in AUDIO_LADDER] == [64_000, 32_000, 16_000]
    assert [g.label for g in AUDIO_LADDER] == [
        "audio/pcm", "audio/adpcm", "audio/vadpcm",
    ]


def test_grade_lookup_and_suspend_sentinel():
    reg = default_registry()
    mpeg = reg.get("MPEG")
    assert mpeg.grade(0) is VIDEO_LADDER[0]
    assert mpeg.grade(len(VIDEO_LADDER)) is SUSPENDED
    assert mpeg.grade(SUSPENDED.index) is SUSPENDED
    with pytest.raises(IndexError):
        mpeg.grade(-1)


def test_degrade_walks_ladder_then_suspends():
    mpeg = default_registry().get("MPEG")
    g = 0
    seen = []
    for _ in range(len(VIDEO_LADDER) + 2):
        seen.append(g)
        g = mpeg.degrade(g)
    # One step past the ladder is the suspend state; it clamps there.
    assert seen == [0, 1, 2, 3, 4, 5, 5]
    assert mpeg.grade(5) is SUSPENDED


def test_upgrade_from_suspend_reenters_at_worst_rung():
    mpeg = default_registry().get("MPEG")
    suspended = len(VIDEO_LADDER)  # first out-of-ladder index
    assert mpeg.upgrade(suspended) == len(VIDEO_LADDER) - 1
    assert mpeg.upgrade(0) == 0
    assert mpeg.upgrade(2) == 1


def test_grade_frame_geometry():
    g = VIDEO_LADDER[0]
    assert g.frame_interval_s == pytest.approx(0.04)
    assert g.mean_frame_bytes == pytest.approx(1_500_000 / 8 / 25)
    assert SUSPENDED.frame_interval_s == float("inf")
    assert SUSPENDED.mean_frame_bytes == 0.0


def test_quality_grade_validation():
    with pytest.raises(ValueError):
        QualityGrade(0, "bad", -1, 25.0, 0.5)
    with pytest.raises(ValueError):
        QualityGrade(0, "bad", 100, 25.0, 1.5)


def test_codec_validation():
    with pytest.raises(ValueError):
        Codec("x", MediaType.VIDEO, clock_rate=0, ladder=VIDEO_LADDER, payload_type=1)
    with pytest.raises(ValueError):
        Codec("x", MediaType.VIDEO, clock_rate=90000, ladder=(), payload_type=1)
    # Bitrates must be non-increasing down the ladder.
    bad = (
        QualityGrade(0, "a", 100, 25.0, 0.5),
        QualityGrade(1, "b", 200, 25.0, 0.4),
    )
    with pytest.raises(ValueError):
        Codec("x", MediaType.VIDEO, clock_rate=90000, ladder=bad, payload_type=1)


def test_registry_defaults_and_errors():
    reg = default_registry()
    assert reg.default_for(MediaType.VIDEO).name == "MPEG"
    assert reg.default_for(MediaType.AUDIO).name == "PCM-family"
    assert "AVI" in reg
    assert reg.names() == ["AVI", "MPEG", "PCM-family"]
    with pytest.raises(KeyError):
        reg.get("H264")
    with pytest.raises(KeyError):
        reg.default_for(MediaType.TEXT)
    with pytest.raises(ValueError):
        reg.register(reg.get("MPEG"))


def test_fresh_registry_default_is_first_registered():
    reg = CodecRegistry()
    c = Codec("only", MediaType.AUDIO, clock_rate=8000, ladder=AUDIO_LADDER,
              payload_type=9)
    reg.register(c)
    assert reg.default_for(MediaType.AUDIO) is c


def test_avi_is_double_rate_mpeg():
    reg = default_registry()
    mpeg, avi = reg.get("MPEG"), reg.get("AVI")
    for gm, ga in zip(mpeg.ladder, avi.ladder):
        assert ga.bitrate_bps == 2 * gm.bitrate_bps
