"""Trend analytics over artifact histories, plus the markdown dashboard.

``python -m repro bench`` compares one run against one baseline; this
module reads the whole *trajectory* — a directory of BENCH_* /
PROFILE_* / CHAOS_* artifacts in chronological order — and judges the
newest point against the robust spread of its history. Per metric:

* the history (every point but the newest) yields a median and a MAD
  (median absolute deviation — outlier-proof, unlike stddev);
* the tolerance band is ``max(3 * 1.4826 * MAD, floor * |median|)``
  where the relative floor is the bench regression threshold (10%
  deterministic, 50% wall-clock — same constants as
  ``compare_to_baseline``), so an all-identical deterministic history
  (MAD 0) still tolerates small drift instead of flagging noise;
* the newest point regresses when it leaves the band in the metric's
  bad direction (``higher`` metrics flag drops, ``lower`` metrics
  flag rises, ``stable`` metrics flag both).

``python -m repro trend`` renders the verdicts as a sparkline table
and exits 1 on any regression; ``python -m repro report`` combines
QoE, ServiceReport, time-series plots, SLO status and trend verdicts
into one markdown dashboard.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.bench import DEFAULT_PERF_THRESHOLD, DEFAULT_THRESHOLD
from repro.obs.slo import flatten_metrics

__all__ = ["TrendMetric", "TrendRow", "TREND_METRICS", "load_history",
           "group_history", "analyze_group", "sparkline",
           "render_markdown_report"]

#: MAD -> sigma-equivalent scale for normally distributed noise
_MAD_SCALE = 1.4826
#: how many robust sigmas of drift the band tolerates
_BAND_SIGMAS = 3.0

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


@dataclass(slots=True, frozen=True)
class TrendMetric:
    """One tracked metric: where it lives and which drift is bad."""

    name: str
    #: "higher" = drop is a regression; "lower" = rise is;
    #: "stable" = any departure from the band is
    direction: str = "higher"
    #: "det" metrics use the tight relative floor, "perf" the loose
    #: one (wall-clock noise across machines)
    kind: str = "det"


#: the standard trajectory metrics, resolved via ``flatten_metrics``
TREND_METRICS: tuple[TrendMetric, ...] = (
    TrendMetric("completed_ratio", direction="higher"),
    TrendMetric("delivered_ratio", direction="higher"),
    TrendMetric("qoe_p50", direction="higher"),
    TrendMetric("events", direction="stable"),
    TrendMetric("origin_egress_bytes", direction="stable"),
    TrendMetric("peak_link_utilization", direction="lower"),
    TrendMetric("max_queue_depth", direction="lower"),
    TrendMetric("events_per_sec", direction="higher", kind="perf"),
)


@dataclass(slots=True)
class TrendRow:
    """Verdict for one metric over one artifact group."""

    metric: str
    values: list[float] = field(default_factory=list)
    median: float = 0.0
    band: float = 0.0
    last: float = 0.0
    #: "ok" | "regressed" | "insufficient" (fewer than 2 points)
    verdict: str = "insufficient"
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "n": len(self.values),
            "median": self.median,
            "band": self.band,
            "last": self.last,
            "verdict": self.verdict,
            "detail": self.detail,
        }


# -- history loading ---------------------------------------------------------

def load_history(paths: list[str]) -> list[dict[str, Any]]:
    """Load artifacts from files and/or directories, oldest first.

    Directories contribute their ``*.json`` files in name order —
    the convention is zero-padded sequence names
    (``BENCH_x.000.json`` < ``BENCH_x.001.json``), so lexicographic
    order *is* chronological. Non-artifact JSON (no recognised
    schema) is skipped.
    """
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, entry)
                for entry in sorted(os.listdir(path))
                if entry.endswith(".json")
            )
        else:
            files.append(path)
    history = []
    for file in files:
        with open(file, encoding="utf-8") as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and isinstance(doc.get("schema"), str):
            doc["_path"] = file
            history.append(doc)
    return history


def group_history(history: list[dict[str, Any]]
                  ) -> dict[tuple[str, bool], list[dict[str, Any]]]:
    """Split a history into comparable groups.

    Runs compare only within the same scenario at the same scale:
    the key is ``(scenario-or-name, smoke)``. Order within each
    group preserves the input (chronological) order.
    """
    groups: dict[tuple[str, bool], list[dict[str, Any]]] = {}
    for doc in history:
        name = doc.get("scenario") or doc.get("name") or "?"
        key = (str(name), bool(doc.get("smoke")))
        groups.setdefault(key, []).append(doc)
    return groups


# -- analysis ----------------------------------------------------------------

def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def analyze_group(artifacts: list[dict[str, Any]],
                  metrics: tuple[TrendMetric, ...] = TREND_METRICS,
                  threshold: float = DEFAULT_THRESHOLD,
                  perf_threshold: float = DEFAULT_PERF_THRESHOLD,
                  ) -> list[TrendRow]:
    """Judge the newest artifact against its history, per metric.

    Metrics absent from every artifact in the group are skipped
    (star topologies have no ``egress_reduction``; pre-time-series
    baselines have no ``peak_link_utilization``).
    """
    flats = [flatten_metrics(doc) for doc in artifacts]
    rows: list[TrendRow] = []
    for metric in metrics:
        values = [flat[metric.name] for flat in flats
                  if metric.name in flat]
        if not values:
            continue
        row = TrendRow(metric=metric.name, values=values,
                       last=values[-1])
        if len(values) < 2:
            row.median = values[-1]
            row.detail = "needs >= 2 comparable runs"
            rows.append(row)
            continue
        history = values[:-1]
        med = _median(history)
        mad = _median([abs(v - med) for v in history])
        floor = threshold if metric.kind == "det" else perf_threshold
        band = max(_BAND_SIGMAS * _MAD_SCALE * mad, floor * abs(med))
        row.median = med
        row.band = band
        delta = values[-1] - med
        bad = (
            (metric.direction == "higher" and delta < -band)
            or (metric.direction == "lower" and delta > band)
            or (metric.direction == "stable" and abs(delta) > band)
        )
        row.verdict = "regressed" if bad else "ok"
        if bad:
            row.detail = (
                f"last {values[-1]:g} vs median {med:g} "
                f"(band ±{band:g}, direction {metric.direction})"
            )
        rows.append(row)
    return rows


# -- rendering ---------------------------------------------------------------

def sparkline(values: list[float], width: int = 24) -> str:
    """A unicode mini-plot of a series, downsampled to ``width``."""
    if not values:
        return ""
    if len(values) > width:
        # Max-of-bucket keeps transient spikes visible when shrinking.
        step = len(values) / width
        values = [
            max(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1,
                          int((v - lo) / span * len(_SPARK_GLYPHS)))]
        for v in values
    )


def _md_table(headers: list[str], rows: list[list[Any]]) -> list[str]:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |"
                 for row in rows)
    return lines


def render_markdown_report(artifact: dict[str, Any],
                           trend_rows: list[TrendRow] | None = None,
                           slo_checks: list[Any] | None = None) -> str:
    """One markdown dashboard for one artifact.

    Sections (each only when the artifact carries the data): run
    header, QoE summary, service report highlights, time-series
    sparklines, SLO status, trend verdicts.
    """
    name = artifact.get("scenario") or artifact.get("name") or "run"
    lines = [f"# Run report — {name}", ""]
    facts = [
        ("schema", artifact.get("schema")),
        ("seed", artifact.get("seed")),
        ("clients", artifact.get("clients")),
        ("duration_s", artifact.get("duration_s")),
        ("smoke", artifact.get("smoke")),
        ("completed", artifact.get("completed")),
        ("sessions", artifact.get("sessions")),
    ]
    lines.extend(_md_table(["key", "value"],
                           [[k, v] for k, v in facts if v is not None]))
    lines.append("")

    qoe = artifact.get("qoe") or {}
    score = qoe.get("score") or {}
    if score:
        lines.extend(["## QoE", ""])
        lines.extend(_md_table(
            ["metric", "p50", "p95"],
            [[key,
              f"{(qoe.get(key) or {}).get('p50', 0.0):.2f}",
              f"{(qoe.get(key) or {}).get('p95', 0.0):.2f}"]
             for key in ("score", "startup_s", "stall_time_s")
             if isinstance(qoe.get(key), dict)],
        ))
        lines.append("")

    service = artifact.get("service") or {}
    if service.get("servers"):
        lines.extend(["## Service", ""])
        lines.extend(_md_table(
            ["media server", "region", "mean streams", "peak"],
            [[srv, entry.get("region", "?"),
              f"{entry.get('mean_streams', 0.0):.2f}",
              entry.get("peak_streams", 0)]
             for srv, entry in sorted(service["servers"].items())],
        ))
        admission = service.get("admission") or {}
        if admission.get("requests"):
            lines.append("")
            lines.append(
                f"Admission: {admission.get('admitted', 0)} admitted, "
                f"{admission.get('rejected', 0)} rejected "
                f"(blocking {admission.get('blocking_prob', 0.0):.4f})"
            )
        lines.append("")

    ts = artifact.get("timeseries") or {}
    columns = ts.get("columns") or {}
    if columns:
        lines.extend([
            "## Time series",
            "",
            f"interval {ts.get('interval_s')}s · {ts.get('ticks')} ticks",
            "",
        ])
        rows = []
        for col in sorted(columns):
            values = [float(v) for v in columns[col].get("values", ())]
            peak = max(values) if values else 0.0
            rows.append([f"`{col}`", sparkline(values), f"{peak:g}"])
        lines.extend(_md_table(["column", "trajectory", "peak"], rows))
        lines.append("")

    if slo_checks:
        lines.extend(["## SLO", ""])
        lines.extend(_md_table(
            ["rule", "value", "status"],
            [[check.rule.text,
              "missing" if check.value is None else f"{check.value:g}",
              "ok" if check.ok else "**VIOLATED**"]
             for check in slo_checks],
        ))
        lines.append("")

    if trend_rows:
        lines.extend(["## Trend", ""])
        lines.extend(_md_table(
            ["metric", "history", "median", "last", "verdict"],
            [[row.metric, sparkline(row.values), f"{row.median:g}",
              f"{row.last:g}",
              "**REGRESSED**" if row.verdict == "regressed"
              else row.verdict]
             for row in trend_rows],
        ))
        lines.append("")

    return "\n".join(lines)
