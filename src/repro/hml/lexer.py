"""Tokenizer: markup text → tag/text token stream.

HML's surface syntax (following the paper's examples) consists of
``<KEYWORD>`` / ``</KEYWORD>`` tags with everything between them
treated as raw text; media elements carry their attributes *inside*
the body as ``KEY=value`` pairs (e.g.
``<IMG> SOURCE=srv:/i1.gif ID=I1 STARTIME=0 </IMG>``), exactly as
written in §3.1.
"""

from __future__ import annotations

from repro.hml.tokens import ELEMENT_KEYWORDS, Token, TokenKind

__all__ = ["tokenize", "HmlSyntaxError"]


class HmlSyntaxError(ValueError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


def tokenize(text: str) -> list[Token]:
    """Split markup into TAG_OPEN / TAG_CLOSE / TEXT tokens.

    Raises :class:`HmlSyntaxError` on malformed tags (unterminated
    ``<``, empty tag, unknown element keyword).
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance_position(chunk: str) -> None:
        nonlocal line, col
        newlines = chunk.count("\n")
        if newlines:
            line += newlines
            col = len(chunk) - chunk.rfind("\n")
        else:
            col += len(chunk)

    while i < n:
        lt = text.find("<", i)
        if lt == -1:
            run = text[i:]
            if run.strip():
                tokens.append(Token(TokenKind.TEXT, run, line, col))
            break
        if lt > i:
            run = text[i:lt]
            if run.strip():
                tokens.append(Token(TokenKind.TEXT, run, line, col))
            advance_position(run)
        gt = text.find(">", lt)
        if gt == -1:
            raise HmlSyntaxError("unterminated tag", line, col)
        inner = text[lt + 1 : gt].strip()
        closing = inner.startswith("/")
        name = inner[1:].strip() if closing else inner
        if not name:
            raise HmlSyntaxError("empty tag", line, col)
        keyword = name.upper()
        if keyword not in ELEMENT_KEYWORDS:
            raise HmlSyntaxError(f"unknown element keyword {name!r}", line, col)
        kind = TokenKind.TAG_CLOSE if closing else TokenKind.TAG_OPEN
        tokens.append(Token(kind, keyword, line, col))
        advance_position(text[lt : gt + 1])
        i = gt + 1
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
