"""E1 — startup delay vs. the media time window.

Claim (§4): the intentional startup delay that pre-fills each media
buffer over its *media time window* absorbs network delay variation
before it reaches the presentation. Larger windows trade startup
latency for smoothness; too-small windows gap.
"""

from repro.analysis import render_table
from repro.core.experiments import run_time_window_sweep


def test_e1_time_window_sweep(report, once):
    headers, rows = once(run_time_window_sweep)
    report("e1_time_window",
           render_table("E1 — media time window vs presentation quality "
                        "(bursty 12 Mb/s cross traffic on a 10 Mb/s access)",
                        headers, rows))
    by_window = {r[0]: r for r in rows}
    # Startup latency equals the configured window (the intentional delay).
    for w, row in by_window.items():
        assert abs(row[1] - w) < 0.05
    # The smallest window gaps; the largest plays clean.
    assert by_window[0.1][2] > 0, "0.1 s window should show gaps"
    assert by_window[2.0][2] == 0, "2 s window should absorb all jitter"
    # Gap counts are non-increasing as the window grows.
    gaps = [row[2] for _, row in sorted(by_window.items())]
    assert gaps == sorted(gaps, reverse=True)
