"""Command-line front end: experiments, figures, demos and traces.

Usage:
    python -m repro list
    python -m repro run e3            # an experiment (e1..e11)
    python -m repro run fig2          # a figure/table artefact
    python -m repro demo              # the quickstart delivery
    python -m repro trace FILE.jsonl  # summarize a recorded trace
    python -m repro trace --record OUT.jsonl [--chrome OUT.json]
                                      # record a traced population run
    python -m repro bench [--smoke] [--profile]
                                      # benchmark trajectory artifacts
                                      # (BENCH_<name>.json + baseline
                                      # regression check; --profile
                                      # adds kernel attribution)
    python -m repro bench --clients N --shards K
                                      # supervised sharded population
                                      # run (worker processes, retry,
                                      # partial-result degradation
                                      # under --tolerate-shard-failures)
    python -m repro bench --scale-curve [--smoke]
                                      # sharded scaling curve artifact
                                      # (events/sec and wall_s vs N)
    python -m repro profile [--scenario NAME] [--smoke]
                                      # DES kernel profiler: hot-spot
                                      # tables, PROFILE_<name>.json and
                                      # a collapsed-stack export for
                                      # flamegraph/speedscope
    python -m repro slo [--artifact FILE | --scenario NAME | --chaos NAME]
                                      # evaluate SLO rules against a
                                      # saved artifact or a live run;
                                      # exit 1 on any violated rule
    python -m repro chaos [--scenario crash] [--smoke]
                                      # fault-injection run: scheduled
                                      # crashes/flaps/partitions with
                                      # failover + retry defences;
                                      # --flight-dump FILE captures the
                                      # flight-recorder window around
                                      # the first injected fault
    python -m repro trend [--history DIR ...] [--artifact FILE ...]
                                      # judge the newest artifact of
                                      # each scenario against its
                                      # history (median + MAD bands);
                                      # exit 1 on any regression
    python -m repro report --artifact FILE [--out FILE.md]
                                      # one markdown dashboard: QoE,
                                      # service, time-series plots,
                                      # SLO status, trend verdicts
    python -m repro lint --self --scenarios
                                      # static analysis: determinism
                                      # linter over src/repro + HML
                                      # scenario analyzer over the
                                      # shipped scenario corpus
    python -m repro lint PATH [...]   # lint .py files/trees and .hml
                                      # scenario files/directories

Any command accepts ``--json`` to emit one machine-readable document
instead of text tables.
"""

from __future__ import annotations

import os
import sys

from repro.analysis import Reporter
from repro.ioutil import atomic_write_text

EXPERIMENTS = {
    "e1": ("run_time_window_sweep", "media time window vs quality"),
    "e2": ("run_skew_control_matrix", "short-term skew control"),
    "e3": ("run_grading_comparison", "long-term quality grading"),
    "e4": ("run_admission_sweep", "admission by pricing class"),
    "e5": ("run_watermark_comparison", "buffer watermarks [LIT 92]"),
    "e6": ("run_navigation_grace", "suspend grace interval"),
    "e7": ("run_search_experiment", "distributed search"),
    "e8": ("run_grading_order_ablation", "degrade-order ablation"),
    "e9": ("run_interplay_experiment", "short- vs long-term timing"),
    "e10": ("run_scaling_experiment", "concurrent-session scaling"),
    "e10b": ("run_population_scaling", "population on per-client links"),
    "e11": ("run_atm_comparison", "ATM access link (future work)"),
}

FIGURES = {
    "table1": "the keyword table",
    "fig1": "the grammar BNF",
    "fig2": "the example scenario timeline",
    "fig4": "the session state machine",
}


def _run_experiment(key: str, report: Reporter) -> int:
    import repro.core.experiments as exp

    fn_name, title = EXPERIMENTS[key]
    out = getattr(exp, fn_name)()
    headers, rows = out[0], out[1]
    report.table(f"{key.upper()} — {title}", headers, rows)
    return 0


def _run_figure(key: str, report: Reporter) -> int:
    if key == "table1":
        from repro.hml.tokens import keyword_table_rows

        report.table("Table 1 — Description of basic keywords",
                     ["Keyword", "Description"], keyword_table_rows())
    elif key == "fig1":
        from repro.hml.grammar import grammar_text

        report.text("Figure 1 — Grammar of the language in BNF notation",
                    grammar_text())
    elif key == "fig2":
        from repro.hml.examples import figure2_document
        from repro.model import ascii_timeline, build_playout_schedule

        report.text("Figure 2 — the example scenario's playout timeline",
                    ascii_timeline(build_playout_schedule(figure2_document())))
    elif key == "fig4":
        from repro.service.states import transition_table_rows

        report.table("Figure 4 — application state transitions",
                     ["state", "event", "next state"],
                     transition_table_rows())
    return 0


def _demo(report: Reporter) -> int:
    from repro.core import ServiceEngine
    from repro.core.experiments import av_markup

    eng = ServiceEngine()
    eng.add_server("srv1", documents={"demo": (av_markup(6.0, True), "demo")})
    result = eng.orchestrator.run_full_session("srv1", "demo")
    report.table(
        "Demo delivery (6 s synchronized A/V + images)",
        ["stream", "frames", "gaps"],
        [[sid, s.frames_played, s.gaps]
         for sid, s in sorted(result.streams.items())],
    )
    report.value("worst_skew_ms", round(result.worst_skew_s() * 1e3, 1))
    report.value("startup_s", round(result.startup_latency_s, 2))
    return 0


def _record_trace(out_path: str, chrome_path: str | None,
                  n_clients: int, report: Reporter) -> int:
    """Run a traced population and export JSONL (+ Chrome trace)."""
    from repro.core import ServiceEngine
    from repro.core.config import EngineConfig
    from repro.core.experiments import av_markup
    from repro.obs import RecordingTracer, write_chrome_trace, write_jsonl

    tracer = RecordingTracer()
    eng = ServiceEngine(EngineConfig(), tracer=tracer)
    eng.add_server("srv1", documents={"doc": (av_markup(5.0, True), "demo")})
    pop = eng.orchestrator.run_population(n_clients, "srv1", "doc",
                                          stagger_s=0.5)
    n = write_jsonl(tracer.events, out_path)
    report.value("sessions_completed", len(pop.completed()))
    report.value("jsonl_events", n)
    report.value("jsonl_path", out_path)
    if chrome_path:
        m = write_chrome_trace(tracer.events, chrome_path)
        report.value("chrome_records", m)
        report.value("chrome_path", chrome_path)
    return 0


def _trace(args: list[str], report: Reporter) -> int:
    """``trace`` subcommand: summarize or record structured traces."""
    from repro.obs import read_jsonl, summarize_trace, write_chrome_trace

    record_to: str | None = None
    chrome_to: str | None = None
    top = 12
    n_clients = 3
    inputs: list[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--record":
            i += 1
            record_to = args[i]
        elif a == "--chrome":
            i += 1
            chrome_to = args[i]
        elif a == "--top":
            i += 1
            top = int(args[i])
        elif a == "--clients":
            i += 1
            n_clients = int(args[i])
        else:
            inputs.append(a)
        i += 1
    if record_to is not None:
        return _record_trace(record_to, chrome_to, n_clients, report)
    if not inputs:
        report.text("usage: python -m repro trace <file.jsonl> "
                    "[--top N] [--chrome OUT.json]")
        report.text("       python -m repro trace --record OUT.jsonl "
                    "[--chrome OUT.json] [--clients N]")
        return 2
    for path in inputs:
        events = read_jsonl(path)
        for section in summarize_trace(events, top=top):
            report.table(section["title"], section["headers"],
                         section["rows"])
        if chrome_to:
            m = write_chrome_trace(events, chrome_to)
            report.value("chrome_records", m)
            report.value("chrome_path", chrome_to)
    return 0


def _bench(args: list[str], report: Reporter) -> int:
    """``bench`` subcommand: run scenarios, emit BENCH_*.json, compare."""
    import json
    import os

    from repro.obs.bench import (
        DEFAULT_PERF_THRESHOLD,
        DEFAULT_THRESHOLD,
        SCENARIOS,
        compare_to_baseline,
        run_benchmarks,
    )

    smoke = False
    update_baseline = False
    profile = False
    out_dir = "."
    baseline_dir = os.path.join("benchmarks", "baseline")
    threshold = DEFAULT_THRESHOLD
    perf_threshold = DEFAULT_PERF_THRESHOLD
    names: list[str] = []
    clients: int | None = None
    shards = 4
    cell_clients = 8
    shard_seed = 11
    duration_s = 6.0
    tolerate = False
    scale_curve = False
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--smoke":
            smoke = True
        elif a == "--profile":
            profile = True
        elif a == "--update-baseline":
            update_baseline = True
        elif a == "--out":
            i += 1
            out_dir = args[i]
        elif a == "--baseline":
            i += 1
            baseline_dir = args[i]
        elif a == "--threshold":
            i += 1
            threshold = float(args[i])
        elif a == "--perf-threshold":
            i += 1
            perf_threshold = float(args[i])
        elif a == "--scenario":
            i += 1
            names.append(args[i])
        elif a == "--clients":
            i += 1
            clients = int(args[i])
        elif a == "--shards":
            i += 1
            shards = int(args[i])
        elif a == "--cell":
            i += 1
            cell_clients = int(args[i])
        elif a == "--seed":
            i += 1
            shard_seed = int(args[i])
        elif a == "--duration":
            i += 1
            duration_s = float(args[i])
        elif a == "--tolerate-shard-failures":
            tolerate = True
        elif a == "--scale-curve":
            scale_curve = True
        elif a == "--topology":
            i += 1
            topology = args[i]
            matching = [s.name for s in SCENARIOS.values()
                        if s.topology == topology]
            if not matching:
                known = sorted({s.topology for s in SCENARIOS.values()})
                report.text(f"no scenarios with topology {topology!r}; "
                            f"known: {', '.join(known)}")
                return 2
            names.extend(matching)
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro bench [--smoke] [--profile] "
                "[--out DIR] "
                "[--baseline DIR] [--threshold F] [--perf-threshold F] "
                "[--scenario NAME ...] [--topology star|cdn] "
                "[--update-baseline]")
            report.text(
                "sharded: python -m repro bench --clients N "
                "[--shards K] [--cell N] [--seed N] [--duration F] "
                "[--tolerate-shard-failures] | --scale-curve "
                "[--smoke] [--out DIR]")
            report.text(f"scenarios: {', '.join(sorted(SCENARIOS))}")
            return 0
        else:
            report.text(f"unknown bench option {a!r}")
            return 2
        i += 1

    if clients is not None or scale_curve:
        return _bench_sharded(
            report, clients=clients, shards=shards,
            cell_clients=cell_clients, seed=shard_seed,
            duration_s=duration_s, tolerate=tolerate,
            scale_curve=scale_curve, smoke=smoke, out_dir=out_dir)

    os.makedirs(out_dir, exist_ok=True)
    artifacts = run_benchmarks(names or None, smoke=smoke,
                               profile=profile)
    problems: list[str] = []
    rows = []
    for name, artifact in artifacts.items():
        out_path = os.path.join(out_dir, f"BENCH_{name}.json")
        report.artifact(f"artifact:{name}", out_path, artifact)
        if profile and "profile" in artifact:
            prof_path = os.path.join(out_dir, f"PROFILE_{name}.json")
            report.artifact(f"profile:{name}", prof_path,
                            artifact["profile"])
            report.value(f"profile_coverage:{name}",
                         round(artifact["profile"]["coverage"], 4))
        qoe = artifact.get("qoe") or {}
        rows.append([
            name, artifact["clients"],
            f"{artifact['wall_s']:.3f}",
            f"{artifact['events_per_sec']:.0f}",
            f"{artifact['completed']}/{artifact['sessions']}",
            f"{qoe.get('score', {}).get('p50', 0.0):.1f}",
        ])
        base_name = f"BENCH_{name}.smoke.json" if smoke \
            else f"BENCH_{name}.json"
        base_path = os.path.join(baseline_dir, base_name)
        if update_baseline:
            os.makedirs(baseline_dir, exist_ok=True)
            report.artifact(f"baseline:{name}", base_path, artifact)
        elif os.path.exists(base_path):
            with open(base_path, encoding="utf-8") as fh:
                baseline = json.load(fh)
            problems.extend(compare_to_baseline(
                artifact, baseline,
                threshold=threshold, perf_threshold=perf_threshold,
            ))
        else:
            report.value(f"baseline:{name}", "missing (not compared)")
    report.table(
        "Benchmark trajectory" + (" (smoke)" if smoke else ""),
        ["scenario", "clients", "wall_s", "events/s", "completed",
         "qoe_p50"],
        rows,
    )
    for problem in problems:
        report.value("regression", problem)
    return 1 if problems else 0


def _shard_lifecycle_table(report: Reporter, shards) -> None:
    report.table(
        "Shard lifecycle",
        ["shard", "cells", "status", "attempts", "retries", "failures"],
        [[s.shard, len(s.cells), s.status, s.attempts, s.retries,
          "; ".join(s.failures) or "-"] for s in shards],
    )


def _bench_sharded(report: Reporter, *, clients: int | None,
                   shards: int, cell_clients: int, seed: int,
                   duration_s: float, tolerate: bool,
                   scale_curve: bool, smoke: bool,
                   out_dir: str) -> int:
    """Sharded bench paths: one supervised point or the scaling curve."""
    import os

    from repro.shard.bench import (
        run_scale_curve,
        run_sharded,
        sharded_artifact,
    )
    from repro.shard.result import ShardFailure

    os.makedirs(out_dir, exist_ok=True)
    if scale_curve:
        artifact = run_scale_curve(
            n_shards=shards, seed=seed, cell_clients=cell_clients,
            smoke=smoke, tolerate_failures=tolerate)
        out_path = os.path.join(out_dir, "BENCH_population_scale.json")
        report.artifact("artifact:population_scale", out_path, artifact)
        report.table(
            "Population scaling curve"
            + (" (smoke)" if smoke else ""),
            ["clients", "wall_s", "events/s", "completed",
             "completeness", "digest"],
            [[p["clients"], f"{p['wall_s']:.2f}",
              f"{p['events_per_sec']:.0f}",
              f"{p['completed']}/{p['sessions']}",
              f"{p['completeness']:.2f}", p["digest"][:16]]
             for p in artifact["points"]],
        )
        return 0

    assert clients is not None
    try:
        result = run_sharded(
            clients, shards, seed=seed, cell_clients=cell_clients,
            duration_s=duration_s, tolerate_failures=tolerate)
    except ShardFailure as exc:
        result = exc.result
        report.text(f"sharded run failed: {exc}")
        _shard_lifecycle_table(report, result.shards)
        return 1

    artifact = sharded_artifact(result, smoke=smoke,
                                duration_s=duration_s)
    out_path = os.path.join(out_dir, "BENCH_population_shard.json")
    report.artifact("artifact:population_shard", out_path, artifact)
    qoe = artifact.get("qoe") or {}
    report.table(
        "Sharded population" + (" (smoke)" if smoke else ""),
        ["clients", "shards", "wall_s", "events/s", "completed",
         "completeness", "qoe_p50", "digest"],
        [[result.clients, result.n_shards, f"{result.wall_s:.3f}",
          f"{artifact['events_per_sec']:.0f}",
          f"{artifact['completed']}/{artifact['sessions']}",
          f"{result.completeness:.2f}",
          f"{qoe.get('score', {}).get('p50', 0.0):.1f}",
          result.digest[:16]]],
    )
    _shard_lifecycle_table(report, result.shards)
    if result.completeness < 1.0:
        report.value("degraded",
                     f"partial result: completeness "
                     f"{result.completeness:.2f}, missing cells "
                     f"{result.missing_cells}")
    if result.interrupted:
        report.value("interrupted", True)
        return 130
    return 0


def _profile(args: list[str], report: Reporter) -> int:
    """``profile`` subcommand: kernel attribution over a bench run."""
    import os

    from repro.obs.bench import SCENARIOS, run_scenario

    smoke = False
    out_dir = "."
    top = 15
    names: list[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--smoke":
            smoke = True
        elif a == "--scenario":
            i += 1
            names.append(args[i])
        elif a == "--out":
            i += 1
            out_dir = args[i]
        elif a == "--top":
            i += 1
            top = int(args[i])
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro profile [--scenario NAME ...] "
                "[--smoke] [--out DIR] [--top N]")
            report.text(f"scenarios: {', '.join(sorted(SCENARIOS))}")
            return 0
        else:
            report.text(f"unknown profile option {a!r}")
            return 2
        i += 1

    if not names:
        names = ["population_clean"]
    os.makedirs(out_dir, exist_ok=True)
    for name in names:
        scenario = SCENARIOS.get(name)
        if scenario is None:
            report.text(f"unknown bench scenario {name!r}; "
                        f"available: {', '.join(sorted(SCENARIOS))}")
            return 2
        artifact = run_scenario(scenario, smoke=smoke, profile=True)
        prof = artifact["profile"]
        out_path = os.path.join(out_dir, f"PROFILE_{name}.json")
        report.artifact(f"profile:{name}", out_path, prof)
        collapsed_path = os.path.join(out_dir,
                                      f"PROFILE_{name}.collapsed.txt")
        atomic_write_text(
            collapsed_path,
            "".join(line + "\n" for line in prof["collapsed_stacks"]))
        report.value(f"collapsed:{name}", collapsed_path)
        report.table(
            f"Kernel time by event kind — {name}"
            + (" (smoke)" if smoke else ""),
            ["kind", "count", "total_us", "mean_us", "share"],
            [[r["kind"], r["count"], f"{r['total_us']:.0f}",
              f"{r['mean_us']:.2f}", f"{r['share']:.1%}"]
             for r in prof["by_kind"]],
        )
        report.table(
            f"Hot spots — {name}",
            ["kind", "handler", "count", "total_us", "mean_us"],
            [[r["kind"], r["handler"], r["count"],
              f"{r['total_us']:.0f}", f"{r['mean_us']:.2f}"]
             for r in prof["hotspots"][:top]],
        )
        report.value(f"kernel_ms:{name}", round(prof["kernel_ms"], 2))
        report.value(f"coverage:{name}", round(prof["coverage"], 4))
    return 0


def _slo(args: list[str], report: Reporter) -> int:
    """``slo`` subcommand: evaluate SLO rules, exit 1 on violation."""
    import json

    from repro.obs.slo import DEFAULT_SLOS, evaluate, parse_spec

    artifact_path: str | None = None
    scenario: str | None = None
    chaos: str | None = None
    spec_key: str | None = None
    spec_file: str | None = None
    rules_text: list[str] = []
    smoke = False
    flight_dump: str | None = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--artifact":
            i += 1
            artifact_path = args[i]
        elif a == "--scenario":
            i += 1
            scenario = args[i]
        elif a == "--chaos":
            i += 1
            chaos = args[i]
        elif a == "--spec":
            i += 1
            spec_key = args[i]
        elif a == "--spec-file":
            i += 1
            spec_file = args[i]
        elif a == "--rule":
            i += 1
            rules_text.append(args[i])
        elif a == "--smoke":
            smoke = True
        elif a == "--flight-dump":
            i += 1
            flight_dump = args[i]
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro slo (--artifact FILE | "
                "--scenario NAME | --chaos NAME) [--smoke] "
                "[--spec KEY] [--spec-file FILE] "
                "[--rule 'metric op N']... [--flight-dump FILE]")
            report.text(
                "--flight-dump (with --chaos) captures the flight-"
                "recorder window on fault injection or SLO violation")
            report.text(f"shipped specs: {', '.join(sorted(DEFAULT_SLOS))}")
            return 0
        else:
            report.text(f"unknown slo option {a!r}")
            return 2
        i += 1

    sources = [s for s in (artifact_path, scenario, chaos) if s]
    if len(sources) != 1:
        report.text("slo needs exactly one of --artifact / --scenario / "
                    "--chaos (see --help)")
        return 2
    if flight_dump is not None and chaos is None:
        report.text("--flight-dump needs a live --chaos run")
        return 2
    chaos_run = None

    if artifact_path is not None:
        with open(artifact_path, encoding="utf-8") as fh:
            artifact = json.load(fh)
        default_key = artifact.get("name") or artifact.get("scenario")
        if artifact.get("schema") == "repro.chaos":
            default_key = "chaos"
    elif scenario is not None:
        from repro.obs.bench import SCENARIOS, run_scenario

        bench_scenario = SCENARIOS.get(scenario)
        if bench_scenario is None:
            report.text(f"unknown bench scenario {scenario!r}; "
                        f"available: {', '.join(sorted(SCENARIOS))}")
            return 2
        artifact = run_scenario(bench_scenario, smoke=smoke)
        default_key = scenario
    else:
        from repro.faults.scenarios import run_chaos

        chaos_run = run_chaos(chaos, smoke=smoke,
                              flight_dump=flight_dump)
        artifact = chaos_run.artifact
        default_key = "chaos"

    rules = []
    if spec_file is not None:
        with open(spec_file, encoding="utf-8") as fh:
            rules.extend(parse_spec(fh.read().splitlines()))
    if rules_text:
        rules.extend(parse_spec(rules_text))
    if not rules:
        key = spec_key if spec_key is not None else default_key
        spec = DEFAULT_SLOS.get(key or "")
        if spec is None:
            report.text(
                f"no SLO spec for {key!r}: pass --spec "
                f"({', '.join(sorted(DEFAULT_SLOS))}), --spec-file or "
                "--rule")
            return 2
        report.value("spec", key)
        rules = parse_spec(spec)

    checks = evaluate(rules, artifact)
    report.table(
        "SLO evaluation",
        ["rule", "value", "status"],
        [[c.rule.text,
          "missing" if c.value is None else f"{c.value:g}",
          "PASS" if c.ok else "FAIL"]
         for c in checks],
    )
    service = artifact.get("service")
    if isinstance(service, dict) and service:
        report.service_report(service)
    violations = [c for c in checks if not c.ok]
    recorder = (chaos_run.flight_recorder if chaos_run is not None
                else None)
    if recorder is not None:
        # A fault may already have dumped; otherwise a violated gate
        # is itself the incident worth forensics.
        if violations and not recorder.last_dump:
            recorder.dump(trigger="slo.violation")
        if recorder.last_dump:
            report.value("flight_dump", recorder.last_dump["path"])
            report.value("flight_dump_trigger",
                         recorder.last_dump["trigger"])
    report.value("violations", len(violations))
    return 1 if violations else 0


def _chaos(args: list[str], report: Reporter) -> int:
    """``chaos`` subcommand: fault-injection scenarios + assertions."""
    from repro.faults.scenarios import (
        CHAOS_SCENARIOS,
        check_determinism,
        run_chaos,
    )

    name = "crash"
    smoke = False
    seed: int | None = None
    n_clients: int | None = None
    recovery = True
    retry: bool | None = None
    check_det = False
    min_delivered: float | None = None
    min_completed: float | None = None
    out_path: str | None = None
    flight_dump: str | None = None
    flight_window_s = 30.0
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--scenario":
            i += 1
            name = args[i]
        elif a == "--smoke":
            smoke = True
        elif a == "--seed":
            i += 1
            seed = int(args[i])
        elif a == "--clients":
            i += 1
            n_clients = int(args[i])
        elif a == "--no-recovery":
            recovery = False
        elif a == "--no-retry":
            retry = False
        elif a == "--check-determinism":
            check_det = True
        elif a == "--min-delivered":
            i += 1
            min_delivered = float(args[i])
        elif a == "--min-completed":
            i += 1
            min_completed = float(args[i])
        elif a == "--out":
            i += 1
            out_path = args[i]
        elif a == "--flight-dump":
            i += 1
            flight_dump = args[i]
        elif a == "--flight-window":
            i += 1
            flight_window_s = float(args[i])
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro chaos [--scenario NAME] [--smoke] "
                "[--seed N] [--clients N] [--no-recovery] [--no-retry] "
                "[--check-determinism] [--min-delivered FRAC] "
                "[--min-completed FRAC] [--out FILE] "
                "[--flight-dump FILE] [--flight-window SECONDS]")
            report.text(f"scenarios: {', '.join(sorted(CHAOS_SCENARIOS))}")
            return 0
        else:
            report.text(f"unknown chaos option {a!r}")
            return 2
        i += 1

    run = run_chaos(name, smoke=smoke, seed=seed, n_clients=n_clients,
                    recovery=recovery, retry=retry,
                    flight_dump=flight_dump,
                    flight_window_s=flight_window_s)
    a = run.artifact
    report.table(
        f"Chaos run — {name}" + (" (smoke)" if smoke else ""),
        ["metric", "value"],
        [
            ["sessions", a["sessions"]],
            ["completed", a["completed"]],
            ["delivered", a["delivered"]],
            ["control retries", a["retries"]],
            ["stream recoveries", a["recoveries"]],
            ["streams failed over",
             a.get("watchdog", {}).get("streams_failed_over", 0)],
            ["streams lost",
             a.get("watchdog", {}).get("streams_lost", 0)],
            ["sessions saved",
             a.get("watchdog", {}).get("sessions_saved", 0)],
            ["digest", a["digest"][:16]],
        ],
    )
    if isinstance(a.get("service"), dict) and a["service"]:
        report.service_report(a["service"])
    if out_path:
        report.artifact(f"chaos:{name}", out_path, a)
    failed = False
    if flight_dump is not None:
        dump = a.get("flight_dump") or {}
        if dump:
            report.value("flight_dump", dump.get("path"))
            report.value("flight_dump_events", dump.get("events"))
            report.value("flight_dump_trigger", dump.get("trigger"))
        elif a.get("faults", {}).get("faults"):
            # Faults were scheduled but no trigger fired the recorder —
            # the crash forensics the caller asked for don't exist.
            report.value("failure",
                         "flight recorder never dumped despite a "
                         "non-empty fault plan")
            failed = True
    if check_det:
        same, d1, d2 = check_determinism(name, smoke=smoke, seed=seed)
        report.value("deterministic", same)
        if not same:
            report.value("digest_a", d1)
            report.value("digest_b", d2)
            failed = True
    if min_delivered is not None:
        frac = a["delivered"] / a["sessions"] if a["sessions"] else 0.0
        report.value("delivered_fraction", round(frac, 3))
        if frac < min_delivered:
            report.value(
                "failure",
                f"delivered {frac:.2f} < required {min_delivered:.2f}")
            failed = True
    if min_completed is not None:
        frac = a["completed"] / a["sessions"] if a["sessions"] else 0.0
        report.value("completed_fraction", round(frac, 3))
        if frac < min_completed:
            report.value(
                "failure",
                f"completed {frac:.2f} < required {min_completed:.2f}")
            failed = True
    return 1 if failed else 0


def _trend(args: list[str], report: Reporter) -> int:
    """``trend`` subcommand: newest run vs history, exit 1 on regress."""
    import os

    from repro.obs.trend import (
        analyze_group,
        group_history,
        load_history,
        sparkline,
    )

    history_paths: list[str] = []
    artifact_paths: list[str] = []
    threshold: float | None = None
    perf_threshold: float | None = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--history":
            i += 1
            history_paths.append(args[i])
        elif a == "--artifact":
            i += 1
            artifact_paths.append(args[i])
        elif a == "--threshold":
            i += 1
            threshold = float(args[i])
        elif a == "--perf-threshold":
            i += 1
            perf_threshold = float(args[i])
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro trend [--history DIR|FILE ...] "
                "[--artifact FILE ...] [--threshold F] "
                "[--perf-threshold F]")
            report.text(
                "--history defaults to benchmarks/history; --artifact "
                "files are appended as the newest point of their group.")
            return 0
        else:
            report.text(f"unknown trend option {a!r}")
            return 2
        i += 1

    if not history_paths:
        default_dir = os.path.join("benchmarks", "history")
        if os.path.isdir(default_dir):
            history_paths.append(default_dir)
    # --artifact files load after the history so they land as the
    # newest (judged) point of their scenario group.
    history = load_history(history_paths + artifact_paths)
    if not history:
        report.text("no artifacts found; pass --history DIR and/or "
                    "--artifact FILE (see --help)")
        return 2

    kwargs: dict[str, float] = {}
    if threshold is not None:
        kwargs["threshold"] = threshold
    if perf_threshold is not None:
        kwargs["perf_threshold"] = perf_threshold
    regressions = 0
    rows = []
    for (name, smoke), docs in sorted(group_history(history).items()):
        label = name + (" (smoke)" if smoke else "")
        for row in analyze_group(docs, **kwargs):
            rows.append([
                label, row.metric, sparkline(row.values),
                f"{row.median:g}", f"{row.last:g}", row.verdict,
            ])
            if row.verdict == "regressed":
                regressions += 1
                report.value("regression", f"{label}: {row.detail}")
    report.table(
        "Trend verdicts (newest vs median ± MAD band)",
        ["scenario", "metric", "history", "median", "last", "verdict"],
        rows,
    )
    report.value("regressions", regressions)
    return 1 if regressions else 0


def _report(args: list[str], report: Reporter) -> int:
    """``report`` subcommand: markdown dashboard for one artifact."""
    import json

    from repro.obs.slo import DEFAULT_SLOS, evaluate, parse_spec
    from repro.obs.trend import (
        analyze_group,
        group_history,
        load_history,
        render_markdown_report,
    )

    artifact_path: str | None = None
    out_path: str | None = None
    history_paths: list[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--artifact":
            i += 1
            artifact_path = args[i]
        elif a == "--out":
            i += 1
            out_path = args[i]
        elif a == "--history":
            i += 1
            history_paths.append(args[i])
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro report --artifact FILE "
                "[--out FILE.md] [--history DIR|FILE ...]")
            return 0
        elif artifact_path is None and not a.startswith("-"):
            artifact_path = a
        else:
            report.text(f"unknown report option {a!r}")
            return 2
        i += 1
    if artifact_path is None:
        report.text("report needs an artifact: python -m repro report "
                    "--artifact BENCH_x.json [--out report.md]")
        return 2

    with open(artifact_path, encoding="utf-8") as fh:
        artifact = json.load(fh)

    spec_key = artifact.get("scenario") or artifact.get("name")
    if artifact.get("schema") == "repro.chaos":
        spec_key = "chaos"
    spec = DEFAULT_SLOS.get(spec_key or "")
    slo_checks = evaluate(parse_spec(spec), artifact) if spec else None

    trend_rows = None
    if history_paths:
        history = load_history(history_paths)
        key = (str(artifact.get("scenario") or artifact.get("name")
                   or "?"), bool(artifact.get("smoke")))
        docs = group_history(history).get(key, [])
        docs.append(artifact)
        trend_rows = analyze_group(docs)

    markdown = render_markdown_report(artifact, trend_rows=trend_rows,
                                      slo_checks=slo_checks)
    if out_path:
        atomic_write_text(out_path, markdown + "\n")
        report.value("report_path", out_path)
    else:
        report.text(markdown)
    if slo_checks:
        report.value("slo_violations",
                     sum(1 for c in slo_checks if not c.ok))
    return 0


def _lint(args: list[str], report: Reporter) -> int:
    """``lint`` subcommand: scenario analyzer + determinism linter."""
    from repro.analysis.runner import list_rules, run_lint

    self_lint = False
    scenarios = False
    closed = False
    capacity_bps: float | None = None
    examples_dir: str | None = None
    fmt = "text"
    baseline_path: str | None = None
    write_baseline: str | None = None
    paths: list[str] = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--self":
            self_lint = True
        elif a == "--scenarios":
            scenarios = True
        elif a == "--closed-set":
            closed = True
        elif a == "--capacity-mbps":
            i += 1
            capacity_bps = float(args[i]) * 1e6
        elif a == "--examples-dir":
            i += 1
            examples_dir = args[i]
        elif a == "--format":
            i += 1
            fmt = args[i]
            if fmt not in ("text", "github"):
                report.text(f"unknown --format {fmt!r} "
                            "(want text or github)")
                return 2
        elif a == "--baseline":
            i += 1
            baseline_path = args[i]
        elif a == "--write-baseline":
            i += 1
            write_baseline = args[i]
        elif a == "--list-rules":
            return list_rules(report)
        elif a in ("-h", "--help"):
            report.text(
                "usage: python -m repro lint [PATH ...] [--self] "
                "[--scenarios] [--capacity-mbps F] [--closed-set] "
                "[--examples-dir DIR] [--format text|github] "
                "[--baseline FILE] [--write-baseline FILE] "
                "[--list-rules]")
            report.text(
                "PATHs ending in .py (or directories of Python code) go "
                "to the Python linter (determinism + fork-safety + taint "
                "+ trace-schema families); .hml files/directories go to "
                "the scenario analyzer as one scenario set. --baseline "
                "filters findings through a reason-annotated suppression "
                "file; --write-baseline snapshots current findings.")
            return 0
        else:
            paths.append(a)
        i += 1
    if self_lint and baseline_path is None:
        default_baseline = os.path.join(os.getcwd(), "lint-baseline.json")
        if os.path.exists(default_baseline):
            baseline_path = default_baseline
    return run_lint(report, paths=paths, self_lint=self_lint,
                    scenarios=scenarios, capacity_bps=capacity_bps,
                    closed=closed, examples_dir=examples_dir, fmt=fmt,
                    baseline_path=baseline_path,
                    write_baseline=write_baseline)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    json_mode = "--json" in args
    if json_mode:
        args = [a for a in args if a != "--json"]
    report = Reporter(json_mode=json_mode)
    try:
        if not args or args[0] in ("-h", "--help", "help"):
            print(__doc__)
            return 0
        cmd = args[0]
        if cmd == "list":
            report.table("experiments", ["key", "title"],
                         [[k, title] for k, (_, title) in
                          EXPERIMENTS.items()])
            report.table("figures", ["key", "title"],
                         [[k, title] for k, title in FIGURES.items()])
            return 0
        if cmd == "demo":
            return _demo(report)
        if cmd == "trace":
            return _trace(args[1:], report)
        if cmd == "bench":
            return _bench(args[1:], report)
        if cmd == "chaos":
            return _chaos(args[1:], report)
        if cmd == "profile":
            return _profile(args[1:], report)
        if cmd == "slo":
            return _slo(args[1:], report)
        if cmd == "trend":
            return _trend(args[1:], report)
        if cmd == "report":
            return _report(args[1:], report)
        if cmd == "lint":
            return _lint(args[1:], report)
        if cmd == "run":
            if len(args) < 2:
                report.text("usage: python -m repro run "
                            "<e1..e11|table1|fig1|fig2|fig4>")
                return 2
            key = args[1].lower()
            if key in EXPERIMENTS:
                return _run_experiment(key, report)
            if key in FIGURES:
                return _run_figure(key, report)
            report.text(f"unknown target {key!r}; "
                        "try 'python -m repro list'")
            return 2
        report.text(f"unknown command {cmd!r}; try 'python -m repro help'")
        return 2
    finally:
        report.close()


if __name__ == "__main__":
    raise SystemExit(main())
