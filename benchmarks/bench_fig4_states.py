"""Figure 4 — the application state transition diagram.

Regenerates the transition table from the implemented FSM and proves
that scripted user sessions cover every edge of the diagram.
"""

from repro.analysis import render_table
from repro.service.states import (
    SessionEvent as E,
    SessionState as S,
    SessionStateMachine,
    TRANSITIONS,
    transition_table_rows,
)

#: Scripted walks that jointly cover every (state, event) edge.
WALKS = [
    # subscription, browsing, viewing, pause/resume, reload, end, bye
    [E.CONNECT, E.NOT_MEMBER, E.SUBSCRIBED, E.REQUEST_DOCUMENT,
     E.SCENARIO_RECEIVED, E.PAUSE, E.RESUME, E.RELOAD, E.SCENARIO_RECEIVED,
     E.PRESENTATION_END, E.DISCONNECT],
    # returning user, rejected request, local link
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.REQUEST_REJECTED,
     E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED, E.FOLLOW_LINK_LOCAL,
     E.SCENARIO_RECEIVED, E.DISCONNECT],
    # auth failure
    [E.CONNECT, E.AUTH_FAIL],
    # subscription failure
    [E.CONNECT, E.NOT_MEMBER, E.AUTH_FAIL],
    # cross-server suspend, return within grace
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.FOLLOW_LINK_REMOTE, E.RECONNECTED, E.SCENARIO_RECEIVED,
     E.PRESENTATION_END, E.DISCONNECT],
    # cross-server suspend, grace expires
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.FOLLOW_LINK_REMOTE, E.SUSPEND_EXPIRED, E.DISCONNECT],
    # links from the paused state
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.PAUSE, E.FOLLOW_LINK_LOCAL, E.SCENARIO_RECEIVED, E.PAUSE,
     E.FOLLOW_LINK_REMOTE, E.RECONNECTED, E.DISCONNECT],
    # stream fault mid-viewing, failover restores playback
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.STREAM_FAULT, E.STREAM_RECOVERED, E.PRESENTATION_END, E.DISCONNECT],
    # fault while paused, repeated faults, then recovery gives up
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.PAUSE, E.STREAM_FAULT, E.STREAM_FAULT, E.RECOVERY_FAILED,
     E.DISCONNECT],
    # presentation runs out while still recovering
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.STREAM_FAULT, E.PRESENTATION_END, E.DISCONNECT],
    # disconnect from every remaining state
    [E.CONNECT, E.DISCONNECT],
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.STREAM_FAULT, E.DISCONNECT],
    [E.CONNECT, E.NOT_MEMBER, E.DISCONNECT],
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.DISCONNECT],
    [E.CONNECT, E.AUTH_OK, E.DISCONNECT],
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.PAUSE, E.DISCONNECT],
    [E.CONNECT, E.AUTH_OK, E.REQUEST_DOCUMENT, E.SCENARIO_RECEIVED,
     E.FOLLOW_LINK_REMOTE, E.DISCONNECT],
]


def walk_all():
    covered = set()
    for walk in WALKS:
        fsm = SessionStateMachine()
        for event in walk:
            fsm.fire(event)
        covered |= fsm.edges_taken()
        assert fsm.state in (S.DISCONNECTED, S.BROWSING, S.VIEWING)
    return covered


def test_fig4_transition_table(report, once):
    rows = once(transition_table_rows)
    assert len(rows) == len(TRANSITIONS)
    report("fig4_states",
           render_table("Figure 4 — application state transition diagram",
                        ["state", "event", "next state"], rows))


def test_fig4_every_edge_exercised(once):
    covered = once(walk_all)
    missing = {(s.value, e.value) for s, e in set(TRANSITIONS) - covered}
    assert not missing, f"uncovered Figure 4 edges: {sorted(missing)}"


def test_fsm_throughput(benchmark):
    walk = WALKS[0]

    def run():
        fsm = SessionStateMachine()
        for event in walk:
            fsm.fire(event)
        return fsm

    fsm = benchmark(run)
    assert fsm.state is S.DISCONNECTED
