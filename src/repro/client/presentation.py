"""The presentation scheduler — the client's orchestration core.

"The presentation scheduler, by processing the presentation scenario,
determines what media streams participate in the multimedia scenario,
and when they should be invoked. This triggers the initialization of
the corresponding media stream handlers, the associated buffer
handlers, and the appropriate media presentation handlers. In
addition, the presentation scheduler is responsible for ... the
inter- and intra-media synchronization." (§4)

Responsibilities implemented here:

* build a :class:`MediaBuffer` (+ :class:`BufferMonitor`) per
  continuous stream, sized by the media time window;
* build a :class:`SkewController` per sync group (audio as master);
* insert the intentional startup delay (the largest time window) and
  spawn one :class:`PlayoutProcess` per continuous stream plus a
  show/hide process per discrete element;
* expose pause/resume and hyperlink interruption;
* surface the QoP event log and skew series for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.buffers import MediaBuffer, compute_time_window
from repro.client.metrics import (
    DEFAULT_SYNC_THRESHOLD_S,
    PlayoutEventKind,
    PlayoutEventLog,
)
from repro.client.monitor import BufferMonitor
from repro.client.playout import PauseGate, PlayoutProcess
from repro.client.renderer import VirtualRenderer
from repro.client.skew import SkewController
from repro.des import AllOf, Event, Simulator
from repro.media.types import Frame
from repro.model.scenario import PresentationScenario

__all__ = ["StreamBinding", "PresentationScheduler"]


@dataclass(frozen=True, slots=True)
class StreamBinding:
    """Per-stream delivery parameters the scheduler needs upfront."""

    stream_id: str
    clock_rate: int
    nominal_frame_interval_s: float
    expected_jitter_s: float = 0.02
    expected_loss: float = 0.01

    def __post_init__(self) -> None:
        if self.clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        if self.nominal_frame_interval_s <= 0:
            raise ValueError("nominal_frame_interval_s must be positive")


class PresentationScheduler:
    """Builds and runs the client-side presentation machinery."""

    def __init__(
        self,
        sim: Simulator,
        scenario: PresentationScenario,
        bindings: dict[str, StreamBinding],
        log: PlayoutEventLog | None = None,
        renderer: VirtualRenderer | None = None,
        time_window_s: float | None = None,
        skew_enabled: bool = True,
        monitor_enabled: bool = True,
        low_watermark: float = 0.25,
        high_watermark: float = 1.5,
        sync_threshold_s: float = DEFAULT_SYNC_THRESHOLD_S,
    ) -> None:
        self.sim = sim
        self.scenario = scenario
        self.log = log if log is not None else PlayoutEventLog()
        self.renderer = renderer if renderer is not None \
            else VirtualRenderer(scenario.layout)
        self.gate = PauseGate(sim)
        self.buffers: dict[str, MediaBuffer] = {}
        self.monitors: dict[str, BufferMonitor] = {}
        self.skew_controllers: dict[str, SkewController] = {}
        self.playouts: dict[str, PlayoutProcess] = {}
        self._bindings = bindings
        self._loaded: dict[str, Event] = {}
        self._discrete_done: dict[str, Event] = {}
        self._disabled: set[str] = set()
        self._interrupted = False
        #: session id stamped onto buffer push/drop trace events
        self.trace_session = ""
        self.started = False
        self.presentation_start: float | None = None
        self._start_called_at: float | None = None
        self.finished: Event | None = None

        for spec in scenario.continuous_streams():
            sid = spec.stream_id
            binding = bindings.get(sid)
            if binding is None:
                raise KeyError(f"no StreamBinding for continuous stream {sid!r}")
            window = time_window_s if time_window_s is not None \
                else compute_time_window(
                    binding.nominal_frame_interval_s,
                    expected_jitter_s=binding.expected_jitter_s,
                    expected_loss=binding.expected_loss,
                )
            buf = MediaBuffer(sid, binding.clock_rate, time_window_s=window)
            self.buffers[sid] = buf
            if monitor_enabled:
                self.monitors[sid] = BufferMonitor(
                    buf, low_watermark=low_watermark,
                    high_watermark=high_watermark,
                )
        for group, members in scenario.sync_groups().items():
            masters = [m for m in members if m.entry.is_sync_master]
            if not masters:
                raise ValueError(f"sync group {group} has no master stream")
            self.skew_controllers[group] = SkewController(
                group, master_id=masters[0].stream_id,
                threshold_s=sync_threshold_s, enabled=skew_enabled,
            )
        for spec in scenario.discrete_streams():
            self._loaded[spec.stream_id] = sim.event()

    # -- data path -----------------------------------------------------------
    def buffer_for(self, stream_id: str) -> MediaBuffer:
        try:
            return self.buffers[stream_id]
        except KeyError:
            raise KeyError(f"no buffer for stream {stream_id!r}") from None

    def deliver_frame(self, stream_id: str, frame: Frame) -> bool:
        """Push an arriving frame into the stream's buffer.

        Wire this (or :meth:`frame_sink`) to the RTP receiver's
        ``on_frame`` callback.
        """
        return self.buffer_for(stream_id).push(frame)

    def frame_sink(self, stream_id: str):
        """An ``on_frame(frame, arrival)`` callback bound to a stream."""
        buf = self.buffer_for(stream_id)
        sim = self.sim

        def sink(frame: Frame, _arrival_s: float) -> None:
            accepted = buf.push(frame)
            if accepted:
                if sim._tracing_detail:
                    sim._tracer.emit(sim.now, "buffer.push", stream_id,
                                     session=self.trace_session,
                                     frame=frame.seq,
                                     occupancy_s=buf.occupancy_s)
            elif sim._tracing:
                sim._tracer.emit(sim.now, "buffer.drop", stream_id,
                                 session=self.trace_session,
                                 frame=frame.seq, reason="overflow")

        return sink

    def mark_loaded(self, element_id: str) -> None:
        """Signal that a discrete element's content has arrived."""
        ev = self._loaded.get(element_id)
        if ev is not None and not ev.triggered:
            ev.succeed(self.sim.now)

    # -- control -------------------------------------------------------------
    @property
    def initial_delay_s(self) -> float:
        """The intentional startup delay: the largest media time window."""
        if not self.buffers:
            return 0.0
        return max(b.time_window_s for b in self.buffers.values())

    def start(self, initial_delay_s: float | None = None) -> Event:
        """Begin the presentation after the startup delay.

        Returns an event that triggers when every stream has finished
        playing (or the presentation was interrupted).
        """
        if self.started:
            raise RuntimeError("presentation already started")
        self.started = True
        delay = self.initial_delay_s if initial_delay_s is None \
            else initial_delay_s
        self._start_called_at = self.sim.now
        self.presentation_start = self.sim.now + delay
        done_events: list[Event] = []
        for spec in self.scenario.continuous_streams():
            sid = spec.stream_id
            if sid in self._disabled:
                skipped = self.sim.event()
                skipped.succeed(0.0)
                done_events.append(skipped)
                continue
            binding = self._bindings[sid]
            skew = None
            if spec.entry.sync_group is not None:
                skew = self.skew_controllers.get(spec.entry.sync_group)
            # Sync-group slaves stall on starvation (so skew develops
            # and the short-term mechanism is what re-locks the pair);
            # independent streams and masters stay deadline-driven.
            is_slave = skew is not None and not spec.entry.is_sync_master
            gap_policy = "stall" if is_slave else "advance"
            max_gaps = None
            if gap_policy == "stall":
                max_gaps = int(
                    round(20.0 / binding.nominal_frame_interval_s)
                )
            playout = PlayoutProcess(
                self.sim,
                spec.entry,
                self.buffers[sid],
                self.log,
                nominal_frame_interval_s=binding.nominal_frame_interval_s,
                monitor=self.monitors.get(sid),
                skew=skew,
                gate=self.gate,
                start_offset_s=delay + spec.entry.start_time,
                max_consecutive_gaps=max_gaps,
                gap_policy=gap_policy,
            )
            self.playouts[sid] = playout
            done_events.append(playout.finished)
        for spec in self.scenario.discrete_streams():
            done = self.sim.event()
            self._discrete_done[spec.stream_id] = done
            self.sim.process(
                self._discrete_playout(spec.entry, delay, done),
                name=f"show:{spec.stream_id}",
            )
            done_events.append(done)
        self.finished = AllOf(self.sim, done_events)
        return self.finished

    def _discrete_playout(self, entry, delay: float, done: Event):
        sim = self.sim
        yield sim.timeout(delay + entry.start_time)
        if self._interrupted or entry.stream_id in self._disabled:
            if not done.triggered:
                done.succeed()
            return
        loaded = self._loaded[entry.stream_id]
        if not loaded.triggered:
            yield loaded  # content late: show as soon as it arrives
        if self._interrupted or entry.stream_id in self._disabled:
            if not done.triggered:
                done.succeed()
            return
        self.renderer.show(entry.stream_id, sim.now)
        self.log.record(sim.now, entry.stream_id, PlayoutEventKind.SHOW)
        if entry.duration is not None:
            yield sim.timeout(entry.duration)
            if entry.stream_id not in self._disabled:
                self.renderer.hide(entry.stream_id, sim.now)
                self.log.record(sim.now, entry.stream_id,
                                PlayoutEventKind.HIDE)
        if not done.triggered:
            done.succeed()

    def disable_stream(self, stream_id: str) -> None:
        """User disabled one media of the presentation (§5).

        A running continuous stream stops playing (its buffer stops
        draining; the server is told separately to stop sending); a
        visible discrete element is hidden; the presentation as a
        whole still completes.
        """
        known = {s.stream_id for s in self.scenario.streams}
        if stream_id not in known:
            raise KeyError(f"no stream {stream_id!r} in this presentation")
        self._disabled.add(stream_id)
        playout = self.playouts.get(stream_id)
        if playout is not None:
            playout.cancel("disabled")
        done = self._discrete_done.get(stream_id)
        if done is not None:
            if stream_id in self.renderer.visible_now():
                self.renderer.hide(stream_id, self.sim.now)
                self.log.record(self.sim.now, stream_id,
                                PlayoutEventKind.HIDE)
            if not done.triggered:
                done.succeed()

    @property
    def disabled_streams(self) -> set[str]:
        return set(self._disabled)

    def pause(self) -> None:
        self.gate.pause()

    def resume(self) -> None:
        self.gate.resume()

    def interrupt(self) -> None:
        """Hyperlink activated: stop the running presentation."""
        self._interrupted = True
        for playout in self.playouts.values():
            if playout.process.is_alive:
                playout.process.interrupt("hyperlink")
        self.renderer.finish(self.sim.now)

    # -- results ------------------------------------------------------------
    def startup_latency_s(self) -> float | None:
        """Time from scheduler start to the first presented event."""
        if self.presentation_start is None:
            return None
        starts = [
            e.time
            for e in self.log.events
            if e.kind in (PlayoutEventKind.FRAME, PlayoutEventKind.SHOW)
        ]
        if not starts:
            return None
        return min(starts) - self._start_called_at

    def skew_series(self):
        return {g: c.series for g, c in self.skew_controllers.items()}
