"""Media substrate: types, codecs with quality-grade ladders, and
synthetic frame-accurate traces.

The 1996 service streamed real MPEG/AVI video and PCM/ADPCM/VADPCM
audio; offline we substitute statistically faithful synthetic traces
(documented in DESIGN.md). Grading, buffering and synchronization all
operate on frame sizes, rates and timestamps — exactly what these
traces provide.
"""

from repro.media.types import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    Frame,
    FrameKind,
    MediaObject,
    MediaType,
)
from repro.media.encodings import (
    AUDIO_LADDER,
    IMAGE_ENCODINGS,
    SUSPENDED,
    VIDEO_LADDER,
    Codec,
    CodecRegistry,
    QualityGrade,
    default_registry,
)
from repro.media.traces import (
    AudioTraceGenerator,
    MediaTrace,
    VideoTraceGenerator,
    trace_for_object,
)
from repro.media.store import MediaStore

__all__ = [
    "AUDIO_LADDER",
    "AudioTraceGenerator",
    "Codec",
    "CodecRegistry",
    "ContinuousMediaObject",
    "DiscreteMediaObject",
    "Frame",
    "FrameKind",
    "IMAGE_ENCODINGS",
    "MediaObject",
    "MediaStore",
    "MediaTrace",
    "MediaType",
    "QualityGrade",
    "SUSPENDED",
    "VIDEO_LADDER",
    "VideoTraceGenerator",
    "default_registry",
    "trace_for_object",
]
