"""Figure 2 — the worked multimedia scenario and its playout timeline.

Reconstructs the paper's §3.1 example (text throughout; I1 then I2;
audio A1 synchronized with video V; closing audio A2), regenerates
the timeline from the markup via the playout-schedule extraction, and
verifies that an actual end-to-end presentation realizes it.
"""

import pytest

from repro.analysis import render_table
from repro.core import ServiceEngine
from repro.hml import parse
from repro.hml.examples import Figure2Times, figure2_markup
from repro.model import PresentationScenario, ascii_timeline, build_playout_schedule


def test_fig2_schedule_matches_paper(report, once):
    t = Figure2Times()
    markup = figure2_markup(t)
    schedule = once(lambda: build_playout_schedule(parse(markup)))
    by_id = {e.stream_id: e for e in schedule}
    # The paper's timeline constraints:
    assert by_id["I1"].start_time == 0.0  # I1 at presentation start
    assert (by_id["I2"].start_time
            >= by_id["I1"].start_time + by_id["I1"].duration - 1e-9)
    assert by_id["A1"].start_time == by_id["V"].start_time  # synchronized
    assert by_id["A1"].duration == by_id["V"].duration  # start & stop together
    assert by_id["A1"].sync_group == by_id["V"].sync_group
    assert by_id["A2"].start_time > by_id["A1"].start_time
    timeline = ascii_timeline(schedule, width=56)
    rows = [[e.stream_id, e.media_type.value, e.start_time,
             e.duration, e.sync_group or "-"] for e in schedule]
    # The figure's other half: the graphical presentation (desktop
    # snapshot while I2 and the A/V pair are both active).
    from repro.client import VirtualRenderer
    from repro.model import PresentationScenario

    scenario = PresentationScenario.from_markup(markup)
    renderer = VirtualRenderer(scenario.layout)
    snap_t = t.t_i2 + 1.0
    for e in schedule:
        if e.media_type.value == "image" and e.start_time <= snap_t:
            renderer.show(e.stream_id, e.start_time)
            if e.end_time is not None and e.end_time <= snap_t:
                renderer.hide(e.stream_id, e.end_time)
    renderer.show("V", t.t_a1)
    desktop = renderer.ascii_snapshot(snap_t)
    assert "I2" in desktop and "I1" not in desktop
    report("fig2_scenario",
           "Figure 2 — the example multimedia scenario\n"
           "===========================================\n"
           + render_table("Playout schedule (the E_i structures)",
                          ["stream", "type", "t_i", "d_i", "sync group"],
                          rows)
           + "\n\nTiming illustration:\n" + timeline
           + f"\n\nGraphical illustration (desktop at t={snap_t:g}s):\n"
           + desktop)


def test_fig2_presentation_realizes_timeline(once):
    """Run the scenario through the full service; presented intervals
    must match the authored schedule (within buffering tolerance)."""
    def run():
        eng = ServiceEngine()
        eng.add_server("srv1", documents={"fig2": (figure2_markup(), "demo")})
        return eng.orchestrator.run_full_session("srv1", "fig2")

    result = once(run)
    assert result.completed
    t = Figure2Times()
    log = result.log
    # Image intervals follow the scenario (relative to each other).
    i1 = log.start_time("I1")
    i2 = log.start_time("I2")
    a1 = log.start_time("A1")
    v = log.start_time("V")
    a2 = log.start_time("A2")
    assert i1 is not None and i2 is not None
    assert i2 - i1 == pytest.approx(t.t_i2, abs=0.1)
    assert a1 == pytest.approx(v, abs=0.05)  # synchronized start
    assert a2 - a1 == pytest.approx(t.t_a2 - t.t_a1, abs=0.2)
    # The synchronized pair stayed within the lip-sync threshold.
    assert result.worst_skew_s() < 0.08


def test_schedule_extraction_throughput(benchmark):
    markup = figure2_markup()
    doc = parse(markup)
    schedule = benchmark(build_playout_schedule, doc)
    assert len(schedule) == 5
