"""Unit tests for datagram and reliable (go-back-N) transports."""

import pytest

from repro.des import RngRegistry, Simulator
from repro.net import (
    DatagramSocket,
    GilbertElliottLoss,
    Network,
    ReliableReceiver,
    ReliableSender,
)


def build_net(loss_model=None, rate=2_000_000, delay=0.005):
    sim = Simulator()
    net = Network(sim)
    net.add_node("client")
    net.add_node("server")
    net.add_link("server", "client", rate, delay, loss_model=loss_model)
    net.add_link("client", "server", rate, delay)
    return sim, net


def test_datagram_roundtrip():
    sim, net = build_net()
    got = []
    DatagramSocket(net, "client", 6000, on_packet=lambda p: got.append(p.payload))
    tx = DatagramSocket(net, "server", 6001)
    tx.sendto("client", 6000, 500, payload="hello", flow_id="f")
    sim.run()
    assert got == ["hello"]
    assert tx.tx_packets == 1


def test_datagram_close_unbinds():
    sim, net = build_net()
    sock = DatagramSocket(net, "client", 6000)
    sock.close()
    # Port can be rebound after close.
    DatagramSocket(net, "client", 6000)


def test_reliable_single_message_lossless():
    sim, net = build_net()
    msgs = []
    ReliableReceiver(net, "client", 7000,
                     on_message=lambda data, size, flow: msgs.append((data, size)))
    tx = ReliableSender(net, "server", 7001, "client", 7000, flow_id="doc")
    done = tx.send_message(10_000, payload={"doc": 1})
    sim.run(until=done)
    assert msgs == [({"doc": 1}, 10_000)]
    assert tx.retransmissions == 0


def test_reliable_message_larger_than_window():
    sim, net = build_net()
    msgs = []
    ReliableReceiver(net, "client", 7000,
                     on_message=lambda data, size, flow: msgs.append(size))
    tx = ReliableSender(net, "server", 7001, "client", 7000, flow_id="doc",
                        window=4, mss=1000)
    done = tx.send_message(50_000)
    sim.run(until=done)
    assert msgs == [50_000]


def test_reliable_recovers_from_loss():
    rng = RngRegistry(seed=2).stream("loss")
    ge = GilbertElliottLoss(rng, p_gb=0.2, p_bg=0.5, loss_bad=0.5)
    sim, net = build_net(loss_model=ge)
    msgs = []
    ReliableReceiver(net, "client", 7000,
                     on_message=lambda data, size, flow: msgs.append(size))
    tx = ReliableSender(net, "server", 7001, "client", 7000, flow_id="doc",
                        mss=1000, rto_s=0.05)
    done = tx.send_message(40_000)
    sim.run(until=done)
    assert msgs == [40_000]
    assert tx.retransmissions > 0


def test_reliable_multiple_messages_in_order():
    sim, net = build_net()
    msgs = []
    ReliableReceiver(net, "client", 7000,
                     on_message=lambda data, size, flow: msgs.append(data))
    tx = ReliableSender(net, "server", 7001, "client", 7000, flow_id="doc")
    tx.send_message(3000, payload="first")
    tx.send_message(3000, payload="second")
    done = tx.send_message(3000, payload="third")
    sim.run(until=done)
    assert msgs == ["first", "second", "third"]


def test_reliable_two_flows_one_receiver():
    sim = Simulator()
    net = Network(sim)
    for n in ("c", "s1", "s2"):
        net.add_node(n)
    net.add_duplex_link("c", "s1", 2e6, 0.005)
    net.add_duplex_link("c", "s2", 2e6, 0.005)
    msgs = []
    ReliableReceiver(net, "c", 7000,
                     on_message=lambda data, size, flow: msgs.append((flow, data)))
    t1 = ReliableSender(net, "s1", 7001, "c", 7000, flow_id="flow-1")
    t2 = ReliableSender(net, "s2", 7001, "c", 7000, flow_id="flow-2")
    d1 = t1.send_message(5000, payload="from-s1")
    d2 = t2.send_message(5000, payload="from-s2")
    sim.run(until=net.sim.all_of([d1, d2]))
    assert sorted(msgs) == [("flow-1", "from-s1"), ("flow-2", "from-s2")]


def test_reliable_sender_rejects_bad_usage():
    sim, net = build_net()
    tx = ReliableSender(net, "server", 7001, "client", 7000, flow_id="doc")
    with pytest.raises(ValueError):
        tx.send_message(0)
    tx.close()
    with pytest.raises(RuntimeError):
        tx.send_message(100)


def test_reliable_delivery_slower_under_loss():
    def timed(loss):
        if loss:
            rng = RngRegistry(seed=5).stream("l")
            ge = GilbertElliottLoss(rng, p_gb=0.3, p_bg=0.4, loss_bad=0.6)
        else:
            ge = None
        sim, net = build_net(loss_model=ge)
        ReliableReceiver(net, "client", 7000)
        tx = ReliableSender(net, "server", 7001, "client", 7000,
                            flow_id="doc", mss=1000, rto_s=0.05)
        done = tx.send_message(30_000)
        return sim.run(until=done)

    assert timed(loss=True) > timed(loss=False)
