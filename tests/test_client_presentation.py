"""Unit tests for the presentation scheduler, renderer and metrics."""

import pytest

from repro.client import PresentationScheduler, StreamBinding, VirtualRenderer
from repro.client.metrics import PlayoutEventKind, PlayoutEventLog
from repro.des import Simulator
from repro.hml import DocumentBuilder
from repro.hml.examples import figure2_document
from repro.media.types import Frame, FrameKind
from repro.model import PresentationScenario

AUDIO_CLOCK = 8_000
VIDEO_CLOCK = 90_000


def bindings_for(scenario):
    out = {}
    for s in scenario.continuous_streams():
        if s.media_type.value == "audio":
            out[s.stream_id] = StreamBinding(s.stream_id, AUDIO_CLOCK, 0.02)
        else:
            out[s.stream_id] = StreamBinding(s.stream_id, VIDEO_CLOCK, 0.04)
    return out


def audio_frame(sid, seq):
    return Frame(sid, seq=seq, media_time=seq * 160, duration=160,
                 size_bytes=160, kind=FrameKind.SAMPLE)


def video_frame(sid, seq):
    return Frame(sid, seq=seq, media_time=seq * 3600, duration=3600,
                 size_bytes=1500, kind=FrameKind.P)


def feed_all(sim, sched, scenario, horizon=30.0):
    """Feed each stream at nominal rate from its scenario start time
    (what the server's flow scheduler arranges in the full system)."""

    def feeder(sid, maker, interval, duration, start):
        if start > 0:
            yield sim.timeout(start)
        n = int(duration / interval) + 1
        for i in range(n):
            sched.deliver_frame(sid, maker(sid, i))
            yield sim.timeout(interval)

    for s in scenario.continuous_streams():
        dur = s.entry.duration or horizon
        if s.media_type.value == "audio":
            sim.process(feeder(s.stream_id, audio_frame, 0.02, dur,
                               s.entry.start_time))
        else:
            sim.process(feeder(s.stream_id, video_frame, 0.04, dur,
                               s.entry.start_time))


def test_figure2_end_to_end_presentation():
    sim = Simulator()
    scenario = PresentationScenario.from_document(figure2_document())
    sched = PresentationScheduler(sim, scenario, bindings_for(scenario))
    feed_all(sim, sched, scenario)
    for s in scenario.discrete_streams():
        sched.mark_loaded(s.stream_id)
    done = sched.start()
    sim.run(until=done)
    # All five streams presented.
    for sid in ("A1", "A2", "V"):
        assert sched.log.count(PlayoutEventKind.FRAME, sid) > 0
        assert sched.log.count(PlayoutEventKind.STOP, sid) == 1
    for sid in ("I1", "I2"):
        assert sched.log.count(PlayoutEventKind.SHOW, sid) == 1
        assert sched.log.count(PlayoutEventKind.HIDE, sid) == 1


def test_images_shown_at_scenario_times():
    sim = Simulator()
    scenario = PresentationScenario.from_document(figure2_document())
    sched = PresentationScheduler(sim, scenario, bindings_for(scenario))
    feed_all(sim, sched, scenario)
    for s in scenario.discrete_streams():
        sched.mark_loaded(s.stream_id)
    done = sched.start(initial_delay_s=1.0)
    sim.run(until=done)
    i1 = sched.renderer.interval_of("I1")
    i2 = sched.renderer.interval_of("I2")
    assert i1.shown_at == pytest.approx(1.0)  # delay + t=0
    assert i1.hidden_at == pytest.approx(1.0 + 6.0)
    assert i2.shown_at == pytest.approx(1.0 + 6.0)


def test_av_pair_stays_in_sync():
    sim = Simulator()
    scenario = PresentationScenario.from_document(figure2_document())
    sched = PresentationScheduler(sim, scenario, bindings_for(scenario))
    feed_all(sim, sched, scenario)
    for s in scenario.discrete_streams():
        sched.mark_loaded(s.stream_id)
    done = sched.start()
    sim.run(until=done)
    (series,) = sched.skew_series().values()
    assert len(series) > 0
    assert series.max_abs_s < 0.08
    assert series.fraction_out_of_sync == 0.0


def test_initial_delay_is_largest_time_window():
    sim = Simulator()
    scenario = PresentationScenario.from_document(figure2_document())
    sched = PresentationScheduler(sim, scenario, bindings_for(scenario),
                                  time_window_s=0.7)
    assert sched.initial_delay_s == pytest.approx(0.7)


def test_missing_binding_rejected():
    sim = Simulator()
    scenario = PresentationScenario.from_document(figure2_document())
    with pytest.raises(KeyError, match="StreamBinding"):
        PresentationScheduler(sim, scenario, {})


def test_late_image_shows_on_arrival():
    sim = Simulator()
    doc = (
        DocumentBuilder("t")
        .image("s:/i.gif", "I1", startime=1.0, duration=2.0)
        .build()
    )
    scenario = PresentationScenario.from_document(doc)
    sched = PresentationScheduler(sim, scenario, {})

    def loader():
        yield sim.timeout(5.0)  # content arrives after its deadline
        sched.mark_loaded("I1")

    sim.process(loader())
    done = sched.start(initial_delay_s=0.0)
    sim.run(until=done)
    assert sched.renderer.interval_of("I1").shown_at == pytest.approx(5.0)


def test_pause_resume_stops_clock():
    sim = Simulator()
    doc = DocumentBuilder("t").audio("s:/a.au", "A", duration=2.0).build()
    scenario = PresentationScenario.from_document(doc)
    sched = PresentationScheduler(
        sim, scenario, {"A": StreamBinding("A", AUDIO_CLOCK, 0.02)},
        time_window_s=0.2,
    )
    for i in range(101):
        sched.deliver_frame("A", audio_frame("A", i))
    done = sched.start(initial_delay_s=0.0)

    def pauser():
        yield sim.timeout(1.0)
        sched.pause()
        yield sim.timeout(3.0)
        sched.resume()

    sim.process(pauser())
    sim.run(until=done)
    assert sim.now == pytest.approx(5.0, abs=0.1)
    assert sched.log.count(PlayoutEventKind.PAUSE, "A") == 1


def test_interrupt_cancels_presentation():
    sim = Simulator()
    doc = DocumentBuilder("t").audio("s:/a.au", "A", duration=60.0).build()
    scenario = PresentationScenario.from_document(doc)
    sched = PresentationScheduler(
        sim, scenario, {"A": StreamBinding("A", AUDIO_CLOCK, 0.02)},
        time_window_s=0.2,
    )
    for i in range(3001):
        sched.deliver_frame("A", audio_frame("A", i))
    sched.start(initial_delay_s=0.0)

    def clicker():
        yield sim.timeout(2.0)
        sched.interrupt()

    sim.process(clicker())
    sim.run()
    assert sched.log.count(PlayoutEventKind.STOP, "A") == 0
    assert sim.now < 70.0


def test_double_start_rejected():
    sim = Simulator()
    scenario = PresentationScenario.from_document(DocumentBuilder("t").build())
    sched = PresentationScheduler(sim, scenario, {})
    sched.start()
    with pytest.raises(RuntimeError):
        sched.start()


def test_startup_latency_measured():
    sim = Simulator()
    doc = DocumentBuilder("t").audio("s:/a.au", "A", duration=1.0).build()
    scenario = PresentationScenario.from_document(doc)
    sched = PresentationScheduler(
        sim, scenario, {"A": StreamBinding("A", AUDIO_CLOCK, 0.02)},
        time_window_s=0.5,
    )
    for i in range(51):
        sched.deliver_frame("A", audio_frame("A", i))
    done = sched.start()
    sim.run(until=done)
    assert sched.startup_latency_s() == pytest.approx(0.5, abs=0.02)


# ----------------------------------------------------------------- renderer
def test_renderer_visible_at_queries():
    r = VirtualRenderer()
    r.show("a", 1.0)
    r.show("b", 2.0)
    r.hide("a", 3.0)
    assert r.visible_now() == ["b"]
    assert r.visible_at(1.5) == ["a"]
    assert r.visible_at(2.5) == ["a", "b"]
    assert r.visible_at(3.5) == ["b"]
    r.finish(4.0)
    assert r.visible_now() == []
    assert r.interval_of("b").hidden_at == 4.0
    assert r.interval_of("zzz") is None


def test_renderer_double_show_idempotent():
    r = VirtualRenderer()
    r.show("a", 1.0)
    r.show("a", 2.0)
    assert r.interval_of("a").shown_at == 1.0
    r.hide("zzz", 3.0)  # hiding unknown id is a no-op


# ----------------------------------------------------------------- metrics
def test_event_log_summary_and_trajectory():
    log = PlayoutEventLog()
    log.record(0.0, "v", PlayoutEventKind.FRAME, grade=0)
    log.record(0.04, "v", PlayoutEventKind.FRAME, grade=0)
    log.record(0.08, "v", PlayoutEventKind.GAP)
    log.record(0.12, "v", PlayoutEventKind.FRAME, grade=2)
    log.record(0.16, "v", PlayoutEventKind.DUPLICATE)
    s = log.summary("v")
    assert s["frames"] == 3
    assert s["gaps"] == 1
    assert s["duplicates"] == 1
    assert s["gap_ratio"] == pytest.approx(1 / 5)
    assert s["mean_grade"] == pytest.approx(2 / 3)
    assert log.grade_trajectory("v") == [(0.0, 0), (0.12, 2)]
    assert log.gap_time_s(0.04, "v") == pytest.approx(0.04)
