"""Declarative topology layers: specs, compiler, and the thin builder.

The tentpole contract: the classic star is now a one-layer stack, and
compiling it must be byte-identical (population digest) to the
pre-layer imperative builder — every node, link, and RNG stream in the
same order.
"""

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import ServiceEngine
from repro.faults import population_digest
from repro.faults.scenarios import chaos_markup
from repro.net import (
    AccessLinkSpec,
    CoreNetworkLayer,
    MediaPlacementLayer,
    PopulationLayer,
    PopulationSpec,
    RegionLayer,
    RegionSpec,
    TopologyBuilder,
    TopologyCompiler,
    cdn_stack,
)
from repro.net.topology import Network
from repro.des import Simulator


# -- AccessLinkSpec defaults + derive() ---------------------------------------

def test_access_spec_has_usable_defaults():
    spec = AccessLinkSpec()
    assert spec.rate_bps > 0
    assert spec.delay_s > 0
    assert spec.queue_packets > 0
    assert spec.loss_model is None


def test_derive_overrides_only_named_fields():
    base = AccessLinkSpec(rate_bps=10e6, delay_s=0.010)
    fast = base.derive(rate_bps=25e6)
    assert fast.rate_bps == 25e6
    assert fast.delay_s == base.delay_s
    assert fast.queue_packets == base.queue_packets
    # the base is frozen and untouched
    assert base.rate_bps == 10e6


def test_derive_rejects_unknown_fields():
    with pytest.raises(TypeError):
        AccessLinkSpec().derive(bandwidth=1e6)


def test_derive_revalidates():
    with pytest.raises(ValueError):
        AccessLinkSpec().derive(rate_bps=-1)


# -- compiler validation ------------------------------------------------------

def _network():
    return Network(Simulator())


def test_compiler_requires_exactly_one_core_layer():
    with pytest.raises(ValueError):
        TopologyCompiler(())
    with pytest.raises(ValueError):
        TopologyCompiler((CoreNetworkLayer(), CoreNetworkLayer()))


def test_duplicate_region_rejected():
    with pytest.raises(ValueError):
        RegionLayer((RegionSpec("east"), RegionSpec("east")))
    # ... and across two RegionLayer instances, at compile time
    stack = (
        CoreNetworkLayer(),
        RegionLayer((RegionSpec("east"),)),
        RegionLayer((RegionSpec("east"),)),
    )
    with pytest.raises(ValueError):
        TopologyCompiler(stack).compile(_network())


def test_placement_must_name_known_regions():
    stack = (
        CoreNetworkLayer(),
        RegionLayer((RegionSpec("east"),)),
        MediaPlacementLayer(replicate_to=("west",)),
    )
    with pytest.raises(KeyError):
        TopologyCompiler(stack).compile(_network())


def test_population_must_name_known_region():
    stack = (
        CoreNetworkLayer(),
        PopulationLayer((PopulationSpec("nowhere", 2),)),
    )
    with pytest.raises(KeyError):
        TopologyCompiler(stack).compile(_network())


# -- compiled shape -----------------------------------------------------------

def test_region_layer_builds_pops_behind_the_core():
    stack = (
        CoreNetworkLayer(),
        RegionLayer((RegionSpec("east"), RegionSpec("west"))),
    )
    topo = TopologyCompiler(stack).compile(_network())
    assert topo.router == "router"
    assert topo.pop_router("east") == "pop:east"
    assert ("router", "pop:east") in topo.network.links
    assert ("pop:west", "router") in topo.network.links
    assert topo.region_names() == ["east", "west"]


def test_colocated_region_rides_the_core_router():
    stack = (
        CoreNetworkLayer(),
        RegionLayer((RegionSpec("metro", colocated=True),)),
    )
    topo = TopologyCompiler(stack).compile(_network())
    assert topo.pop_router("metro") == topo.router
    assert "pop:metro" not in topo.network.nodes
    # colocated regions never receive replicas
    assert "metro" not in topo.replica_regions()


def test_population_layer_attaches_clients_to_their_pop():
    stack = (
        CoreNetworkLayer(),
        RegionLayer((RegionSpec("east"),)),
        PopulationLayer((PopulationSpec("east", 2),)),
    )
    topo = TopologyCompiler(stack).compile(_network())
    assert topo.clients == ["east-c1", "east-c2"]
    assert topo.region_of("east-c1") == "east"
    # each viewer hangs off its region's POP, not the core
    assert ("pop:east", "east-c1") in topo.network.links


def test_cdn_stack_end_to_end_shape():
    topo = TopologyCompiler(cdn_stack(clients_per_region=2)).compile(
        _network()
    )
    assert topo.region_names() == ["east", "west"]
    assert topo.clients == ["east-c1", "east-c2", "west-c1", "west-c2"]
    assert topo.placement is not None
    assert topo.replica_regions() == ["east", "west"]


# -- A/B: the thin builder vs an explicit one-layer stack ---------------------

def _digest(layers):
    eng = ServiceEngine(EngineConfig(seed=11), layers=layers)
    eng.add_server("srv1", documents={"doc": (chaos_markup(2.0), "t")})
    pop = eng.orchestrator.run_population(2, "srv1", "doc", stagger_s=0.3)
    return population_digest(pop)


def test_single_region_stack_is_byte_identical_to_builder():
    # layers=None routes through TopologyBuilder (the legacy surface);
    # an explicit bare-core stack must compile the same topology,
    # streams, and event order — the acceptance digest check.
    assert _digest(None) == _digest([CoreNetworkLayer()])


def test_builder_is_a_compiled_topology():
    net = _network()
    topo = TopologyBuilder(net)
    assert topo.router == "router"
    topo.add_client("c1", AccessLinkSpec())
    assert topo.clients == ["c1"]
    assert ("router", "c1") in net.links
