"""E8 (ablation) — the degrade ordering.

Claim (§4): "the service first applies the grading technique to the
video stream, since audio or voice is considered to be more important
to users, meaning that users can tolerate lower video quality rather
than 'not hear well'." The ablation compares video-first with
audio-first and type-agnostic orderings.
"""

from repro.analysis import render_table
from repro.core.experiments import run_grading_order_ablation


def test_e8_grading_order(report, once):
    headers, rows = once(run_grading_order_ablation)
    report("e8_grading_order",
           render_table("E8 — ablation of the degrade ordering under a "
                        "congestion epoch", headers, rows))
    by_order = {r[0]: r for r in rows}
    vf = by_order["video-first"]
    af = by_order["audio-first"]
    # Video-first keeps the audio untouched ("hear well"): grade 0.
    assert vf[1] == 0.0
    # Audio-first sacrifices audio quality instead.
    assert af[1] > 0.0
    # Video-first degrades video more than audio-first does.
    assert vf[2] >= af[2]
    # And audio presentation suffers most under audio-first.
    assert af[3] >= vf[3]
