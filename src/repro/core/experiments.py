"""Canned experiment runners (E1–E9 of DESIGN.md).

Each function builds fresh engines, runs the sweep and returns
``(headers, rows)`` ready for :func:`repro.analysis.tables.render_table`.
The benchmarks print these tables and assert the qualitative claims;
EXPERIMENTS.md records paper-claim vs. measured outcome.
"""

from __future__ import annotations

from repro.client.metrics import PlayoutEventKind
from repro.core.config import EngineConfig, TrafficConfig
from repro.core.engine import ServiceEngine
from repro.hml import DocumentBuilder, serialize
from repro.server.accounts import CONTRACT_CLASSES
from repro.server.admission import AdmissionController, AdmissionRequest
from repro.server.qos_manager import GradingPolicy

__all__ = [
    "av_markup",
    "run_time_window_sweep",
    "run_skew_control_matrix",
    "run_grading_comparison",
    "run_admission_sweep",
    "run_watermark_comparison",
    "run_navigation_grace",
    "run_search_experiment",
    "run_grading_order_ablation",
    "run_interplay_experiment",
    "run_scaling_experiment",
    "run_population_scaling",
    "run_atm_comparison",
    "run_negotiation_experiment",
    "run_rtcp_interval_ablation",
]


def av_markup(duration: float = 10.0, with_images: bool = False) -> str:
    """The standard workload: a synchronized A/V pair (+ images)."""
    b = (
        DocumentBuilder("Experiment document")
        .text("experiment workload")
        .audio_video("audsrv:/a.au", "vidsrv:/v.mpg", "A", "V",
                     startime=0.0, duration=duration)
    )
    if with_images:
        b.image("imgsrv:/i1.gif", "I1", startime=0.0, duration=duration / 2)
        b.image("imgsrv:/i2.gif", "I2", startime=duration / 2,
                duration=duration / 2)
    return serialize(b.build())


def _session(config: EngineConfig, markup: str, seed: int = 0):
    config.seed = seed
    eng = ServiceEngine(config)
    eng.add_server("srv1", documents={"doc": (markup, "exp")})
    return eng.orchestrator.run_full_session("srv1", "doc")


# -------------------------------------------------------------------- E1
def run_time_window_sweep(
    windows=(0.1, 0.25, 0.5, 1.0, 2.0),
    duration_s: float = 10.0,
    traffic_rate_bps: float = 12e6,
    seed: int = 1,
):
    """E1: startup delay vs. presentation quality across time windows.

    Bursty cross traffic transiently oversubscribes the 10 Mb/s access
    link; a deep queue turns the bursts into delay variation (hundreds
    of ms) rather than loss, which is exactly what the media time
    window exists to absorb. Larger windows buy smoothness with
    startup latency.
    """
    headers = ["window_s", "startup_s", "gaps", "gap_ratio",
               "underflows", "max_skew_ms"]
    rows = []
    for w in windows:
        cfg = EngineConfig(
            time_window_s=w,
            access_queue_packets=400,
            traffic=[TrafficConfig(kind="onoff", rate_bps=traffic_rate_bps,
                                   on_mean_s=0.4, off_mean_s=0.4)],
        )
        r = _session(cfg, av_markup(duration_s), seed=seed)
        rows.append([
            w,
            round(r.startup_latency_s or 0.0, 3),
            r.total_gaps(),
            round(r.total_gap_ratio(), 4),
            sum(s.buffer_underflows for s in r.streams.values()),
            round(r.worst_skew_s() * 1e3, 1),
        ])
    return headers, rows


# -------------------------------------------------------------------- E2
def run_skew_control_matrix(
    burst_rates=(8e6, 12e6, 16e6),
    duration_s: float = 15.0,
    seed: int = 2,
):
    """E2: short-term skew control on/off under bursty congestion.

    Deep access queues turn traffic bursts into delivery outages
    followed by catch-up floods: the video slave stalls, then receives
    a backlog it would otherwise play at nominal rate — staying
    permanently behind its audio master. The skew controller's frame
    drops (and duplicates when ahead) are what re-lock the pair; this
    is precisely the [LIT 92] buffer-occupancy scenario the paper
    adopts. A small time window keeps the lag from being hidden by
    prefill.
    """
    headers = ["burst_bps", "skew_ctl", "max_skew_ms", "mean_skew_ms",
               "out_of_sync_%", "drops", "dups"]
    rows = []
    for rate in burst_rates:
        for ctl in (True, False):
            cfg = EngineConfig(
                skew_control=ctl,
                time_window_s=0.15,
                access_queue_packets=400,
                traffic=[TrafficConfig(kind="onoff", rate_bps=rate,
                                       on_mean_s=0.4, off_mean_s=0.4)],
            )
            r = _session(cfg, av_markup(duration_s), seed=seed)
            series = list(r.skew.values())[0] if r.skew else None
            rows.append([
                int(rate),
                "on" if ctl else "off",
                round((series.max_abs_s if series else 0.0) * 1e3, 1),
                round((series.mean_abs_s if series else 0.0) * 1e3, 1),
                round((series.fraction_out_of_sync if series else 0.0) * 100, 1),
                r.streams["V"].drops,
                r.streams["V"].duplicates,
            ])
    return headers, rows


# -------------------------------------------------------------------- E3
def run_grading_comparison(duration_s: float = 30.0, seed: int = 3):
    """E3: long-term quality grading on/off through a congestion epoch.

    Cross traffic oversubscribes the access link during [5, 20) s;
    grading should shed video rate during the epoch and restore it
    afterwards, cutting loss and gaps vs. fixed quality.
    """
    headers = ["grading", "loss_%", "gap_ratio_%", "mean_video_grade",
               "mean_audio_grade", "degrades", "upgrades"]
    rows = []
    results = {}
    for grading in (True, False):
        cfg = EngineConfig(
            access_rate_bps=2.5e6,
            grading_policy=GradingPolicy(enabled=grading),
            traffic=[TrafficConfig(kind="poisson", rate_bps=1.4e6,
                                   start_at=5.0, stop_at=20.0)],
        )
        r = _session(cfg, av_markup(duration_s), seed=seed)
        results[grading] = r
        rows.append([
            "on" if grading else "off",
            round(r.loss_ratio() * 100, 2),
            round(r.total_gap_ratio() * 100, 2),
            round(r.mean_video_grade(), 2),
            round(r.mean_audio_grade(), 2),
            sum(1 for d in r.grading_decisions if d.action == "degrade"),
            sum(1 for d in r.grading_decisions if d.action == "upgrade"),
        ])
    return headers, rows, results


# -------------------------------------------------------------------- E4
def run_admission_sweep(
    capacity_bps: float = 20e6,
    per_session_bps: float = 2e6,
    offered_sessions=(5, 10, 15, 20, 30),
):
    """E4: admit rates by contract class as offered load rises."""
    headers = ["offered", "admit_basic_%", "admit_premium_%", "admit_gold_%",
               "utilisation_%"]
    rows = []
    classes = ["basic", "premium", "gold"]
    for n in offered_sessions:
        ctrl = AdmissionController(capacity_bps, open_fraction=0.6)
        for i in range(n):
            contract = CONTRACT_CLASSES[classes[i % 3]]
            ctrl.decide(AdmissionRequest(
                session_id=f"s{i}", user_id=f"u{i}", contract=contract,
                required_bw_bps=per_session_bps,
            ))
        rows.append([
            n,
            round(ctrl.stats.admit_rate("basic") * 100, 1),
            round(ctrl.stats.admit_rate("premium") * 100, 1),
            round(ctrl.stats.admit_rate("gold") * 100, 1),
            round(ctrl.utilisation * 100, 1),
        ])
    return headers, rows


# -------------------------------------------------------------------- E5
def run_watermark_comparison(n_frames: int = 600):
    """E5: buffer watermark monitoring on/off ([LIT 92] mechanism).

    Direct buffer-level experiment with two delivery phases: a slight
    rate deficit (frames every 42 ms vs. the 40 ms nominal) that
    slowly drains the buffer, then a 2× burst that floods it. The
    monitor's LOW-zone duplication stretches playout so the buffer
    never runs dry; its HIGH-zone dropping sheds load before the
    hard capacity bound forces uncontrolled overflow drops.
    """
    from repro.client.buffers import MediaBuffer
    from repro.client.metrics import PlayoutEventLog
    from repro.client.monitor import BufferMonitor
    from repro.client.playout import PlayoutProcess
    from repro.des import Simulator
    from repro.media.types import Frame, FrameKind
    from repro.media import MediaType
    from repro.model.sync import PlayoutEntry

    headers = ["monitor", "gaps", "duplicates", "drops",
               "forced_overflow_drops"]
    rows = []
    ticks = 3600
    duration = n_frames * 0.04
    for monitor_on in (True, False):
        sim = Simulator()
        buf = MediaBuffer("v", 90_000, time_window_s=0.4, capacity_s=0.8)
        log = PlayoutEventLog()
        monitor = BufferMonitor(buf, max_consecutive_duplicates=10) \
            if monitor_on else None

        def feeder():
            for i in range(n_frames):
                buf.push(Frame("v", seq=i, media_time=i * ticks,
                               duration=ticks, size_bytes=1000,
                               kind=FrameKind.P))
                yield sim.timeout(0.042 if i < n_frames // 2 else 0.020)

        entry = PlayoutEntry("v", MediaType.VIDEO, "s", 0.0, duration)
        sim.process(feeder())
        p = PlayoutProcess(sim, entry, buf, log, 0.04, monitor=monitor)
        sim.run(until=p.finished)
        rows.append([
            "on" if monitor_on else "off",
            log.gap_count("v"),
            log.count(PlayoutEventKind.DUPLICATE, "v"),
            log.count(PlayoutEventKind.DROP, "v"),
            buf.stats.overflow_drops,
        ])
    return headers, rows


# -------------------------------------------------------------------- E6
def run_navigation_grace(return_delays=(2.0, 8.0), grace_s: float = 5.0):
    """E6: cross-server navigation with the suspend grace interval.

    Returning within the grace interval reuses the suspended
    connection; returning after it finds the connection closed.
    """
    headers = ["return_after_s", "grace_s", "outcome", "session_alive"]
    rows = []
    for delay in return_delays:
        cfg = EngineConfig(suspend_grace_s=grace_s)
        eng = ServiceEngine(cfg)
        eng.add_server("srv1", documents={"doc": (av_markup(4.0), "exp")})
        eng.add_server("srv2", documents={"doc2": (av_markup(4.0), "exp")})
        client, handler = eng.open_session("srv1", "user1", "pw")
        outcome = {}

        def script(delay=delay):
            from repro.server.accounts import SubscriptionForm

            resp = yield from client.connect()
            if resp.msg_type == "subscribe-required":
                yield from client.subscribe(SubscriptionForm(
                    real_name="U", address="x", email="u@e.org"))
            yield from client.request_document("doc")
            yield from client.suspend_for_remote_link()
            yield eng.sim.timeout(delay)
            resp = yield from client.resume_connection()
            outcome["type"] = resp.msg_type

        proc = eng.sim.process(script())
        eng.sim.run(until=proc)
        eng.sim.run(until=eng.sim.now + 1.0)
        rows.append([
            delay, grace_s, outcome["type"],
            "sess-" in str(sorted(eng.servers["srv1"].sessions)),
        ])
    return headers, rows


# -------------------------------------------------------------------- E7
def run_search_experiment():
    """E7: distributed search forwards queries to all servers and
    returns only matching lessons with their locations."""
    from repro.hermes import HermesService, make_course

    svc = HermesService()
    svc.add_hermes_server("hermes-nets", "Networking", ["networking"],
                          make_course("routing", "networking", 3))
    svc.add_hermes_server("hermes-arts", "Art history", ["painting"],
                          make_course("fresco", "painting", 2))
    queries = ["routing", "fresco", "lesson", "quantum"]
    headers = ["query", "servers_with_hits", "total_hits", "locations"]
    rows = []
    for q in queries:
        results = svc.search_all("hermes-nets", q)
        total = sum(len(v) for v in results.values())
        rows.append([
            q, len(results), total,
            ";".join(f"{s}({len(d)})" for s, d in sorted(results.items())),
        ])
    return headers, rows


# -------------------------------------------------------------------- E8
def run_grading_order_ablation(duration_s: float = 30.0, seed: int = 8):
    """E8: ablation of the degrade ordering (video-first vs others)."""
    headers = ["order", "mean_audio_grade", "mean_video_grade",
               "audio_gap_%", "video_gap_%"]
    rows = []
    for order in ("video-first", "audio-first", "proportional"):
        cfg = EngineConfig(
            access_rate_bps=2.5e6,
            grading_policy=GradingPolicy(order=order,
                                         degrade_cooldown_s=1.0),
            traffic=[TrafficConfig(kind="poisson", rate_bps=1.4e6,
                                   start_at=5.0, stop_at=25.0)],
        )
        r = _session(cfg, av_markup(duration_s), seed=seed)
        rows.append([
            order,
            round(r.mean_audio_grade(), 2),
            round(r.mean_video_grade(), 2),
            round(r.streams["A"].gap_ratio * 100, 2),
            round(r.streams["V"].gap_ratio * 100, 2),
        ])
    return headers, rows


# -------------------------------------------------------------------- E13
def run_rtcp_interval_ablation(duration_s: float = 25.0, seed: int = 13):
    """E13 (ablation): the feedback interval — "periodically or in
    specifically calculated intervals" (§4).

    Congestion starts at t=5 s. Frequent fixed reports react fast but
    cost control bandwidth all the time; sparse ones are cheap but
    slow; the adaptive calculation gets close to the fast reaction at
    close to the sparse overhead.
    """
    headers = ["reporting", "first_degrade_s", "rtcp_reports",
               "rtcp_bytes", "loss_%"]
    rows = []
    configs = [
        ("fixed 0.25s", 0.25, False),
        ("fixed 1s", 1.0, False),
        ("fixed 4s", 4.0, False),
        ("adaptive", 1.0, True),
    ]
    for label, interval, adaptive in configs:
        cfg = EngineConfig(
            access_rate_bps=2.5e6,
            rtcp_interval_s=interval,
            rtcp_adaptive=adaptive,
            traffic=[TrafficConfig(kind="poisson", rate_bps=1.4e6,
                                   start_at=5.0, stop_at=20.0)],
        )
        r = _session(cfg, av_markup(duration_s), seed=seed)
        degrade_times = [d.time for d in r.grading_decisions
                         if d.action == "degrade" and d.time >= 5.0]
        first = round(min(degrade_times) - 5.0, 2) if degrade_times \
            else None
        rows.append([
            label,
            first if first is not None else "n/a",
            r.protocol_bytes.get("RTCP", 0) // 52,
            r.protocol_bytes.get("RTCP", 0),
            round(r.loss_ratio() * 100, 2),
        ])
    return headers, rows


# -------------------------------------------------------------------- E12
def run_negotiation_experiment(
    capacity_bps: float = 20e6,
    per_session_bps: float = 2e6,
    min_bps: float = 0.5e6,
    offered_sessions=(8, 12, 16, 24),
):
    """E12: QoS negotiation on/off as offered load rises.

    With a negotiation floor (the user's lowest acceptable quality),
    admission grants partial bandwidth instead of rejecting — more
    users served, each at a quality matched to the grant.
    """
    from repro.media.encodings import default_registry as _reg
    from repro.server.flow_scheduler import FlowScheduler

    video = _reg().get("MPEG")
    headers = ["offered", "negotiation", "admitted", "negotiated_down",
               "mean_initial_grade", "utilisation_%"]
    rows = []
    for n in offered_sessions:
        for negotiate in (False, True):
            ctrl = AdmissionController(capacity_bps, open_fraction=1.0)
            grades = []
            negotiated = 0
            for i in range(n):
                r = ctrl.decide(AdmissionRequest(
                    session_id=f"s{i}", user_id=f"u{i}",
                    contract=CONTRACT_CLASSES["basic"],
                    required_bw_bps=per_session_bps,
                    min_bw_bps=min_bps if negotiate else None,
                ))
                if r.admitted:
                    grades.append(
                        FlowScheduler.grade_for_ratio(video, r.grant_ratio)
                    )
                    negotiated += int(r.negotiated)
            rows.append([
                n,
                "on" if negotiate else "off",
                len(grades),
                negotiated,
                round(sum(grades) / len(grades), 2) if grades else 0.0,
                round(ctrl.utilisation * 100, 1),
            ])
    return headers, rows


# -------------------------------------------------------------------- E10
def run_scaling_experiment(
    session_counts=(1, 2, 4, 8),
    duration_s: float = 8.0,
    access_bps: float = 8e6,
    seed: int = 10,
):
    """E10: concurrent viewers sharing the access bottleneck.

    Each session needs ~1.6 Mb/s; an 8 Mb/s access carries ~4 cleanly.
    Beyond that, admission and grading must share the pain.
    """
    headers = ["sessions", "admitted", "mean_gaps", "worst_skew_ms",
               "mean_video_grade", "degrades"]
    rows = []
    for n in session_counts:
        cfg = EngineConfig(access_rate_bps=access_bps,
                           admission_capacity_bps=100e6, seed=seed)
        eng = ServiceEngine(cfg)
        eng.add_server("srv1", documents={"doc": (av_markup(duration_s),
                                                  "exp")})
        results = eng.orchestrator.run_concurrent_sessions("srv1", "doc", n,
                                              stagger_s=0.25)
        done = [r for r in results if r.completed]
        rows.append([
            n,
            len(done),
            round(sum(r.total_gaps() for r in done) / max(1, len(done)), 1),
            round(max((r.worst_skew_s() for r in done), default=0.0) * 1e3, 1),
            round(sum(r.mean_video_grade() for r in done)
                  / max(1, len(done)), 2),
            sum(len([d for d in r.grading_decisions
                     if d.action == "degrade"]) for r in done),
        ])
    return headers, rows

# ------------------------------------------------------------------- E10b
def run_population_scaling(
    population_sizes=(1, 2, 4, 8),
    duration_s: float = 8.0,
    access_bps: float = 8e6,
    seed: int = 10,
):
    """E10b: the same offered load on per-client access links.

    The shared-link sweep (E10) crams N viewers onto one access pipe;
    here each viewer gets its *own* access link of the same rate — the
    paper's actual service shape, where viewers couple only through
    the backbone and the server's admission capacity. Per-client links
    carry the load cleanly at every population size the shared link
    chokes on.
    """
    headers = ["clients", "admitted", "mean_gaps", "worst_skew_ms",
               "mean_video_grade", "degrades"]
    rows = []
    for n in population_sizes:
        cfg = EngineConfig(access_rate_bps=access_bps,
                           admission_capacity_bps=100e6, seed=seed)
        eng = ServiceEngine(cfg)
        eng.add_server("srv1", documents={"doc": (av_markup(duration_s),
                                                  "exp")})
        pop = eng.orchestrator.run_population(n, "srv1", "doc",
                                              stagger_s=0.25)
        done = [o.result for o in pop.completed()]
        rows.append([
            n,
            len(done),
            round(sum(r.total_gaps() for r in done) / max(1, len(done)), 1),
            round(max((r.worst_skew_s() for r in done), default=0.0) * 1e3, 1),
            round(sum(r.mean_video_grade() for r in done)
                  / max(1, len(done)), 2),
            sum(len([d for d in r.grading_decisions
                     if d.action == "degrade"]) for r in done),
        ])
    return headers, rows


# -------------------------------------------------------------------- E11
def run_atm_comparison(duration_s: float = 10.0, seed: int = 11):
    """E11 (future work, §7): the service over an ATM access link.

    Two effects vs. a plain link of the same nominal rate: the ~10%
    cell-header tax, and cell-loss amplification (one lost cell kills
    a whole AAL5 frame, so large video packets suffer far more than
    their cell-level loss rate suggests).
    """
    headers = ["access", "loss", "startup_s", "gaps", "frame_loss_%",
               "rtp_bytes"]
    rows = []
    for atm in (False, True):
        for lossy in (False, True):
            cfg = EngineConfig(
                atm_access=atm,
                access_rate_bps=4e6,
                loss_p_gb=0.02 if lossy else 0.0,
                loss_p_bg=0.5,
                loss_bad=0.15,
                seed=seed,
            )
            eng = ServiceEngine(cfg)
            eng.add_server("srv1",
                           documents={"doc": (av_markup(duration_s), "exp")})
            r = eng.orchestrator.run_full_session("srv1", "doc")
            rows.append([
                "atm" if atm else "plain",
                "yes" if lossy else "no",
                round(r.startup_latency_s or 0.0, 2),
                r.total_gaps(),
                round(r.loss_ratio() * 100, 2),
                r.protocol_bytes.get("RTP", 0),
            ])
    return headers, rows


# -------------------------------------------------------------------- E9
def run_interplay_experiment(duration_s: float = 25.0, seed: int = 9):
    """E9: short-term (client) recovery acts before long-term (server)
    grading after a congestion step at t=5 s."""
    cfg = EngineConfig(
        access_rate_bps=2.5e6,
        traffic=[TrafficConfig(kind="poisson", rate_bps=1.6e6,
                               start_at=5.0)],
    )
    r = _session(cfg, av_markup(duration_s), seed=seed)
    short_term_times = [
        e.time for e in (r.log.events if r.log else [])
        if e.kind in (PlayoutEventKind.DROP, PlayoutEventKind.DUPLICATE)
        and e.time >= 5.0
    ]
    long_term_times = [d.time for d in r.grading_decisions
                       if d.action == "degrade" and d.time >= 5.0]
    first_short = min(short_term_times) if short_term_times else None
    first_long = min(long_term_times) if long_term_times else None
    headers = ["mechanism", "first_action_s", "actions"]
    rows = [
        ["short-term (drop/dup at client)",
         round(first_short, 3) if first_short else "n/a",
         len(short_term_times)],
        ["long-term (server grading)",
         round(first_long, 3) if first_long else "n/a",
         len(long_term_times)],
    ]
    return headers, rows, (first_short, first_long)
