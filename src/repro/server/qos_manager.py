"""The Server QoS Manager — the long-term recovery mechanism (§4).

Consumes the client's RTCP receiver reports and decides grading
actions, which the per-stream Media Stream Quality Converters apply:

* a *congested* report (loss or jitter over threshold) triggers a
  degrade, subject to a cooldown so one congestion epoch doesn't
  free-fall the ladder;
* sustained *clear* reports across the session (hysteresis) trigger
  an upgrade — "the service should gracefully upgrade the media
  quality, when the network's condition permits it";
* target selection follows the paper's ordering: "the service first
  applies the grading technique to the video stream, since audio or
  voice is considered to be more important to users". Ablation
  policies (audio-first, proportional/round-robin) are provided for
  experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des import Simulator
from repro.media.types import MediaType
from repro.rtp.packets import RtcpReceiverReport
from repro.server.quality_converter import MediaStreamQualityConverter

__all__ = ["GradingPolicy", "GradingDecision", "ServerQoSManager"]


@dataclass(frozen=True, slots=True)
class GradingPolicy:
    """Thresholds and ordering of the grading loop."""

    degrade_loss: float = 0.05  # fraction lost that signals congestion
    upgrade_loss: float = 0.01
    degrade_jitter_s: float = 0.050
    upgrade_jitter_s: float = 0.015
    hysteresis_reports: int = 3  # clear reports needed before upgrade
    degrade_cooldown_s: float = 2.0
    upgrade_cooldown_s: float = 4.0
    order: str = "video-first"  # | "audio-first" | "proportional"
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.order not in ("video-first", "audio-first", "proportional"):
            raise ValueError(f"unknown grading order {self.order!r}")
        if self.degrade_loss <= self.upgrade_loss:
            raise ValueError("degrade_loss must exceed upgrade_loss")
        if self.degrade_jitter_s <= self.upgrade_jitter_s:
            raise ValueError("degrade_jitter_s must exceed upgrade_jitter_s")
        if self.hysteresis_reports < 1:
            raise ValueError("hysteresis_reports must be >= 1")


@dataclass(frozen=True, slots=True)
class GradingDecision:
    time: float
    action: str  # "degrade" | "upgrade"
    trigger_stream: str
    target_stream: str
    old_grade: int
    new_grade: int
    reason: str


class ServerQoSManager:
    """Per-session grading controller at the sending side."""

    def __init__(self, sim: Simulator, policy: GradingPolicy | None = None,
                 session_id: str = "") -> None:
        self.sim = sim
        self.policy = policy if policy is not None else GradingPolicy()
        self.session_id = session_id
        self._converters: dict[str, MediaStreamQualityConverter] = {}
        self._media_types: dict[str, MediaType] = {}
        self._clear_streak: dict[str, int] = {}
        self._last_degrade_at = -float("inf")
        self._last_upgrade_at = -float("inf")
        self._rr_count = 0
        self.decisions: list[GradingDecision] = []

    # -- registration ------------------------------------------------------
    def register_stream(
        self,
        stream_id: str,
        media_type: MediaType,
        converter: MediaStreamQualityConverter,
    ) -> None:
        if stream_id in self._converters:
            raise ValueError(f"stream {stream_id!r} already registered")
        self._converters[stream_id] = converter
        self._media_types[stream_id] = media_type
        self._clear_streak[stream_id] = 0

    def unregister_stream(self, stream_id: str) -> None:
        self._converters.pop(stream_id, None)
        self._media_types.pop(stream_id, None)
        self._clear_streak.pop(stream_id, None)

    def streams(self) -> list[str]:
        return sorted(self._converters)

    def converters(self) -> dict[str, MediaStreamQualityConverter]:
        """Live converter per registered stream (for result capture)."""
        return dict(self._converters)

    # -- report handling ------------------------------------------------------
    def on_report(self, report: RtcpReceiverReport) -> None:
        """Entry point wired to the RTCP sink."""
        if report.stream_id not in self._converters:
            return
        self._rr_count += 1
        p = self.policy
        congested = (
            report.fraction_lost >= p.degrade_loss
            or report.jitter_s >= p.degrade_jitter_s
        )
        clear = (
            report.fraction_lost <= p.upgrade_loss
            and report.jitter_s <= p.upgrade_jitter_s
        )
        if congested:
            self._clear_streak[report.stream_id] = 0
            if p.enabled:
                self._try_degrade(report)
        elif clear:
            self._clear_streak[report.stream_id] += 1
            if p.enabled:
                self._try_upgrade(report)
        else:
            self._clear_streak[report.stream_id] = 0

    # -- target selection ------------------------------------------------------
    def _ordered(self, candidates: list[str], degrade: bool) -> list[str]:
        """Candidates ordered by the policy for the given direction."""
        p = self.policy

        def type_rank(sid: str) -> int:
            is_video = self._media_types[sid] is MediaType.VIDEO
            if p.order == "video-first":
                # Degrade video before audio; upgrade audio before video.
                if degrade:
                    return 0 if is_video else 1
                return 1 if is_video else 0
            if p.order == "audio-first":
                if degrade:
                    return 0 if not is_video else 1
                return 1 if not is_video else 0
            return 0  # proportional: type-agnostic

        def grade_rank(sid: str) -> int:
            g = self._converters[sid].grade_index
            # Degrade the least-degraded candidate first (spread pain);
            # upgrade the most-degraded first (restore worst first).
            return g if degrade else -g

        return sorted(candidates, key=lambda s: (type_rank(s), grade_rank(s), s))

    def _try_degrade(self, report: RtcpReceiverReport) -> None:
        now = self.sim.now
        if now - self._last_degrade_at < self.policy.degrade_cooldown_s:
            return
        candidates = [
            sid for sid, conv in self._converters.items() if conv.can_degrade
        ]
        if not candidates:
            return
        target = self._ordered(candidates, degrade=True)[0]
        conv = self._converters[target]
        old = conv.grade_index
        reason = (
            f"RR({report.stream_id}): loss={report.fraction_lost:.3f} "
            f"jitter={report.jitter_s * 1e3:.1f}ms"
        )
        if conv.degrade(now, reason=reason):
            self._last_degrade_at = now
            self.decisions.append(
                GradingDecision(now, "degrade", report.stream_id, target,
                                old, conv.grade_index, reason)
            )
            if self.sim._tracing:
                self.sim._tracer.emit(
                    now, "qos.grade", target, session=self.session_id,
                    action="degrade", old=old, new=conv.grade_index,
                    trigger=report.stream_id, reason=reason,
                )

    def _try_upgrade(self, report: RtcpReceiverReport) -> None:
        now = self.sim.now
        p = self.policy
        if now - self._last_upgrade_at < p.upgrade_cooldown_s:
            return
        if now - self._last_degrade_at < p.degrade_cooldown_s:
            return
        # All session streams must have a clear streak before upgrading.
        if any(
            self._clear_streak[sid] < p.hysteresis_reports
            for sid in self._converters
        ):
            return
        candidates = [
            sid for sid, conv in self._converters.items() if conv.can_upgrade
        ]
        if not candidates:
            return
        target = self._ordered(candidates, degrade=False)[0]
        conv = self._converters[target]
        old = conv.grade_index
        reason = f"clear x{p.hysteresis_reports} across session"
        if conv.upgrade(now, reason=reason):
            self._last_upgrade_at = now
            self.decisions.append(
                GradingDecision(now, "upgrade", report.stream_id, target,
                                old, conv.grade_index, reason)
            )
            if self.sim._tracing:
                self.sim._tracer.emit(
                    now, "qos.grade", target, session=self.session_id,
                    action="upgrade", old=old, new=conv.grade_index,
                    trigger=report.stream_id, reason=reason,
                )

    # -- reporting -----------------------------------------------------------
    def degrades(self) -> list[GradingDecision]:
        return [d for d in self.decisions if d.action == "degrade"]

    def upgrades(self) -> list[GradingDecision]:
        return [d for d in self.decisions if d.action == "upgrade"]

    @property
    def reports_seen(self) -> int:
        return self._rr_count
