"""Unit tests for media object and frame types."""

import pytest

from repro.media import (
    ContinuousMediaObject,
    DiscreteMediaObject,
    Frame,
    FrameKind,
    MediaType,
)


def test_media_type_continuity_split():
    continuous = {m for m in MediaType if m.is_continuous}
    assert continuous == {MediaType.AUDIO, MediaType.VIDEO}
    for m in MediaType:
        assert m.is_discrete != m.is_continuous


def test_frame_end_time():
    f = Frame("s", seq=0, media_time=3600, duration=3600, size_bytes=100,
              kind=FrameKind.I)
    assert f.end_time == 7200


def test_discrete_object_validation():
    obj = DiscreteMediaObject("img1", MediaType.IMAGE, "JPEG", size_bytes=2048)
    assert obj.size_bytes == 2048
    with pytest.raises(ValueError):
        DiscreteMediaObject("img2", MediaType.IMAGE, "JPEG", size_bytes=0)
    with pytest.raises(ValueError):
        DiscreteMediaObject("bad", MediaType.VIDEO, "MPEG", size_bytes=10)
    with pytest.raises(ValueError):
        DiscreteMediaObject("", MediaType.IMAGE, "JPEG", size_bytes=10)


def test_continuous_object_validation():
    obj = ContinuousMediaObject("v1", MediaType.VIDEO, "MPEG", duration_s=10.0)
    assert obj.trace_seed_name == "trace:v1"
    with pytest.raises(ValueError):
        ContinuousMediaObject("v2", MediaType.VIDEO, "MPEG", duration_s=0.0)
    with pytest.raises(ValueError):
        ContinuousMediaObject("t", MediaType.TEXT, "plain", duration_s=5.0)


def test_continuous_object_custom_seed_name_kept():
    obj = ContinuousMediaObject(
        "v1", MediaType.VIDEO, "MPEG", duration_s=1.0, trace_seed_name="mine"
    )
    assert obj.trace_seed_name == "mine"
